//! Property-based integration tests: conservation laws and accounting
//! invariants that must hold for the whole stack under randomised
//! workloads, topologies and controller actions.

use cluster::Millicores;
use microsim::{Behavior, LbPolicy, ServiceSpec, Stage, World, WorldConfig};
use proptest::prelude::*;
use sim_core::{Dist, SimRng, SimTime};
use telemetry::{RequestTypeId, ServiceId};

/// Builds a randomised three-tier world: front → mid (fanout to two leaves).
fn three_tier(
    threads: usize,
    conns: usize,
    cores: u32,
    lb: LbPolicy,
    seed: u64,
) -> (World, RequestTypeId) {
    let mut w = World::new(WorldConfig::default(), SimRng::seed_from(seed));
    let rt = RequestTypeId(0);
    let (mid, leaf_a, leaf_b) = (ServiceId(1), ServiceId(2), ServiceId(3));
    let front = w.add_service(ServiceSpec::new("front").threads(64).on(
        rt,
        Behavior::tier(Dist::exponential_ms(0.5), mid, Dist::constant_us(200)),
    ));
    w.add_service(
        ServiceSpec::new("mid")
            .cpu(Millicores::from_cores(cores))
            .threads(threads)
            .conns(leaf_a, conns)
            .conns(leaf_b, conns)
            .lb(lb)
            .on(
                rt,
                Behavior::new(vec![
                    Stage::compute(Dist::exponential_ms(1.0)),
                    Stage::fanout(vec![leaf_a, leaf_b]),
                    Stage::compute(Dist::exponential_ms(0.5)),
                ]),
            ),
    );
    for name in ["leaf-a", "leaf-b"] {
        w.add_service(
            ServiceSpec::new(name)
                .threads(32)
                .on(rt, Behavior::leaf(Dist::exponential_ms(1.5))),
        );
    }
    let rt = w.add_request_type("r", front);
    for svc in [front, mid, leaf_a, leaf_b] {
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
    }
    (w, rt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation: injected = completed + dropped; all gates drain; the
    /// trace warehouse only holds well-formed traces.
    #[test]
    fn prop_full_stack_conservation(
        n in 50usize..400,
        threads in 1usize..12,
        conns in 1usize..8,
        cores in 1u32..4,
        seed in 0u64..500,
    ) {
        let (mut w, rt) = three_tier(threads, conns, cores, LbPolicy::RoundRobin, seed);
        for i in 0..n {
            w.inject_at(SimTime::from_millis(1 + i as u64 * 2), rt);
        }
        let done = w.run_until(SimTime::from_secs(3_600));
        prop_assert!(w.is_quiescent());
        prop_assert_eq!(done.len() as u64 + w.dropped(), n as u64);
        for svc in [ServiceId(0), ServiceId(1), ServiceId(2), ServiceId(3)] {
            prop_assert_eq!(w.running_threads(svc), 0);
            prop_assert_eq!(w.queued_requests(svc), 0);
        }
        prop_assert_eq!(w.conns_in_use(ServiceId(1), ServiceId(2)), 0);
        prop_assert_eq!(w.conns_in_use(ServiceId(1), ServiceId(3)), 0);
        // Every stored trace is rooted and time-ordered.
        for trace in w.warehouse().iter() {
            prop_assert!(!trace.spans.is_empty());
            prop_assert!(trace.spans[0].parent.is_none());
            for span in &trace.spans {
                prop_assert!(span.departure >= span.arrival);
                for call in &span.children {
                    prop_assert!(call.end >= call.start);
                }
            }
        }
    }

    /// Mid-run soft/hardware reconfiguration never breaks conservation,
    /// regardless of the order and direction of the changes.
    #[test]
    fn prop_reconfiguration_safety(
        ops in proptest::collection::vec((0u8..4, 1usize..30), 1..10),
        seed in 0u64..200,
    ) {
        let (mut w, rt) = three_tier(6, 3, 2, LbPolicy::LeastOutstanding, seed);
        let mid = ServiceId(1);
        let mut injected = 0u64;
        for (step, &(op, val)) in ops.iter().enumerate() {
            let base = SimTime::from_millis(step as u64 * 200);
            for i in 0..40u64 {
                w.inject_at(base + sim_core::SimDuration::from_millis(i * 3), rt);
                injected += 1;
            }
            w.run_until(base + sim_core::SimDuration::from_millis(100));
            match op {
                0 => w.set_thread_limit(mid, val),
                1 => w.set_conn_limit(mid, ServiceId(2), val),
                2 => {
                    let _ = w.set_cpu_limit(mid, Millicores::new(500 + val as u32 * 250));
                }
                _ => {
                    if val % 2 == 0 {
                        if let Ok(pod) = w.add_replica(mid) {
                            w.make_ready(pod);
                        }
                    } else {
                        let _ = w.drain_replica(mid, 1);
                    }
                }
            }
        }
        let done = w.run_until(SimTime::from_secs(3_600));
        let _ = done;
        prop_assert!(w.is_quiescent());
        prop_assert_eq!(w.client().total() + w.dropped(), injected);
        prop_assert_eq!(w.running_threads(mid), 0);
    }

    /// Load balancing policies all deliver every request (no policy loses
    /// traffic), and LeastOutstanding never loads one replica with
    /// everything while another sits idle.
    #[test]
    fn prop_lb_policies_deliver(
        policy_idx in 0usize..3,
        replicas in 1usize..4,
        seed in 0u64..100,
    ) {
        let policy = [LbPolicy::RoundRobin, LbPolicy::Random, LbPolicy::LeastOutstanding]
            [policy_idx];
        let (mut w, rt) = three_tier(8, 4, 2, policy, seed);
        let mid = ServiceId(1);
        for _ in 1..replicas {
            let pod = w.add_replica(mid).unwrap();
            w.make_ready(pod);
        }
        for i in 0..300u64 {
            w.inject_at(SimTime::from_millis(1 + i * 3), rt);
        }
        let done = w.run_until(SimTime::from_secs(3_600));
        prop_assert_eq!(done.len(), 300);
        if replicas > 1 {
            let counts: Vec<usize> = w
                .ready_replicas(mid)
                .iter()
                .map(|&id| w.completions_of(id).unwrap().len())
                .collect();
            prop_assert!(counts.iter().all(|&c| c > 0), "all replicas served: {counts:?}");
        }
    }
}

#[test]
fn replica_scale_cycle_preserves_service_busy_counter_monotonicity() {
    let (mut w, rt) = three_tier(8, 4, 2, LbPolicy::RoundRobin, 42);
    let mid = ServiceId(1);
    let mut last = 0.0;
    for round in 0..5u64 {
        let base = SimTime::from_secs(round * 10);
        for i in 0..200u64 {
            w.inject_at(base + sim_core::SimDuration::from_millis(i * 10), rt);
        }
        w.run_until(base + sim_core::SimDuration::from_secs(5));
        if round % 2 == 0 {
            if let Ok(pod) = w.add_replica(mid) {
                w.make_ready(pod);
            }
        } else {
            let _ = w.drain_replica(mid, 1);
        }
        w.run_until(base + sim_core::SimDuration::from_secs(9));
        let busy = w.cpu_busy_core_secs(mid);
        assert!(
            busy >= last,
            "busy counter must survive scale events: {busy} < {last}"
        );
        last = busy;
    }
}
