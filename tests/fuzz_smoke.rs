//! Fixed-seed fuzz corpus as a standing integration test.
//!
//! The full campaign lives in the `fuzz` binary (`fuzz --seeds A..B`, see
//! DESIGN.md §15); this smoke keeps a small deterministic slice of it in
//! `cargo test` so a regression in the generator, an oracle, or the
//! shrinker is caught without running the standing search. Each property
//! draws seeds from a fixed window and pushes the generated scenario
//! through the oracle stack: round-trip/canon-key, panic-free (audited)
//! execution, shard-count invariance, time translation, and
//! replica-spawn permutation.

use proptest::prelude::*;
use sora_fuzz::{check, generate, shrink, FuzzOptions, Violation};

/// The corpus window the smoke covers. The standing campaign in
/// `scripts/check.sh` fuzzes a superset of this range.
const CORPUS_BASE: u64 = 0;

fn assert_clean(seed: u64) {
    let spec = generate(seed);
    spec.validate()
        .unwrap_or_else(|e| panic!("seed {seed}: generator emitted invalid spec: {e}"));
    if let Some(Violation { oracle, detail }) = check(&spec, &FuzzOptions::default()) {
        panic!(
            "seed {seed}: {oracle} violation: {detail}\nspec:\n{}",
            spec.emit()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every corpus seed passes the full oracle stack.
    #[test]
    fn corpus_seeds_pass_all_oracles(offset in 0u64..48) {
        assert_clean(CORPUS_BASE + offset);
    }
}

/// The seeded-defect path stays wired end to end: arming `inject_bad`
/// turns an otherwise clean corpus seed with a planted trigger into a
/// detected, shrinkable violation — and disarming it restores a clean
/// verdict on the shrunken reproducer.
#[test]
fn injected_defect_is_detected_and_shrunk() {
    let opts = FuzzOptions { inject_bad: true };
    let mut spec = generate(3);
    spec.faults.clear();
    spec.faults.push(sora_fuzz::FaultSpec::TelemetryBlackout {
        at_ms: 1_001,
        duration_ms: 100,
        lag: false,
    });
    spec.validate().expect("planted spec is valid");
    let violation = check(&spec, &opts).expect("seeded defect must be detected");
    assert_eq!(violation.oracle, "injected");
    let shrunk = shrink(&spec, &violation, &opts);
    assert_eq!(
        check(&shrunk, &opts)
            .expect("reproducer still trips")
            .oracle,
        "injected"
    );
    // Without the flag the same reproducer is clean — the defect is
    // test-only, not a real simulator bug.
    assert!(check(&shrunk, &FuzzOptions::default()).is_none());
}
