//! Cross-crate integration tests: full application topologies driven by
//! closed-loop workloads with live controllers — the whole stack from
//! `sim-core` up to `apps`.

use apps::{Scenario, ScenarioConfig, SocialNetwork, SockShop, SockShopParams, Watch};
use autoscalers::{FirmConfig, FirmController, HpaConfig, HpaController};
use cluster::Millicores;
use scg::LocalizeConfig;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_core::{
    NullController, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController,
};
use telemetry::ServiceId;
use workload::{Mix, RateCurve, TraceShape, UserPool};

const CART: ServiceId = ServiceId(1);

fn cart_scenario(shop: &SockShop, users: f64, secs: u64) -> Scenario {
    let curve = RateCurve::new(TraceShape::DualPhase, users, SimDuration::from_secs(secs));
    let pool = UserPool::new(curve, Dist::exponential_ms(2_500.0), SimRng::seed_from(9));
    Scenario::new(
        ScenarioConfig {
            report_rtt: SimDuration::from_millis(400),
            ..Default::default()
        },
        pool,
        Mix::single(shop.get_cart),
        Watch {
            service: CART,
            conns: None,
        },
    )
}

#[test]
fn sock_shop_serves_a_closed_loop_trace_without_leaks() {
    let mut shop = SockShop::build(SockShopParams::default(), SimRng::seed_from(1));
    let scenario = cart_scenario(&shop, 400.0, 60);
    let mut ctl = NullController;
    let res = scenario.run(&mut shop.world, &mut ctl);
    assert!(res.summary.completed > 4_000, "{:?}", res.summary);
    assert_eq!(res.summary.dropped, 0);
    // Everything drained: no threads or connections leaked.
    assert_eq!(shop.world.running_threads(CART), 0);
    assert_eq!(shop.world.queued_requests(CART), 0);
    assert!(shop.world.is_quiescent());
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let mut shop = SockShop::build(SockShopParams::default(), SimRng::seed_from(2));
        let scenario = cart_scenario(&shop, 300.0, 40);
        let registry = ResourceRegistry::new().with(
            SoftResource::ThreadPool { service: CART },
            ResourceBounds { min: 2, max: 100 },
        );
        let mut sora = SoraController::sora(
            SoraConfig {
                sla: SimDuration::from_millis(100),
                localize: LocalizeConfig {
                    min_on_path: 20,
                    ..Default::default()
                },
                ..Default::default()
            },
            registry,
            NullController,
        );
        let res = scenario.run(&mut shop.world, &mut sora);
        (
            res.summary.completed,
            res.summary.p99_ms as u64,
            shop.world.thread_limit(CART),
        )
    };
    assert_eq!(run(), run(), "same seed, same everything");
}

#[test]
fn sora_over_firm_adapts_threads_on_hardware_scale_up() {
    // An under-threaded cart saturates; FIRM adds CPU; Sora must follow
    // with threads (or the new CPU is wasted, the paper's Fig. 10 story).
    let mut shop = SockShop::build(
        SockShopParams {
            cart_cores: 1,
            cart_threads: 3,
            ..Default::default()
        },
        SimRng::seed_from(3),
    );
    let scenario = cart_scenario(&shop, 900.0, 120);
    let firm = FirmController::new(FirmConfig {
        services: vec![CART],
        localize: LocalizeConfig {
            min_on_path: 20,
            ..Default::default()
        },
        min_limit: Millicores::from_cores(1),
        max_limit: Millicores::from_cores(4),
        ..Default::default()
    });
    let registry = ResourceRegistry::new().with(
        SoftResource::ThreadPool { service: CART },
        ResourceBounds { min: 3, max: 64 },
    );
    let mut sora = SoraController::sora(
        SoraConfig {
            sla: SimDuration::from_millis(400),
            localize: LocalizeConfig {
                min_on_path: 20,
                ..Default::default()
            },
            ..Default::default()
        },
        registry,
        firm,
    );
    let res = scenario.run(&mut shop.world, &mut sora);
    assert!(res.summary.completed > 5_000);
    assert!(
        shop.world.cpu_limit(CART) > Millicores::from_cores(1),
        "FIRM scaled the hot cart up: {}",
        shop.world.cpu_limit(CART)
    );
    assert!(
        shop.world.thread_limit(CART) > 3,
        "Sora followed with threads: {}",
        shop.world.thread_limit(CART)
    );
}

#[test]
fn social_network_drift_with_hpa_and_sora_connections() {
    let mut sn = SocialNetwork::build(Default::default(), SimRng::seed_from(4));
    let (ht, ps) = (sn.home_timeline, sn.post_storage);
    let curve = RateCurve::new(TraceShape::Steady, 2_500.0, SimDuration::from_secs(90));
    let pool = UserPool::new(curve, Dist::exponential_ms(2_500.0), SimRng::seed_from(5));
    let scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: SimDuration::from_millis(400),
            ..Default::default()
        },
        pool,
        Mix::single(sn.read_home_timeline_light),
        Watch {
            service: ps,
            conns: Some((ht, ps)),
        },
    )
    .with_mix_change(
        SimTime::from_secs(45),
        Mix::single(sn.read_home_timeline_heavy),
    );
    let registry = ResourceRegistry::new().with(
        SoftResource::ConnPool {
            caller: ht,
            target: ps,
        },
        ResourceBounds { min: 4, max: 256 },
    );
    let mut sora = SoraController::sora(
        SoraConfig {
            sla: SimDuration::from_millis(400),
            localize: LocalizeConfig {
                min_on_path: 20,
                ..Default::default()
            },
            ..Default::default()
        },
        registry,
        HpaController::new(
            ps,
            HpaConfig {
                max_replicas: 4,
                ..Default::default()
            },
        ),
    );
    let res = scenario.run(&mut sn.world, &mut sora);
    assert!(res.summary.completed > 10_000, "{:?}", res.summary);
    // The heavy phase must have driven either replicas or the pool up.
    let conns = sn.world.conn_limit(ht, ps).unwrap();
    let replicas = sn.world.ready_replicas(ps).len();
    assert!(
        conns != 10 || replicas > 1,
        "some adaptation must happen under the heavy phase \
         (conns {conns}, replicas {replicas})"
    );
    assert!(sn.world.conns_in_use(ht, ps) == 0, "run drained");
}

#[test]
fn client_log_percentiles_are_ordered() {
    let mut shop = SockShop::build(SockShopParams::default(), SimRng::seed_from(6));
    let scenario = cart_scenario(&shop, 350.0, 30);
    let mut ctl = NullController;
    let res = scenario.run(&mut shop.world, &mut ctl);
    assert!(res.summary.mean_rt_ms > 0.0);
    assert!(res.summary.p95_ms >= res.summary.mean_rt_ms * 0.5);
    assert!(res.summary.p99_ms >= res.summary.p95_ms);
    let p50 = shop.world.client().percentile(50.0).unwrap();
    let p95 = shop.world.client().percentile(95.0).unwrap();
    assert!(p50 <= p95);
}

#[test]
fn warehouse_traces_match_topology_paths() {
    let mut shop = SockShop::build(SockShopParams::default(), SimRng::seed_from(7));
    for i in 0..50 {
        shop.world
            .inject_at(SimTime::from_millis(1 + i * 20), shop.get_catalogue);
    }
    shop.world.run_until(SimTime::from_secs(5));
    let stats = telemetry::per_service_stats(shop.world.warehouse().iter());
    assert!(stats.trace_count() >= 50);
    // The catalogue branch dominates the catalogue request's critical path.
    let dominant = stats.dominant_path().expect("some path");
    let names: Vec<&str> = dominant
        .iter()
        .map(|&s| shop.world.service_name(s))
        .collect();
    assert_eq!(names[0], "front-end");
    assert!(names.contains(&"catalogue") || names.contains(&"cart"));
}
