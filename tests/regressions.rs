//! The fuzz-found regression corpus under `scenarios/regressions/`.
//!
//! Each file is a shrunken minimal reproducer for a bug the scenario
//! fuzzer's development flushed out of the spec gate or the simulator.
//! Two kinds of entries:
//!
//! - **rejected**: specs that *used to* slip through `validate()` and then
//!   panicked, were silently mis-run, or aliased a different scenario
//!   under the canon cache key. The fix is the hardened gate; the
//!   regression asserts the spec still parses but is now rejected with the
//!   expected field diagnosis.
//! - **clean**: runnable specs covering the fixed classes' positive path;
//!   they must pass the entire oracle stack (audited when the `audit`
//!   feature is on — `scripts/check.sh` runs this test in the audit lane).
//!
//! The expectation table below must list the directory exactly: a new
//! reproducer without a matching entry (or vice versa) fails the test, so
//! the corpus can't drift from its assertions.

use sora_fuzz::{check, FuzzOptions, ScenarioSpec};

#[derive(Debug, Clone, Copy)]
enum Expect {
    /// `validate()` must reject the spec, blaming this field.
    Rejected(&'static str),
    /// The spec must run and pass every oracle.
    Clean,
}

/// file stem → expected verdict, and the bug each entry pins down.
const CORPUS: &[(&str, Expect)] = &[
    // Crash restart window ran past the horizon: accepted by the old
    // gate, then the restart event fired outside the run (or never),
    // leaving the service down for a "recoverable" fault.
    ("001_fault_window_past_horizon", Expect::Rejected("faults")),
    // Two overlapping telemetry blackouts: the second window's end event
    // un-blacked-out the first while it was still supposed to hold.
    (
        "002_overlapping_blackout_windows",
        Expect::Rejected("faults"),
    ),
    // Network plus sharded engine: used to pass validate and then panic
    // in `World::install_network` (the engines are mutually exclusive).
    ("003_network_with_shards", Expect::Rejected("net")),
    // Partition fault without a network: used to be logged and silently
    // ignored, so two behaviourally identical runs cached under
    // different canon keys.
    ("004_partition_without_network", Expect::Rejected("faults")),
    // Drift knob on an app that never reads it: same silent-alias class.
    (
        "005_drift_knob_on_sock_shop",
        Expect::Rejected("drift_at_secs"),
    ),
    // Fault instant beyond the ms→ns range: passed the old gate, then
    // overflowed u64 nanoseconds inside `SimTime::from_millis`.
    ("006_fault_instant_overflow", Expect::Rejected("faults")),
    // Positive path for the fixed classes: a generated topology with a
    // crash-and-restart plus a lagging blackout runs audited-clean.
    ("007_faulted_generated_scenario", Expect::Clean),
];

fn corpus_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios/regressions")
}

#[test]
fn corpus_matches_the_expectation_table() {
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("scenarios/regressions exists")
        .map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.strip_suffix(".json")
                .unwrap_or_else(|| panic!("non-JSON file in corpus: {name}"))
                .to_string()
        })
        .collect();
    on_disk.sort();
    let expected: Vec<String> = CORPUS.iter().map(|(n, _)| n.to_string()).collect();
    assert_eq!(on_disk, expected, "corpus and expectation table drifted");
}

#[test]
fn every_reproducer_meets_its_expectation() {
    for (stem, expect) in CORPUS {
        let path = corpus_dir().join(format!("{stem}.json"));
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{stem}: unreadable: {e}"));
        match expect {
            Expect::Rejected(field) => {
                // The spec is well-formed JSON the parser accepts…
                let spec = ScenarioSpec::parse_unchecked(&text)
                    .unwrap_or_else(|e| panic!("{stem}: no longer parses: {e}"));
                // …but the hardened gate rejects it, blaming the field
                // the original bug hid behind.
                match spec.validate() {
                    Err(e) => {
                        let msg = e.to_string();
                        assert!(
                            msg.contains(field),
                            "{stem}: rejection `{msg}` does not blame `{field}`"
                        );
                    }
                    Ok(()) => panic!("{stem}: regressed — validate accepts it again"),
                }
            }
            Expect::Clean => {
                let spec =
                    ScenarioSpec::parse(&text).unwrap_or_else(|e| panic!("{stem}: rejected: {e}"));
                if let Some(v) = check(&spec, &FuzzOptions::default()) {
                    panic!("{stem}: {} violation: {}", v.oracle, v.detail);
                }
            }
        }
    }
}
