//! Metamorphic integration tests: transformations of a simulation input
//! with a known, exact effect on the output. Unlike the conservation
//! properties in `invariants.rs`, these compare *pairs* of runs, so they
//! catch bugs that conserve totals but skew results — hidden absolute-time
//! dependence, spawn-order dependence, or an audit layer that perturbs
//! what it observes.

use cluster::Millicores;
use microsim::{Behavior, LbPolicy, ServiceSpec, Stage, World, WorldConfig};
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use telemetry::{RequestTypeId, ServiceId};

/// The `invariants.rs` three-tier topology: front → mid → two leaves.
fn three_tier(seed: u64) -> (World, RequestTypeId) {
    let mut w = World::new(WorldConfig::default(), SimRng::seed_from(seed));
    let rt = RequestTypeId(0);
    let (mid, leaf_a, leaf_b) = (ServiceId(1), ServiceId(2), ServiceId(3));
    let front = w.add_service(ServiceSpec::new("front").threads(64).on(
        rt,
        Behavior::tier(Dist::exponential_ms(0.5), mid, Dist::constant_us(200)),
    ));
    w.add_service(
        ServiceSpec::new("mid")
            .cpu(Millicores::from_cores(2))
            .threads(8)
            .conns(leaf_a, 4)
            .conns(leaf_b, 4)
            .lb(LbPolicy::RoundRobin)
            .on(
                rt,
                Behavior::new(vec![
                    Stage::compute(Dist::exponential_ms(1.0)),
                    Stage::fanout(vec![leaf_a, leaf_b]),
                    Stage::compute(Dist::exponential_ms(0.5)),
                ]),
            ),
    );
    for name in ["leaf-a", "leaf-b"] {
        w.add_service(
            ServiceSpec::new(name)
                .threads(32)
                .on(rt, Behavior::leaf(Dist::exponential_ms(1.5))),
        );
    }
    let rt = w.add_request_type("r", front);
    for svc in [front, mid, leaf_a, leaf_b] {
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
    }
    (w, rt)
}

/// Injects `n` requests starting at `offset` and drains the world.
fn drive(offset: SimDuration, n: u64, seed: u64) -> (World, Vec<microsim::Completion>) {
    let (mut w, rt) = three_tier(seed);
    for i in 0..n {
        w.inject_at(
            SimTime::ZERO + offset + SimDuration::from_millis(1 + i * 2),
            rt,
        );
    }
    let done = w.run_until(SimTime::ZERO + offset + SimDuration::from_secs(3_600));
    assert!(w.is_quiescent());
    (w, done)
}

/// Translating every injection by a constant shifts every completion by
/// exactly that constant and changes no duration-valued output: the
/// simulator has no hidden dependence on absolute time.
#[test]
fn time_translation_shifts_outputs_exactly() {
    let shift = SimDuration::from_secs(500);
    let (wa, da) = drive(SimDuration::ZERO, 300, 11);
    let (wb, db) = drive(shift, 300, 11);

    assert_eq!(da.len(), db.len());
    for (a, b) in da.iter().zip(&db) {
        assert_eq!(a.issued + shift, b.issued);
        assert_eq!(a.completed + shift, b.completed);
        assert_eq!(a.response_time, b.response_time, "latency is shift-free");
        assert_eq!(a.rtype, b.rtype);
    }
    assert_eq!(wa.dropped(), wb.dropped());
    assert_eq!(wa.client().total(), wb.client().total());
    assert_eq!(
        wa.client().mean_response_time(),
        wb.client().mean_response_time()
    );
    for p in [50.0, 95.0, 99.0, 100.0] {
        assert_eq!(wa.client().percentile(p), wb.client().percentile(p));
    }
}

/// Permuting the order in which extra replicas are spawned across services
/// relabels pod ids but leaves every aggregate unchanged: load balancing,
/// event tie-breaking and RNG consumption depend only on the per-service
/// replica sets, not the global spawn sequence.
#[test]
fn replica_spawn_order_permutation_preserves_aggregates() {
    let scale_out = |order: &[ServiceId]| {
        let (mut w, rt) = three_tier(23);
        for &svc in order {
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
        }
        for i in 0..400u64 {
            w.inject_at(SimTime::from_millis(1 + i * 2), rt);
        }
        let done = w.run_until(SimTime::from_secs(3_600));
        assert!(w.is_quiescent());
        (w, done.len())
    };
    let (mid, leaf_a, leaf_b) = (ServiceId(1), ServiceId(2), ServiceId(3));
    let orders: [&[ServiceId]; 3] = [
        &[mid, mid, leaf_a, leaf_b],
        &[leaf_b, leaf_a, mid, mid],
        &[mid, leaf_a, mid, leaf_b],
    ];
    let (base_w, base_done) = scale_out(orders[0]);
    for order in &orders[1..] {
        let (w, done) = scale_out(order);
        assert_eq!(done, base_done, "order {order:?}");
        assert_eq!(w.dropped(), base_w.dropped());
        assert_eq!(w.client().total(), base_w.client().total());
        assert_eq!(
            w.client().mean_response_time(),
            base_w.client().mean_response_time()
        );
        for p in [50.0, 99.0] {
            assert_eq!(w.client().percentile(p), base_w.client().percentile(p));
        }
        // Per-service completion totals match even though pod ids differ.
        for svc in [mid, leaf_a, leaf_b] {
            let count = |w: &World| -> usize {
                w.ready_replicas(svc)
                    .iter()
                    .filter_map(|&id| w.completions_of(id).map(|l| l.len()))
                    .sum()
            };
            assert_eq!(count(&w), count(&base_w), "service {svc:?}");
        }
    }
}

/// A fault-free randomised run finishes with a completely clean audit:
/// the conservation checks themselves never fire spuriously. (The
/// audit-off byte-identity half of this metamorphic pair is checked by
/// `scripts/check.sh`, which diffs a bench binary's stdout across
/// audit-on and audit-off builds.)
#[cfg(feature = "audit")]
#[test]
fn fault_free_run_is_audit_clean() {
    for seed in [1u64, 7, 99] {
        let (w, done) = drive(SimDuration::ZERO, 500, seed);
        assert!(!done.is_empty());
        assert_eq!(w.audit().total(), 0, "seed {seed}: {}", w.audit().summary());
    }
}

/// Sharding the three-tier world is unobservable: shards = 1 is the
/// engine family's sequential oracle, and the same seed run at 2 and 4
/// shards must reproduce its completion stream, counters, percentiles
/// and drop breakdown exactly — the conservative window protocol admits
/// no partition-dependent behaviour.
#[test]
fn shard_count_is_unobservable() {
    let run = |shards: usize| {
        let (mut w, rt) = three_tier(31);
        w.enable_sharding(shards)
            .expect("fresh world accepts sharding");
        for i in 0..400u64 {
            w.inject_at(SimTime::from_millis(1 + i * 2), rt);
        }
        let done = w.run_until(SimTime::from_secs(3_600));
        assert!(w.is_quiescent());
        (w, done)
    };
    let (base_w, base_done) = run(1);
    assert!(!base_done.is_empty());
    for shards in [2usize, 4] {
        let (w, done) = run(shards);
        assert_eq!(
            done, base_done,
            "completion stream diverged at {shards} shards"
        );
        assert_eq!(w.dropped(), base_w.dropped());
        assert_eq!(w.events_dispatched(), base_w.events_dispatched());
        assert_eq!(w.spans_created(), base_w.spans_created());
        assert_eq!(w.drop_breakdown(), base_w.drop_breakdown());
        assert_eq!(w.client().total(), base_w.client().total());
        for p in [50.0, 95.0, 99.0, 100.0] {
            assert_eq!(w.client().percentile(p), base_w.client().percentile(p));
        }
    }
}

/// A sharded run over a canned fault schedule — a replica crash with
/// restart, a CPU-pressure window and a telemetry blackout, all applied
/// as coordinator barriers — stays audit-clean and shard-count
/// invariant: every conservation ledger holds across mailbox hand-offs
/// and barrier-ordered kills.
#[cfg(feature = "audit")]
#[test]
fn audited_sharded_fault_run_is_clean_and_invariant() {
    use cluster::NodeId;
    use microsim::{BlackoutMode, FaultSchedule};
    let run = |shards: usize| {
        let (mut w, rt) = three_tier(47);
        w.enable_sharding(shards)
            .expect("fresh world accepts sharding");
        w.install_faults(
            FaultSchedule::new()
                .crash(
                    SimTime::from_millis(120),
                    ServiceId(1),
                    Some(SimDuration::from_millis(80)),
                )
                .cpu_pressure(
                    SimTime::from_millis(200),
                    NodeId(0),
                    0.5,
                    SimDuration::from_millis(150),
                )
                .telemetry_blackout(
                    SimTime::from_millis(300),
                    BlackoutMode::Lag,
                    SimDuration::from_millis(100),
                ),
        )
        .expect("canned schedule validates");
        for i in 0..400u64 {
            w.inject_at(SimTime::from_millis(1 + i), rt);
        }
        let done = w.run_until(SimTime::from_secs(3_600));
        assert!(w.is_quiescent());
        assert_eq!(
            w.audit().total(),
            0,
            "shards={shards}: {}",
            w.audit().summary()
        );
        (w, done)
    };
    let (base_w, base_done) = run(1);
    let (w, done) = run(4);
    assert!(base_w.fault_log().len() >= 3, "all three faults must fire");
    assert_eq!(done, base_done, "fault-schedule completions diverged");
    assert_eq!(w.fault_log(), base_w.fault_log());
    assert_eq!(w.drop_breakdown(), base_w.drop_breakdown());
}
