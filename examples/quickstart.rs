//! Quickstart: build a tiny two-service topology, drive it with load, and
//! let Sora adapt the thread pool of the bottleneck service.
//!
//! Run with: `cargo run --release --example quickstart`

use cluster::Millicores;
use microsim::{Behavior, ServiceSpec, World, WorldConfig};
use scg::LocalizeConfig;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_core::{
    Controller, NullController, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig,
    SoraController,
};
use telemetry::RequestTypeId;

fn main() {
    // 1. Describe the topology: a front service calling a 2-core worker
    //    whose thread pool starts grossly over-allocated.
    let mut world = World::new(WorldConfig::default(), SimRng::seed_from(1));
    let rt = RequestTypeId(0);
    let worker_id = telemetry::ServiceId(1);
    let front = world.add_service(
        ServiceSpec::new("front")
            .cpu(Millicores::from_cores(4))
            .threads(256)
            .on(
                rt,
                Behavior::tier(
                    Dist::lognormal_ms(0.5, 0.3),
                    worker_id,
                    Dist::constant_ms(0),
                ),
            ),
    );
    let worker = world.add_service(
        ServiceSpec::new("worker")
            .cpu(Millicores::from_cores(2))
            .threads(128) // way past the knee for 2 cores
            .csw(0.04)
            .on(rt, Behavior::leaf(Dist::lognormal_ms(4.0, 0.4))),
    );
    let rt = world.add_request_type("GET /", front);
    for svc in [front, worker] {
        let pod = world.add_replica(svc).expect("placement");
        world.make_ready(pod);
    }

    // 2. Attach Sora: the worker's thread pool is the registered knob, the
    //    end-to-end SLA is 50 ms.
    let registry = ResourceRegistry::new().with(
        SoftResource::ThreadPool { service: worker },
        ResourceBounds { min: 2, max: 128 },
    );
    let mut sora = SoraController::sora(
        SoraConfig {
            sla: SimDuration::from_millis(50),
            localize: LocalizeConfig {
                min_on_path: 20,
                ..Default::default()
            },
            ..Default::default()
        },
        registry,
        NullController, // no hardware autoscaler in this example
    );

    // 3. Drive ~330 req/s of Poisson-ish load for two minutes, invoking the
    //    controller every 15 s (the Kubernetes control grid).
    let mut rng = SimRng::seed_from(2);
    let mut at_ms = 0u64;
    let mut next_control = 15_000u64;
    while at_ms < 120_000 {
        at_ms += (rng.f64() * 5.0) as u64 + 1;
        world.inject_at(SimTime::from_millis(at_ms), rt);
        if at_ms >= next_control {
            world.run_until(SimTime::from_millis(next_control));
            sora.control(&mut world, SimTime::from_millis(next_control));
            println!(
                "t={:>3}s  worker threads = {:>3}  p95 so far = {:?}",
                next_control / 1000,
                world.thread_limit(worker),
                world.client().percentile(95.0).map(|d| format!("{d}")),
            );
            next_control += 15_000;
        }
    }
    world.run_until(SimTime::from_millis(125_000));

    // 4. Report.
    println!("\ncompleted {} requests", world.client().total());
    println!(
        "final worker thread pool: {} (started at 128)",
        world.thread_limit(worker)
    );
    println!(
        "p99 = {}",
        world
            .client()
            .percentile(99.0)
            .map(|d| format!("{d}"))
            .unwrap_or_default()
    );
    for (t, resource, value) in sora.actions() {
        println!("  sora @ {t}: {resource} -> {value}");
    }
}
