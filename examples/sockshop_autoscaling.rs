//! Sock Shop under a bursty trace: FIRM-style hardware scaling alone vs
//! FIRM + Sora soft-resource adaptation — a miniature of the paper's
//! Fig. 10 experiment.
//!
//! Run with: `cargo run --release --example sockshop_autoscaling`

use apps::{Scenario, ScenarioConfig, SockShop, Watch};
use autoscalers::{FirmConfig, FirmController};
use cluster::Millicores;
use scg::LocalizeConfig;
use sim_core::{Dist, SimDuration, SimRng};
use sora_core::{
    Controller, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController,
};
use workload::{Mix, RateCurve, TraceShape, UserPool};

const SECS: u64 = 300;
const USERS: f64 = 3_500.0;

fn run(name: &str, controller: &mut dyn Controller) {
    let mut shop = SockShop::build(Default::default(), SimRng::seed_from(7));
    let curve = RateCurve::new(
        TraceShape::SteepTriPhase,
        USERS,
        SimDuration::from_secs(SECS),
    );
    let pool = UserPool::new(curve, Dist::exponential_ms(2_500.0), SimRng::seed_from(8));
    let scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: SimDuration::from_millis(400),
            ..Default::default()
        },
        pool,
        Mix::single(shop.get_cart),
        Watch {
            service: shop.cart,
            conns: None,
        },
    );
    let result = scenario.run(&mut shop.world, controller);
    println!(
        "{name:12} p95 {:6.0} ms   p99 {:6.0} ms   goodput(400ms) {:5.0} req/s   completed {}",
        result.summary.p95_ms,
        result.summary.p99_ms,
        result.summary.goodput_rps,
        result.summary.completed,
    );
}

fn main() {
    let cart = telemetry::ServiceId(1); // Sock Shop layout: cart is service 1
    let firm_config = FirmConfig {
        services: vec![cart],
        localize: LocalizeConfig {
            min_on_path: 30,
            ..Default::default()
        },
        min_limit: Millicores::from_cores(1),
        max_limit: Millicores::from_cores(4),
        ..Default::default()
    };

    println!("Steep Tri Phase trace, {USERS} users, {SECS} s:\n");
    let mut firm_only = FirmController::new(firm_config.clone());
    run("FIRM", &mut firm_only);

    let registry = ResourceRegistry::new().with(
        SoftResource::ThreadPool { service: cart },
        ResourceBounds { min: 5, max: 200 },
    );
    let mut sora = SoraController::sora(
        SoraConfig {
            sla: SimDuration::from_millis(400),
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            ..Default::default()
        },
        registry,
        FirmController::new(firm_config),
    );
    run("FIRM + Sora", &mut sora);
    println!("\nSora's thread-pool actuations:");
    for (t, resource, value) in sora.actions() {
        println!("  {t}: {resource} -> {value}");
    }
}
