//! Social Network under system-state drift: the request mix flips from
//! light to heavy reads mid-run, and Sora re-sizes the Home-Timeline →
//! Post Storage connection pool — a miniature of the paper's Fig. 12.
//!
//! Run with: `cargo run --release --example socialnetwork_drift`

use apps::{Scenario, ScenarioConfig, SocialNetwork, Watch};
use autoscalers::{HpaConfig, HpaController};
use scg::LocalizeConfig;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_core::{
    Controller, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController,
};
use workload::{Mix, RateCurve, TraceShape, UserPool};

const SECS: u64 = 300;
const DRIFT_AT: u64 = 150;

fn run(name: &str, controller: &mut dyn Controller) {
    let mut sn = SocialNetwork::build(Default::default(), SimRng::seed_from(5));
    let curve = RateCurve::new(
        TraceShape::LargeVariation,
        4_500.0,
        SimDuration::from_secs(SECS),
    );
    let pool = UserPool::new(curve, Dist::exponential_ms(2_500.0), SimRng::seed_from(6));
    let scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: SimDuration::from_millis(400),
            ..Default::default()
        },
        pool,
        Mix::single(sn.read_home_timeline_light),
        Watch {
            service: sn.post_storage,
            conns: Some((sn.home_timeline, sn.post_storage)),
        },
    )
    // At DRIFT_AT the users start reading 10-post timelines instead of 2.
    .with_mix_change(
        SimTime::from_secs(DRIFT_AT),
        Mix::single(sn.read_home_timeline_heavy),
    );
    let result = scenario.run(&mut sn.world, controller);
    let final_conns = result.timeline.last().map_or(0, |r| r.conns_established);
    let final_replicas = result.timeline.last().map_or(0, |r| r.replicas);
    println!(
        "{name:12} p99 {:6.0} ms   goodput(400ms) {:5.0} req/s   \
         final: {} Post-Storage replicas, {} established connections",
        result.summary.p99_ms, result.summary.goodput_rps, final_replicas, final_conns,
    );
}

fn main() {
    let (home_timeline, post_storage) = (telemetry::ServiceId(1), telemetry::ServiceId(2));
    println!("Large Variation trace, 4 500 users, light→heavy read drift at {DRIFT_AT} s:\n");
    let hpa = || {
        HpaController::new(
            post_storage,
            HpaConfig {
                max_replicas: 6,
                ..Default::default()
            },
        )
    };

    let mut hpa_only = hpa();
    run("HPA", &mut hpa_only);

    let registry = ResourceRegistry::new().with(
        SoftResource::ConnPool {
            caller: home_timeline,
            target: post_storage,
        },
        ResourceBounds { min: 4, max: 256 },
    );
    let mut sora = SoraController::sora(
        SoraConfig {
            sla: SimDuration::from_millis(400),
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            ..Default::default()
        },
        registry,
        hpa(),
    );
    run("HPA + Sora", &mut sora);
    println!("\nSora's connection-pool actuations:");
    for (t, resource, value) in sora.actions() {
        println!("  {t}: {resource} -> {value}");
    }
}
