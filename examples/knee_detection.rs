//! Standalone tour of the SCG model: build a concurrency–goodput scatter
//! by hand, watch the Kneedle detector find the knee, and see how the
//! response-time threshold moves it (the paper's Fig. 7 effect).
//!
//! Run with: `cargo run --release --example knee_detection`

use scg::{propagate_deadline, Kneedle, ScgModel};
use sim_core::{SimDuration, SimRng};
use telemetry::ScatterPoint;

/// Synthesises `<Q, GP>` samples for a 4-core-ish service: goodput rises
/// with concurrency until the deadline starts rejecting slow requests.
fn synthesize(threshold_ms: f64, rng: &mut SimRng) -> Vec<ScatterPoint> {
    let mut pts = Vec::new();
    for _ in 0..600 {
        let q = 1.0 + rng.f64() * 39.0;
        // Service rate saturates at 4 cores; sojourn grows with q.
        let throughput = 1_000.0 * (q / 4.0).min(1.0) / (1.0 + 0.02 * (q - 4.0).max(0.0));
        let sojourn_ms = 4.0 * q.max(4.0) / 4.0;
        // Fraction of requests within the deadline (logistic cut).
        let within = 1.0 / (1.0 + ((sojourn_ms - threshold_ms) / 4.0).exp());
        let noise = 1.0 + (rng.f64() - 0.5) * 0.1;
        pts.push(ScatterPoint {
            q,
            rate: throughput * within * noise,
        });
    }
    pts
}

fn main() {
    let mut rng = SimRng::seed_from(42);
    let model = ScgModel::default();

    println!("SCG knee vs response-time threshold (synthetic 4-core service):\n");
    for threshold_ms in [10.0, 20.0, 40.0, 80.0] {
        let pts = synthesize(threshold_ms, &mut rng);
        match model.estimate(&pts) {
            Some(est) => println!(
                "threshold {threshold_ms:>4} ms  ->  optimal concurrency {:>2} \
                 (goodput {:>6.0} req/s, polynomial degree {})",
                est.optimal, est.rate_at_optimal, est.degree
            ),
            None => println!("threshold {threshold_ms:>4} ms  ->  no knee (unsaturated data)"),
        }
    }

    // Raw Kneedle on an analytic curve, for comparison.
    let xs: Vec<f64> = (1..=40).map(f64::from).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&q| 1_000.0 * (1.0 - (-q / 6.0).exp()))
        .collect();
    let knee = Kneedle::default().detect(&xs, &ys);
    println!("\nKneedle on 1000·(1 − e^(−q/6)): knee at q = {knee:?}");

    // Deadline propagation: the knob that makes the model latency-aware.
    let sla = SimDuration::from_millis(150);
    for upstream_ms in [0u64, 10, 60, 140] {
        let rtt = propagate_deadline(sla, SimDuration::from_millis(upstream_ms));
        println!(
            "SLA 150 ms, upstream processing {upstream_ms:>3} ms -> critical-service \
             threshold {} ms",
            rtt.as_millis()
        );
    }
}
