//! Failure injection: abruptly kill a replica mid-run and watch the
//! system absorb it — aborted requests are reclaimed, the closed-loop users
//! retry, and HPA restores capacity.
//!
//! Run with: `cargo run --release --example failure_injection`

use apps::{Scenario, ScenarioConfig, SockShop, SockShopParams, Watch};
use autoscalers::{HpaConfig, HpaController};
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_core::Controller;
use workload::{Mix, RateCurve, TraceShape, UserPool};

/// A controller wrapper that kills one Cart replica at a fixed instant,
/// then delegates to HPA — a crude chaos monkey.
struct ChaosThenHpa {
    kill_at: SimTime,
    killed: bool,
    hpa: HpaController,
}

impl Controller for ChaosThenHpa {
    fn control(&mut self, world: &mut microsim::World, now: SimTime) {
        if !self.killed && now >= self.kill_at {
            let victims = world.ready_replicas(self.hpa.service());
            if let Some(&victim) = victims.first() {
                println!(
                    "t={now}: chaos kills {victim} ({} in flight aborted so far: {})",
                    world.running_threads(self.hpa.service()),
                    world.dropped()
                );
                world.fail_replica(victim);
                self.killed = true;
            }
        }
        self.hpa.control(world, now);
    }

    fn name(&self) -> &str {
        "chaos+hpa"
    }
}

fn main() {
    let cart = telemetry::ServiceId(1);
    let mut shop = SockShop::build(
        SockShopParams {
            cart_cores: 2,
            cart_threads: 16,
            ..Default::default()
        },
        SimRng::seed_from(13),
    );
    // A second replica up front so the kill does not black-hole the service.
    let pod = shop.world.add_replica(cart).expect("placement");
    shop.world.make_ready(pod);

    let curve = RateCurve::new(TraceShape::Steady, 1_200.0, SimDuration::from_secs(120));
    let pool = UserPool::new(curve, Dist::exponential_ms(2_500.0), SimRng::seed_from(14));
    let scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: SimDuration::from_millis(400),
            ..Default::default()
        },
        pool,
        Mix::single(shop.get_cart),
        Watch {
            service: cart,
            conns: None,
        },
    );
    let mut chaos = ChaosThenHpa {
        kill_at: SimTime::from_secs(45),
        killed: false,
        hpa: HpaController::new(
            cart,
            HpaConfig {
                min_replicas: 2,
                ..Default::default()
            },
        ),
    };
    let res = scenario.run(&mut shop.world, &mut chaos);

    println!(
        "\ncompleted {}  dropped {} (aborted by the kill + edge refusals)",
        res.summary.completed, res.summary.dropped
    );
    println!(
        "p99 {:.0} ms, goodput(400ms) {:.0} req/s",
        res.summary.p99_ms, res.summary.goodput_rps
    );
    println!(
        "cart replicas at end: {} (HPA restored capacity)",
        shop.world.ready_replicas(cart).len()
    );
    for row in res.timeline.iter().step_by(15) {
        println!(
            "t={:>4.0}s replicas={} running_threads={:>2}",
            row.t_secs, row.replicas, row.running_threads
        );
    }
}
