//! The trace warehouse: a time-horizon-bounded store of finished traces.

use crate::{ServiceId, Span, Trace};
use sim_core::{SimDuration, SimTime};
use std::collections::{HashSet, VecDeque};

/// Upper bound on recycled span vectors kept in the spare pool.
const SPARE_POOL_CAP: usize = 256;

/// In-memory stand-in for the paper's Neo4j/MongoDB trace warehouse.
///
/// Finished traces are appended in completion order; traces older than a
/// configurable horizon are evicted so memory stays bounded over long runs.
/// A sampling ratio (1 in `k`) can be applied at ingest, mirroring
/// production tracing samplers; the concurrency/goodput metrics pipeline
/// does *not* go through the warehouse (it uses the dedicated per-service
/// samplers), so sampling here only affects critical-path analysis, exactly
/// like in the paper's architecture (Fig. 8).
///
/// Ingest is **idempotent**: a simulated network may retransmit trace
/// reports, so each trace is keyed by its root span id and duplicates are
/// dropped before they can advance the sampling counter — a run with
/// duplicated deliveries stores byte-identical contents to one without.
/// Dedupe state is horizon-bounded: ids are forgotten alongside eviction,
/// so a duplicate arriving more than a horizon late would be re-admitted
/// (at that age it can no longer sit next to its original in any query
/// window that also contains the original).
///
/// # Example
///
/// ```
/// use telemetry::{Trace, TraceWarehouse, Span, SpanId, RequestId, RequestTypeId,
///                 ServiceId, ReplicaId};
/// use sim_core::{SimDuration, SimTime};
///
/// let mut w = TraceWarehouse::new(SimDuration::from_secs(60), 1);
/// let span = Span {
///     id: SpanId(0), request: RequestId(0), service: ServiceId(0),
///     replica: ReplicaId(0), parent: None,
///     arrival: SimTime::ZERO, service_start: SimTime::ZERO, departure: SimTime::from_millis(10),
///     children: vec![],
/// };
/// w.push(Trace { request: RequestId(0), request_type: RequestTypeId(0), spans: vec![span] });
/// assert_eq!(w.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWarehouse {
    horizon: SimDuration,
    sample_every: u64,
    counter: u64,
    traces: VecDeque<StoredTrace>,
    /// Root span ids of every distinct trace ingested within the horizon
    /// (stored *and* sampled-out), for duplicate suppression.
    seen: HashSet<u64>,
    /// `(completed, root span id)` in ingest order, mirroring `seen` so ids
    /// can be forgotten as the horizon advances. Out-of-order stragglers
    /// stall behind newer front entries and are retained slightly longer
    /// than the horizon — benign, it only widens the dedupe window.
    ledger: VecDeque<(SimTime, u64)>,
    /// Duplicate traces dropped at ingest.
    duplicates_dropped: u64,
    /// Recycled span vectors (capacity only; contents are cleared before
    /// reuse) handed back out through [`Self::take_spare_spans`] so steady-state
    /// trace assembly stops allocating.
    spare_spans: Vec<Vec<Span>>,
}

/// A trace plus the two query keys every warehouse scan needs, computed once
/// at ingest: the completion time (otherwise re-derived from the root span on
/// every window comparison) and a Bloom-style presence mask of the services
/// the trace touched (bit `service.0 % 64`). A clear mask bit proves the
/// service is absent, so [`TraceWarehouse::iter_touching`] skips the span
/// scan for non-matching traces; a set bit is confirmed by the exact scan
/// (only relevant for topologies with ≥ 64 services, where bits can alias).
#[derive(Debug, Clone)]
struct StoredTrace {
    completed: SimTime,
    service_mask: u64,
    trace: Trace,
}

fn service_bit(service: ServiceId) -> u64 {
    1u64 << (service.0 % 64)
}

impl TraceWarehouse {
    /// Creates a warehouse keeping `horizon` of history, ingesting one in
    /// `sample_every` traces (`1` keeps everything).
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn new(horizon: SimDuration, sample_every: u64) -> Self {
        assert!(sample_every > 0, "sample_every must be at least 1");
        TraceWarehouse {
            horizon,
            sample_every,
            counter: 0,
            traces: VecDeque::new(),
            seen: HashSet::new(),
            ledger: VecDeque::new(),
            duplicates_dropped: 0,
            spare_spans: Vec::new(),
        }
    }

    /// Ingests a finished trace (subject to sampling), evicting expired ones.
    ///
    /// A trace whose root span id was already ingested within the horizon is
    /// a network retransmit: it is dropped *before* the sampling counter
    /// advances, so duplicated deliveries cannot shift which later traces
    /// the sampler keeps. Traces with no spans bypass dedupe (they have no
    /// identity to key on).
    pub fn push(&mut self, trace: Trace) {
        let now = trace.completed_at();
        if let Some(root) = trace.spans.first() {
            let id = root.id.get();
            if !self.seen.insert(id) {
                self.duplicates_dropped += 1;
                self.recycle(trace.spans);
                return;
            }
            self.ledger.push_back((now, id));
        }
        self.counter += 1;
        if (self.counter - 1).is_multiple_of(self.sample_every) {
            let service_mask = trace
                .spans
                .iter()
                .fold(0u64, |mask, span| mask | service_bit(span.service));
            self.traces.push_back(StoredTrace {
                completed: now,
                service_mask,
                trace,
            });
        } else {
            self.recycle(trace.spans);
        }
        self.evict_before(now);
    }

    /// Drops traces that completed before `now − horizon`, forgetting their
    /// dedupe ids along the way and recycling their span storage.
    pub fn evict_before(&mut self, now: SimTime) {
        let cutoff = now.saturating_since(SimTime::ZERO);
        let min_keep = if cutoff > self.horizon {
            SimTime::ZERO + (cutoff - self.horizon)
        } else {
            SimTime::ZERO
        };
        while let Some(front) = self.traces.front() {
            if front.completed < min_keep {
                let expired = self.traces.pop_front().expect("front exists");
                self.recycle(expired.trace.spans);
            } else {
                break;
            }
        }
        while let Some(&(t, id)) = self.ledger.front() {
            if t < min_keep {
                self.ledger.pop_front();
                self.seen.remove(&id);
            } else {
                break;
            }
        }
    }

    /// Returns a cleared, possibly pre-sized span vector from the spare
    /// pool (or a fresh one), for assembling the next trace without a heap
    /// allocation in steady state.
    pub fn take_spare_spans(&mut self) -> Vec<Span> {
        self.spare_spans.pop().unwrap_or_default()
    }

    fn recycle(&mut self, mut spans: Vec<Span>) {
        if self.spare_spans.len() < SPARE_POOL_CAP && spans.capacity() > 0 {
            spans.clear();
            self.spare_spans.push(spans);
        }
    }

    /// Duplicate traces dropped at ingest (network retransmits).
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// Checks the idempotence invariant: no two *stored* traces share a root
    /// span id. Ingest-time dedupe makes this hold by construction; the
    /// audit re-derives it from the stored contents alone, so a regression
    /// in the dedupe bookkeeping (or a bypass path) is caught here.
    #[cfg(feature = "audit")]
    pub fn audit_into(&self, now: SimTime, sink: &mut dyn sim_core::audit::AuditSink) {
        use sim_core::audit::{Invariant, Violation};
        let mut roots = HashSet::with_capacity(self.traces.len());
        let mut dupes = 0u64;
        let mut example = None;
        for s in &self.traces {
            if let Some(root) = s.trace.spans.first() {
                if !roots.insert(root.id.get()) {
                    dupes += 1;
                    example.get_or_insert(root.id);
                }
            }
        }
        if let Some(id) = example {
            sink.record(Violation {
                invariant: Invariant::TelemetryIdempotence,
                at_nanos: now.as_nanos(),
                detail: format!(
                    "{dupes} stored trace(s) share a root span id with an \
                     earlier stored trace; first duplicate root span {id}"
                ),
            });
        }
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total traces offered for ingest (before sampling/eviction).
    pub fn ingested(&self) -> u64 {
        self.counter
    }

    /// Iterates stored traces oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Trace> + '_ {
        self.traces.iter().map(|s| &s.trace)
    }

    /// Iterates traces that completed within `[from, to)`.
    pub fn iter_window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &Trace> + '_ {
        self.traces
            .iter()
            .filter(move |s| s.completed >= from && s.completed < to)
            .map(|s| &s.trace)
    }

    /// Iterates traces whose spans touch `service` in `[from, to)`.
    ///
    /// Traces whose ingest-time presence mask excludes the service are
    /// skipped without scanning their spans; mask hits are confirmed by an
    /// exact span scan (masks can alias above 64 services).
    pub fn iter_touching(
        &self,
        service: ServiceId,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &Trace> + '_ {
        let bit = service_bit(service);
        self.traces
            .iter()
            .filter(move |s| {
                s.completed >= from
                    && s.completed < to
                    && s.service_mask & bit != 0
                    && s.trace.spans.iter().any(|sp| sp.service == service)
            })
            .map(|s| &s.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReplicaId, RequestId, RequestTypeId, Span, SpanId};

    fn trace(req: u64, done_ms: u64) -> Trace {
        Trace {
            request: RequestId(req),
            request_type: RequestTypeId(0),
            spans: vec![Span {
                id: SpanId(req),
                request: RequestId(req),
                service: ServiceId((req % 3) as u32),
                replica: ReplicaId(0),
                parent: None,
                arrival: SimTime::ZERO,
                service_start: SimTime::ZERO,
                departure: SimTime::from_millis(done_ms),
                children: vec![],
            }],
        }
    }

    #[test]
    fn horizon_evicts_old_traces() {
        let mut w = TraceWarehouse::new(SimDuration::from_millis(100), 1);
        w.push(trace(1, 10));
        w.push(trace(2, 50));
        w.push(trace(3, 160)); // cutoff 60 ms evicts both earlier traces
        assert_eq!(w.len(), 1);
        assert_eq!(w.iter().next().unwrap().request, RequestId(3));
    }

    #[test]
    fn sampling_keeps_one_in_k() {
        let mut w = TraceWarehouse::new(SimDuration::from_secs(10), 3);
        for i in 0..9 {
            w.push(trace(i, i + 1));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.ingested(), 9);
    }

    #[test]
    fn window_queries() {
        let mut w = TraceWarehouse::new(SimDuration::from_secs(10), 1);
        for i in 1..=5 {
            w.push(trace(i, i * 10));
        }
        let hits: Vec<_> = w
            .iter_window(SimTime::from_millis(20), SimTime::from_millis(41))
            .map(|t| t.request.get())
            .collect();
        assert_eq!(hits, [2, 3, 4]);
        let touching = w
            .iter_touching(ServiceId(1), SimTime::ZERO, SimTime::from_secs(1))
            .count();
        assert_eq!(touching, 2); // requests 1 and 4
    }

    #[test]
    fn touching_mask_is_exact_even_with_aliased_ids() {
        // ServiceId(1) and ServiceId(65) share presence-mask bit 1; the
        // confirming span scan must still tell them apart.
        let mut w = TraceWarehouse::new(SimDuration::from_secs(10), 1);
        let mut t1 = trace(1, 10);
        t1.spans[0].service = ServiceId(65);
        w.push(t1);
        let mut t2 = trace(2, 20);
        t2.spans[0].service = ServiceId(1);
        w.push(t2);
        let count = |svc: u32| {
            w.iter_touching(ServiceId(svc), SimTime::ZERO, SimTime::from_secs(1))
                .count()
        };
        assert_eq!(count(1), 1);
        assert_eq!(count(65), 1);
        assert_eq!(count(2), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_sampling_panics() {
        let _ = TraceWarehouse::new(SimDuration::from_secs(1), 0);
    }

    #[test]
    fn duplicate_push_is_idempotent() {
        let mut w = TraceWarehouse::new(SimDuration::from_secs(10), 1);
        w.push(trace(1, 10));
        w.push(trace(1, 10)); // retransmit of the same trace
        w.push(trace(2, 20));
        assert_eq!(w.len(), 2);
        assert_eq!(w.ingested(), 2);
        assert_eq!(w.duplicates_dropped(), 1);
    }

    #[test]
    fn duplicates_do_not_shift_the_sampler() {
        // With 1-in-2 sampling, interleaved retransmits must not change
        // which distinct traces get kept.
        let mut clean = TraceWarehouse::new(SimDuration::from_secs(10), 2);
        let mut noisy = TraceWarehouse::new(SimDuration::from_secs(10), 2);
        for i in 0..6 {
            clean.push(trace(i, 10 * (i + 1)));
            noisy.push(trace(i, 10 * (i + 1)));
            noisy.push(trace(i, 10 * (i + 1))); // duplicate every delivery
        }
        let kept = |w: &TraceWarehouse| -> Vec<u64> { w.iter().map(|t| t.request.get()).collect() };
        assert_eq!(kept(&clean), kept(&noisy));
        assert_eq!(noisy.duplicates_dropped(), 6);
        assert_eq!(clean.ingested(), noisy.ingested());
    }

    #[test]
    fn dedupe_ids_are_forgotten_with_the_horizon() {
        let mut w = TraceWarehouse::new(SimDuration::from_millis(100), 1);
        w.push(trace(1, 10));
        w.push(trace(2, 300)); // evicts trace 1 and its dedupe id
        w.push(trace(1, 10)); // a full horizon late: re-admitted
        assert_eq!(w.duplicates_dropped(), 0);
        assert_eq!(w.ingested(), 3);
    }

    #[test]
    fn spare_span_pool_recycles_capacity() {
        let mut w = TraceWarehouse::new(SimDuration::from_millis(50), 1);
        assert_eq!(w.take_spare_spans().capacity(), 0);
        w.push(trace(1, 10));
        w.push(trace(2, 200)); // evicts trace 1, recycling its span vec
        let spare = w.take_spare_spans();
        assert!(spare.is_empty(), "recycled vec must be cleared");
        assert!(spare.capacity() > 0, "recycled vec keeps its capacity");
        // Duplicates also donate their span storage.
        w.push(trace(2, 200));
        assert!(w.take_spare_spans().capacity() > 0);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audit_flags_stored_duplicates() {
        use sim_core::audit::{CountingSink, Invariant};
        let mut w = TraceWarehouse::new(SimDuration::from_secs(10), 1);
        w.push(trace(1, 10));
        w.push(trace(2, 20));
        let mut sink = CountingSink::new();
        w.audit_into(SimTime::from_millis(20), &mut sink);
        assert_eq!(sink.total(), 0, "{}", sink.summary());
        // Force a duplicate past the ingest guard to prove the audit is an
        // independent re-derivation, not a mirror of the dedupe set.
        let smuggled = trace(1, 30);
        let mask = service_bit(smuggled.spans[0].service);
        w.traces.push_back(StoredTrace {
            completed: SimTime::from_millis(30),
            service_mask: mask,
            trace: smuggled,
        });
        w.audit_into(SimTime::from_millis(30), &mut sink);
        assert_eq!(sink.count(Invariant::TelemetryIdempotence), 1);
    }
}
