//! The trace warehouse: a time-horizon-bounded store of finished traces.

use crate::{ServiceId, Trace};
use sim_core::{SimDuration, SimTime};
use std::collections::VecDeque;

/// In-memory stand-in for the paper's Neo4j/MongoDB trace warehouse.
///
/// Finished traces are appended in completion order; traces older than a
/// configurable horizon are evicted so memory stays bounded over long runs.
/// A sampling ratio (1 in `k`) can be applied at ingest, mirroring
/// production tracing samplers; the concurrency/goodput metrics pipeline
/// does *not* go through the warehouse (it uses the dedicated per-service
/// samplers), so sampling here only affects critical-path analysis, exactly
/// like in the paper's architecture (Fig. 8).
///
/// # Example
///
/// ```
/// use telemetry::{Trace, TraceWarehouse, Span, SpanId, RequestId, RequestTypeId,
///                 ServiceId, ReplicaId};
/// use sim_core::{SimDuration, SimTime};
///
/// let mut w = TraceWarehouse::new(SimDuration::from_secs(60), 1);
/// let span = Span {
///     id: SpanId(0), request: RequestId(0), service: ServiceId(0),
///     replica: ReplicaId(0), parent: None,
///     arrival: SimTime::ZERO, service_start: SimTime::ZERO, departure: SimTime::from_millis(10),
///     children: vec![],
/// };
/// w.push(Trace { request: RequestId(0), request_type: RequestTypeId(0), spans: vec![span] });
/// assert_eq!(w.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWarehouse {
    horizon: SimDuration,
    sample_every: u64,
    counter: u64,
    traces: VecDeque<StoredTrace>,
}

/// A trace plus the two query keys every warehouse scan needs, computed once
/// at ingest: the completion time (otherwise re-derived from the root span on
/// every window comparison) and a Bloom-style presence mask of the services
/// the trace touched (bit `service.0 % 64`). A clear mask bit proves the
/// service is absent, so [`TraceWarehouse::iter_touching`] skips the span
/// scan for non-matching traces; a set bit is confirmed by the exact scan
/// (only relevant for topologies with ≥ 64 services, where bits can alias).
#[derive(Debug, Clone)]
struct StoredTrace {
    completed: SimTime,
    service_mask: u64,
    trace: Trace,
}

fn service_bit(service: ServiceId) -> u64 {
    1u64 << (service.0 % 64)
}

impl TraceWarehouse {
    /// Creates a warehouse keeping `horizon` of history, ingesting one in
    /// `sample_every` traces (`1` keeps everything).
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn new(horizon: SimDuration, sample_every: u64) -> Self {
        assert!(sample_every > 0, "sample_every must be at least 1");
        TraceWarehouse {
            horizon,
            sample_every,
            counter: 0,
            traces: VecDeque::new(),
        }
    }

    /// Ingests a finished trace (subject to sampling), evicting expired ones.
    pub fn push(&mut self, trace: Trace) {
        self.counter += 1;
        let now = trace.completed_at();
        if (self.counter - 1).is_multiple_of(self.sample_every) {
            let service_mask = trace
                .spans
                .iter()
                .fold(0u64, |mask, span| mask | service_bit(span.service));
            self.traces.push_back(StoredTrace {
                completed: now,
                service_mask,
                trace,
            });
        }
        self.evict_before(now);
    }

    /// Drops traces that completed before `now − horizon`.
    pub fn evict_before(&mut self, now: SimTime) {
        let cutoff = now.saturating_since(SimTime::ZERO);
        let min_keep = if cutoff > self.horizon {
            SimTime::ZERO + (cutoff - self.horizon)
        } else {
            SimTime::ZERO
        };
        while let Some(front) = self.traces.front() {
            if front.completed < min_keep {
                self.traces.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total traces offered for ingest (before sampling/eviction).
    pub fn ingested(&self) -> u64 {
        self.counter
    }

    /// Iterates stored traces oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Trace> + '_ {
        self.traces.iter().map(|s| &s.trace)
    }

    /// Iterates traces that completed within `[from, to)`.
    pub fn iter_window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &Trace> + '_ {
        self.traces
            .iter()
            .filter(move |s| s.completed >= from && s.completed < to)
            .map(|s| &s.trace)
    }

    /// Iterates traces whose spans touch `service` in `[from, to)`.
    ///
    /// Traces whose ingest-time presence mask excludes the service are
    /// skipped without scanning their spans; mask hits are confirmed by an
    /// exact span scan (masks can alias above 64 services).
    pub fn iter_touching(
        &self,
        service: ServiceId,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &Trace> + '_ {
        let bit = service_bit(service);
        self.traces
            .iter()
            .filter(move |s| {
                s.completed >= from
                    && s.completed < to
                    && s.service_mask & bit != 0
                    && s.trace.spans.iter().any(|sp| sp.service == service)
            })
            .map(|s| &s.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReplicaId, RequestId, RequestTypeId, Span, SpanId};

    fn trace(req: u64, done_ms: u64) -> Trace {
        Trace {
            request: RequestId(req),
            request_type: RequestTypeId(0),
            spans: vec![Span {
                id: SpanId(req),
                request: RequestId(req),
                service: ServiceId((req % 3) as u32),
                replica: ReplicaId(0),
                parent: None,
                arrival: SimTime::ZERO,
                service_start: SimTime::ZERO,
                departure: SimTime::from_millis(done_ms),
                children: vec![],
            }],
        }
    }

    #[test]
    fn horizon_evicts_old_traces() {
        let mut w = TraceWarehouse::new(SimDuration::from_millis(100), 1);
        w.push(trace(1, 10));
        w.push(trace(2, 50));
        w.push(trace(3, 160)); // cutoff 60 ms evicts both earlier traces
        assert_eq!(w.len(), 1);
        assert_eq!(w.iter().next().unwrap().request, RequestId(3));
    }

    #[test]
    fn sampling_keeps_one_in_k() {
        let mut w = TraceWarehouse::new(SimDuration::from_secs(10), 3);
        for i in 0..9 {
            w.push(trace(i, i + 1));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.ingested(), 9);
    }

    #[test]
    fn window_queries() {
        let mut w = TraceWarehouse::new(SimDuration::from_secs(10), 1);
        for i in 1..=5 {
            w.push(trace(i, i * 10));
        }
        let hits: Vec<_> = w
            .iter_window(SimTime::from_millis(20), SimTime::from_millis(41))
            .map(|t| t.request.get())
            .collect();
        assert_eq!(hits, [2, 3, 4]);
        let touching = w
            .iter_touching(ServiceId(1), SimTime::ZERO, SimTime::from_secs(1))
            .count();
        assert_eq!(touching, 2); // requests 1 and 4
    }

    #[test]
    fn touching_mask_is_exact_even_with_aliased_ids() {
        // ServiceId(1) and ServiceId(65) share presence-mask bit 1; the
        // confirming span scan must still tell them apart.
        let mut w = TraceWarehouse::new(SimDuration::from_secs(10), 1);
        let mut t1 = trace(1, 10);
        t1.spans[0].service = ServiceId(65);
        w.push(t1);
        let mut t2 = trace(2, 20);
        t2.spans[0].service = ServiceId(1);
        w.push(t2);
        let count = |svc: u32| {
            w.iter_touching(ServiceId(svc), SimTime::ZERO, SimTime::from_secs(1))
                .count()
        };
        assert_eq!(count(1), 1);
        assert_eq!(count(65), 1);
        assert_eq!(count(2), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_sampling_panics() {
        let _ = TraceWarehouse::new(SimDuration::from_secs(1), 0);
    }
}
