//! Time-weighted concurrency tracking for one service.

use sim_core::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Tracks the number of requests concurrently *in service* (holding a
/// thread / being processed) as a piecewise-constant level, and answers
/// windowed queries like "average concurrency in each 100 ms bucket of the
/// last 3 minutes" — the `Q_n` half of the SCG model's `<Q_n, GP_n>` pairs.
///
/// Change points older than the retention horizon are compacted away, so
/// memory stays bounded during long runs.
///
/// # Example
///
/// ```
/// use telemetry::ConcurrencyTracker;
/// use sim_core::{SimDuration, SimTime};
///
/// let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
/// c.enter(SimTime::ZERO);
/// c.enter(SimTime::from_millis(50));
/// c.leave(SimTime::from_millis(100));
/// // Bucket [0, 100ms): one request for 50 ms, two for 50 ms → avg 1.5.
/// let avgs = c.bucket_averages(SimTime::ZERO, SimTime::from_millis(100),
///                              SimDuration::from_millis(100));
/// assert!((avgs[0] - 1.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ConcurrencyTracker {
    horizon: SimDuration,
    /// `(since, level)` change points, oldest first. Invariant: times are
    /// strictly increasing and the last entry is the current level.
    changes: VecDeque<(SimTime, u32)>,
    current: u32,
    peak: u32,
}

impl ConcurrencyTracker {
    /// Creates a tracker retaining `horizon` of history.
    pub fn new(horizon: SimDuration) -> Self {
        let mut changes = VecDeque::new();
        changes.push_back((SimTime::ZERO, 0));
        ConcurrencyTracker {
            horizon,
            changes,
            current: 0,
            peak: 0,
        }
    }

    /// Current in-service count.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Highest level ever observed.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Records a request entering service at `t`.
    pub fn enter(&mut self, t: SimTime) {
        self.set_level(t, self.current + 1);
    }

    /// Records a request leaving service at `t`.
    ///
    /// # Panics
    ///
    /// Panics if no request is in service (accounting bug upstream).
    pub fn leave(&mut self, t: SimTime) {
        assert!(self.current > 0, "leave() without matching enter()");
        self.set_level(t, self.current - 1);
    }

    fn set_level(&mut self, t: SimTime, level: u32) {
        let &(last_t, last_level) = self.changes.back().expect("never empty");
        assert!(t >= last_t, "concurrency change out of order");
        if level == last_level {
            self.current = level;
            return;
        }
        if t == last_t {
            // Coalesce simultaneous changes.
            self.changes.back_mut().expect("never empty").1 = level;
        } else {
            self.changes.push_back((t, level));
        }
        self.current = level;
        self.peak = self.peak.max(level);
        self.compact(t);
    }

    /// Drops change points no longer needed to answer queries newer than
    /// `now − horizon`, keeping one anchor before the cutoff.
    fn compact(&mut self, now: SimTime) {
        let keep_from = now.saturating_since(SimTime::ZERO);
        if keep_from <= self.horizon {
            return;
        }
        let cutoff = SimTime::ZERO + (keep_from - self.horizon);
        while self.changes.len() >= 2 && self.changes[1].0 <= cutoff {
            self.changes.pop_front();
        }
    }

    /// Time-weighted average level over `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`.
    pub fn average_in(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from < to, "empty window");
        let mut integral = 0.0;
        for (seg_start, seg_end, level) in self.segments() {
            let s = seg_start.max(from);
            let e = seg_end.min(to);
            if e > s {
                integral += (e - s).as_nanos() as f64 * f64::from(level);
            }
        }
        integral / (to - from).as_nanos() as f64
    }

    /// Average level in each `width`-sized bucket of `[from, to)`.
    ///
    /// `to − from` is truncated to a whole number of buckets.
    pub fn bucket_averages(&self, from: SimTime, to: SimTime, width: SimDuration) -> Vec<f64> {
        assert!(!width.is_zero(), "bucket width must be non-zero");
        let n = ((to.saturating_since(from)).as_nanos() / width.as_nanos()) as usize;
        let mut out = vec![0.0; n];
        for (seg_start, seg_end, level) in self.segments() {
            if level == 0 {
                continue;
            }
            let s = seg_start.max(from);
            let e = seg_end.min(from + width * n as u64);
            if e <= s {
                continue;
            }
            let mut cursor = s;
            while cursor < e {
                let idx = ((cursor - from).as_nanos() / width.as_nanos()) as usize;
                let bucket_end = from + width * (idx as u64 + 1);
                let chunk_end = bucket_end.min(e);
                out[idx] += (chunk_end - cursor).as_nanos() as f64 * f64::from(level);
                cursor = chunk_end;
            }
        }
        let w = width.as_nanos() as f64;
        for v in &mut out {
            *v /= w;
        }
        out
    }

    /// Iterates `(start, end, level)` segments; the final segment extends to
    /// [`SimTime::MAX`] with the current level.
    fn segments(&self) -> impl Iterator<Item = (SimTime, SimTime, u32)> + '_ {
        let n = self.changes.len();
        (0..n).map(move |i| {
            let (start, level) = self.changes[i];
            let end = if i + 1 < n {
                self.changes[i + 1].0
            } else {
                SimTime::MAX
            };
            (start, end, level)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn enter_leave_tracks_level() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
        assert_eq!(c.current(), 0);
        c.enter(t(1));
        c.enter(t(2));
        assert_eq!(c.current(), 2);
        c.leave(t(3));
        assert_eq!(c.current(), 1);
        assert_eq!(c.peak(), 2);
    }

    #[test]
    fn average_is_time_weighted() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
        c.enter(t(0));
        c.enter(t(100)); // level 2 from 100
        c.leave(t(300)); // level 1 from 300
        c.leave(t(400)); // level 0 from 400
                         // [0,400): 100ms@1 + 200ms@2 + 100ms@1 = 600 level·ms / 400 = 1.5
        assert!((c.average_in(t(0), t(400)) - 1.5).abs() < 1e-9);
        // Open-ended current level counts too.
        c.enter(t(500));
        assert!((c.average_in(t(500), t(600)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_averages_match_average_in() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
        c.enter(t(30));
        c.enter(t(130));
        c.leave(t(250));
        let buckets = c.bucket_averages(t(0), t(300), SimDuration::from_millis(100));
        assert_eq!(buckets.len(), 3);
        for (i, &b) in buckets.iter().enumerate() {
            let from = t(i as u64 * 100);
            let to = t((i as u64 + 1) * 100);
            assert!((b - c.average_in(from, to)).abs() < 1e-9, "bucket {i}");
        }
    }

    #[test]
    fn simultaneous_changes_coalesce() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
        c.enter(t(10));
        c.leave(t(10));
        assert_eq!(c.current(), 0);
        assert!((c.average_in(t(0), t(20)) - 0.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "without matching enter")]
    fn unbalanced_leave_panics() {
        ConcurrencyTracker::new(SimDuration::from_secs(1)).leave(t(1));
    }

    #[test]
    fn compaction_preserves_recent_queries() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_millis(100));
        for i in 0..1000u64 {
            c.enter(t(i * 2));
            c.leave(t(i * 2 + 1));
        }
        // Only recent history retained...
        assert!(c.changes.len() < 220);
        // ...but queries inside the horizon are exact: level alternates
        // 1/0 per ms → average 0.5.
        let avg = c.average_in(t(1950), t(1990));
        assert!((avg - 0.5).abs() < 0.05, "avg {avg}");
    }

    proptest! {
        /// Sum over buckets × width equals the integral over the window.
        #[test]
        fn prop_buckets_partition_integral(
            events in proptest::collection::vec(0u64..500, 1..80),
        ) {
            let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
            let mut times = events.clone();
            times.sort_unstable();
            let mut level = 0u32;
            for (i, &tm) in times.iter().enumerate() {
                if level == 0 || i % 2 == 0 {
                    c.enter(t(tm));
                    level += 1;
                } else {
                    c.leave(t(tm));
                    level -= 1;
                }
            }
            let width = SimDuration::from_millis(50);
            let buckets = c.bucket_averages(t(0), t(500), width);
            let total: f64 = buckets.iter().sum::<f64>() * 50.0;
            let integral = c.average_in(t(0), t(500)) * 500.0;
            prop_assert!((total - integral).abs() < 1e-6,
                "bucketed {total} vs integral {integral}");
        }
    }
}
