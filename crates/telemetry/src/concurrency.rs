//! Time-weighted concurrency tracking for one service.

use sim_core::stats::BucketRing;
use sim_core::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Resolution of the streaming aggregation ring: 10 ms divides every
/// sampling interval the pipeline uses (10/20/50/100/200/500 ms), so any
/// interval-aligned window is a whole number of ring buckets.
pub(crate) const RING_WIDTH_NANOS: u64 = 10_000_000;

/// Tracks the number of requests concurrently *in service* (holding a
/// thread / being processed) as a piecewise-constant level, and answers
/// windowed queries like "average concurrency in each 100 ms bucket of the
/// last 3 minutes" — the `Q_n` half of the SCG model's `<Q_n, GP_n>` pairs.
///
/// Change points older than the retention horizon are compacted away, so
/// memory stays bounded during long runs.
///
/// Windowed queries are served from a streaming aggregation ring: every
/// closed level segment folds its exact integer `level · nanoseconds`
/// integral into a 10 ms [`BucketRing`] at ingest, so an aligned query
/// reads `O(window buckets)` slots instead of re-walking the change-point
/// history. The integrals are integers divided once at query time, so
/// ring-served answers are bit-identical to the retained scan
/// implementation (exposed as the `*_scan` oracle under
/// `cfg(any(test, feature = "reference-scan"))`); unaligned or
/// out-of-retention windows fall back to the scan transparently.
///
/// # Example
///
/// ```
/// use telemetry::ConcurrencyTracker;
/// use sim_core::{SimDuration, SimTime};
///
/// let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
/// c.enter(SimTime::ZERO);
/// c.enter(SimTime::from_millis(50));
/// c.leave(SimTime::from_millis(100));
/// // Bucket [0, 100ms): one request for 50 ms, two for 50 ms → avg 1.5.
/// let avgs = c.bucket_averages(SimTime::ZERO, SimTime::from_millis(100),
///                              SimDuration::from_millis(100));
/// assert!((avgs[0] - 1.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ConcurrencyTracker {
    horizon: SimDuration,
    /// `(since, level)` change points, oldest first. Invariant: times are
    /// strictly increasing and the last entry is the current level.
    changes: VecDeque<(SimTime, u32)>,
    current: u32,
    peak: u32,
    /// Per-10 ms `level · nanoseconds` integrals of every *closed* segment
    /// still described by `changes`. The open tail (last change point to
    /// "now" at the current level) is added arithmetically at query time.
    ring: BucketRing<u64>,
}

impl ConcurrencyTracker {
    /// Creates a tracker retaining `horizon` of history.
    pub fn new(horizon: SimDuration) -> Self {
        let mut changes = VecDeque::new();
        changes.push_back((SimTime::ZERO, 0));
        // +2 slots of slack: the partially-filled newest bucket plus the
        // bucket a horizon-length window starts in.
        let capacity = (horizon.as_nanos() / RING_WIDTH_NANOS + 2) as usize;
        ConcurrencyTracker {
            horizon,
            changes,
            current: 0,
            peak: 0,
            ring: BucketRing::new(RING_WIDTH_NANOS, capacity),
        }
    }

    /// Current in-service count.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Highest level ever observed.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Records a request entering service at `t`.
    pub fn enter(&mut self, t: SimTime) {
        self.set_level(t, self.current + 1);
    }

    /// Records a request leaving service at `t`.
    ///
    /// # Panics
    ///
    /// Panics if no request is in service (accounting bug upstream).
    pub fn leave(&mut self, t: SimTime) {
        assert!(self.current > 0, "leave() without matching enter()");
        self.set_level(t, self.current - 1);
    }

    fn set_level(&mut self, t: SimTime, level: u32) {
        let &(last_t, last_level) = self.changes.back().expect("never empty");
        assert!(t >= last_t, "concurrency change out of order");
        if level == last_level {
            self.current = level;
            return;
        }
        if t == last_t {
            // Coalesce simultaneous changes. The segment ending here was
            // folded when this change point was first pushed.
            self.changes.back_mut().expect("never empty").1 = level;
        } else {
            // The open segment [last_t, t) just closed: fold its integral
            // into the ring before the deque moves on.
            self.fold_segment(last_t, t, last_level, true);
            self.changes.push_back((t, level));
        }
        self.current = level;
        self.peak = self.peak.max(level);
        self.compact(t);
    }

    /// Adds (or subtracts) a closed segment's per-bucket integral.
    fn fold_segment(&mut self, from: SimTime, to: SimTime, level: u32, add: bool) {
        if level == 0 || to <= from {
            return;
        }
        let (mut a, b) = (from.as_nanos(), to.as_nanos());
        let lvl = u64::from(level);
        self.ring.advance_to((b - 1) / RING_WIDTH_NANOS);
        // Chunks below the retention window have no slot; skip them.
        a = a.max(self.ring.first_retained() * RING_WIDTH_NANOS);
        while a < b {
            let bucket = a / RING_WIDTH_NANOS;
            let chunk_end = b.min((bucket + 1) * RING_WIDTH_NANOS);
            if let Some(slot) = self.ring.slot_mut(bucket) {
                let dv = (chunk_end - a) * lvl;
                if add {
                    *slot += dv;
                } else {
                    *slot -= dv;
                }
            }
            a = chunk_end;
        }
    }

    /// Drops change points no longer needed to answer queries newer than
    /// `now − horizon`, keeping one anchor before the cutoff.
    fn compact(&mut self, now: SimTime) {
        let keep_from = now.saturating_since(SimTime::ZERO);
        if keep_from <= self.horizon {
            return;
        }
        let cutoff = SimTime::ZERO + (keep_from - self.horizon);
        while self.changes.len() >= 2 && self.changes[1].0 <= cutoff {
            let (start, level) = self.changes.pop_front().expect("len checked");
            let end = self.changes.front().expect("len checked").0;
            // The dropped segment left the deque; subtract its integral so
            // the ring keeps mirroring exactly the retained history.
            self.fold_segment(start, end, level, false);
        }
    }

    /// True when `[from, …)` windows of `width`-multiples can be answered
    /// from the ring.
    fn ring_serves(&self, from: SimTime, width_nanos: u64) -> bool {
        width_nanos.is_multiple_of(RING_WIDTH_NANOS)
            && from.as_nanos().is_multiple_of(RING_WIDTH_NANOS)
            && from.as_nanos() / RING_WIDTH_NANOS >= self.ring.first_retained()
    }

    /// Integral of the open tail segment over `[bs, be)` nanoseconds.
    fn open_tail(&self, bs: u64, be: u64) -> u64 {
        let lvl = u64::from(self.current);
        if lvl == 0 {
            return 0;
        }
        let open = self.changes.back().expect("never empty").0.as_nanos();
        if be > open {
            (be - bs.max(open)) * lvl
        } else {
            0
        }
    }

    /// Time-weighted average level over `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`.
    pub fn average_in(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from < to, "empty window");
        if self.ring_serves(from, RING_WIDTH_NANOS)
            && to.as_nanos().is_multiple_of(RING_WIDTH_NANOS)
        {
            let (b0, b1) = (
                from.as_nanos() / RING_WIDTH_NANOS,
                to.as_nanos() / RING_WIDTH_NANOS,
            );
            let mut sum: u64 = 0;
            for b in b0..b1 {
                sum += self.ring.get(b).unwrap_or(0);
            }
            sum += self.open_tail(from.as_nanos(), to.as_nanos());
            return sum as f64 / (to - from).as_nanos() as f64;
        }
        self.scan_average_in(from, to)
    }

    /// Average level in each `width`-sized bucket of `[from, to)`.
    ///
    /// `to − from` is truncated to a whole number of buckets.
    pub fn bucket_averages(&self, from: SimTime, to: SimTime, width: SimDuration) -> Vec<f64> {
        let mut out = Vec::new();
        self.bucket_averages_into(from, to, width, &mut out);
        out
    }

    /// [`ConcurrencyTracker::bucket_averages`] into a caller-owned buffer
    /// (cleared first) — the zero-allocation path for per-tick callers that
    /// reuse scratch.
    pub fn bucket_averages_into(
        &self,
        from: SimTime,
        to: SimTime,
        width: SimDuration,
        out: &mut Vec<f64>,
    ) {
        assert!(!width.is_zero(), "bucket width must be non-zero");
        out.clear();
        let w = width.as_nanos();
        let n = to.saturating_since(from).as_nanos() / w;
        if n == 0 {
            return;
        }
        if !self.ring_serves(from, w) {
            self.scan_bucket_averages_into(from, to, width, out);
            return;
        }
        let k = w / RING_WIDTH_NANOS;
        let base = from.as_nanos() / RING_WIDTH_NANOS;
        let wf = w as f64;
        out.reserve(n as usize);
        for i in 0..n {
            let b0 = base + i * k;
            let mut sum: u64 = 0;
            for b in b0..b0 + k {
                sum += self.ring.get(b).unwrap_or(0);
            }
            let bs = from.as_nanos() + i * w;
            sum += self.open_tail(bs, bs + w);
            out.push(sum as f64 / wf);
        }
    }

    /// Reference scan implementation of [`ConcurrencyTracker::average_in`]
    /// — the equivalence oracle for the ring path.
    #[cfg(any(test, feature = "reference-scan"))]
    pub fn average_in_scan(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from < to, "empty window");
        self.scan_average_in(from, to)
    }

    /// Reference scan implementation of
    /// [`ConcurrencyTracker::bucket_averages`] — the equivalence oracle for
    /// the ring path.
    #[cfg(any(test, feature = "reference-scan"))]
    pub fn bucket_averages_scan(&self, from: SimTime, to: SimTime, width: SimDuration) -> Vec<f64> {
        assert!(!width.is_zero(), "bucket width must be non-zero");
        let mut out = Vec::new();
        self.scan_bucket_averages_into(from, to, width, &mut out);
        out
    }

    fn scan_average_in(&self, from: SimTime, to: SimTime) -> f64 {
        let mut integral = 0.0;
        for (seg_start, seg_end, level) in self.segments() {
            let s = seg_start.max(from);
            let e = seg_end.min(to);
            if e > s {
                integral += (e - s).as_nanos() as f64 * f64::from(level);
            }
        }
        integral / (to - from).as_nanos() as f64
    }

    fn scan_bucket_averages_into(
        &self,
        from: SimTime,
        to: SimTime,
        width: SimDuration,
        out: &mut Vec<f64>,
    ) {
        let n = (to.saturating_since(from).as_nanos() / width.as_nanos()) as usize;
        out.clear();
        out.resize(n, 0.0);
        for (seg_start, seg_end, level) in self.segments() {
            if level == 0 {
                continue;
            }
            let s = seg_start.max(from);
            let e = seg_end.min(from + width * n as u64);
            if e <= s {
                continue;
            }
            let mut cursor = s;
            while cursor < e {
                let idx = ((cursor - from).as_nanos() / width.as_nanos()) as usize;
                let bucket_end = from + width * (idx as u64 + 1);
                let chunk_end = bucket_end.min(e);
                out[idx] += (chunk_end - cursor).as_nanos() as f64 * f64::from(level);
                cursor = chunk_end;
            }
        }
        let w = width.as_nanos() as f64;
        for v in out.iter_mut() {
            *v /= w;
        }
    }

    /// Rebuilds the per-bucket integral of every *closed* retained segment
    /// from the change-point ledger and compares it — exactly, bit for bit —
    /// against the streaming ring, reporting divergences into `sink`.
    ///
    /// The reconstruction clips segments at the ring's current retention
    /// start, mirroring what `fold_segment` did at ingest: contributions a
    /// segment once made to since-dropped buckets are irrelevant, and for
    /// every still-retained bucket the ingest-time and audit-time chunking
    /// agree term by term (all arithmetic is integer), so any mismatch is a
    /// real accounting bug, not tolerance noise.
    #[cfg(feature = "audit")]
    pub fn audit_into(&self, now: SimTime, sink: &mut dyn sim_core::audit::AuditSink) {
        use sim_core::audit::{Invariant, Violation};
        let first = self.ring.first_retained();
        let next = self.ring.next_bucket();
        if next <= first {
            return;
        }
        let mut expected = vec![0u64; (next - first) as usize];
        let clip = first * RING_WIDTH_NANOS;
        for i in 0..self.changes.len().saturating_sub(1) {
            let (start, level) = self.changes[i];
            let end = self.changes[i + 1].0;
            if level == 0 {
                continue;
            }
            let (mut a, b) = (start.as_nanos().max(clip), end.as_nanos());
            let lvl = u64::from(level);
            while a < b {
                let bucket = a / RING_WIDTH_NANOS;
                let chunk_end = b.min((bucket + 1) * RING_WIDTH_NANOS);
                if bucket >= first && bucket < next {
                    expected[(bucket - first) as usize] += (chunk_end - a) * lvl;
                }
                a = chunk_end;
            }
        }
        let mut bad = 0u64;
        let mut example = None;
        for (i, &want) in expected.iter().enumerate() {
            let bucket = first + i as u64;
            let got = self.ring.get(bucket).unwrap_or(0);
            if got != want {
                bad += 1;
                example.get_or_insert((bucket, got, want));
            }
        }
        if let Some((bucket, got, want)) = example {
            sink.record(Violation {
                invariant: Invariant::ConcurrencyIntegral,
                at_nanos: now.as_nanos(),
                detail: format!(
                    "{bad} ring bucket(s) diverge from the enter/leave ledger; \
                     first at bucket {bucket}: ring {got} vs ledger {want} level-ns"
                ),
            });
        }
    }

    /// Iterates `(start, end, level)` segments; the final segment extends to
    /// [`SimTime::MAX`] with the current level.
    fn segments(&self) -> impl Iterator<Item = (SimTime, SimTime, u32)> + '_ {
        let n = self.changes.len();
        (0..n).map(move |i| {
            let (start, level) = self.changes[i];
            let end = if i + 1 < n {
                self.changes[i + 1].0
            } else {
                SimTime::MAX
            };
            (start, end, level)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn enter_leave_tracks_level() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
        assert_eq!(c.current(), 0);
        c.enter(t(1));
        c.enter(t(2));
        assert_eq!(c.current(), 2);
        c.leave(t(3));
        assert_eq!(c.current(), 1);
        assert_eq!(c.peak(), 2);
    }

    #[test]
    fn average_is_time_weighted() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
        c.enter(t(0));
        c.enter(t(100)); // level 2 from 100
        c.leave(t(300)); // level 1 from 300
        c.leave(t(400)); // level 0 from 400
                         // [0,400): 100ms@1 + 200ms@2 + 100ms@1 = 600 level·ms / 400 = 1.5
        assert!((c.average_in(t(0), t(400)) - 1.5).abs() < 1e-9);
        // Open-ended current level counts too.
        c.enter(t(500));
        assert!((c.average_in(t(500), t(600)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_averages_match_average_in() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
        c.enter(t(30));
        c.enter(t(130));
        c.leave(t(250));
        let buckets = c.bucket_averages(t(0), t(300), SimDuration::from_millis(100));
        assert_eq!(buckets.len(), 3);
        for (i, &b) in buckets.iter().enumerate() {
            let from = t(i as u64 * 100);
            let to = t((i as u64 + 1) * 100);
            assert!((b - c.average_in(from, to)).abs() < 1e-9, "bucket {i}");
        }
    }

    #[test]
    fn simultaneous_changes_coalesce() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
        c.enter(t(10));
        c.leave(t(10));
        assert_eq!(c.current(), 0);
        assert!((c.average_in(t(0), t(20)) - 0.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "without matching enter")]
    fn unbalanced_leave_panics() {
        ConcurrencyTracker::new(SimDuration::from_secs(1)).leave(t(1));
    }

    #[test]
    fn compaction_preserves_recent_queries() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_millis(100));
        for i in 0..1000u64 {
            c.enter(t(i * 2));
            c.leave(t(i * 2 + 1));
        }
        // Only recent history retained...
        assert!(c.changes.len() < 220);
        // ...but queries inside the horizon are exact: level alternates
        // 1/0 per ms → average 0.5.
        let avg = c.average_in(t(1950), t(1990));
        assert!((avg - 0.5).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn ring_matches_scan_on_aligned_and_unaligned_windows() {
        let mut c = ConcurrencyTracker::new(SimDuration::from_secs(1));
        let mut lvl = 0u32;
        for i in 0..400u64 {
            let at = SimTime::from_nanos(i * 7_777_777);
            if lvl == 0 || i % 3 != 0 {
                c.enter(at);
                lvl += 1;
            } else {
                c.leave(at);
                lvl -= 1;
            }
        }
        for (from_ms, to_ms, w_ms) in [(0u64, 3000u64, 100u64), (2000, 3100, 50), (2500, 3000, 10)]
        {
            let ring = c.bucket_averages(t(from_ms), t(to_ms), SimDuration::from_millis(w_ms));
            let scan = c.bucket_averages_scan(t(from_ms), t(to_ms), SimDuration::from_millis(w_ms));
            assert_eq!(ring, scan, "window {from_ms}..{to_ms} w={w_ms}");
        }
        // Unaligned window exercises the fallback.
        let f = SimTime::from_nanos(123_456);
        let to = SimTime::from_nanos(2_000_123_456);
        let w = SimDuration::from_nanos(77_000_003);
        assert_eq!(
            c.bucket_averages(f, to, w),
            c.bucket_averages_scan(f, to, w)
        );
        assert_eq!(
            c.average_in(t(2000), t(3000)).to_bits(),
            c.average_in_scan(t(2000), t(3000)).to_bits()
        );
    }

    /// Under `--features audit` the ring must equal the ledger integral
    /// even after compaction has dropped old change points.
    #[cfg(feature = "audit")]
    #[test]
    fn audit_is_clean_after_compaction() {
        use sim_core::audit::CountingSink;
        let mut c = ConcurrencyTracker::new(SimDuration::from_millis(100));
        for i in 0..1000u64 {
            c.enter(t(i * 2));
            c.leave(t(i * 2 + 1));
        }
        let mut sink = CountingSink::new();
        c.audit_into(t(2000), &mut sink);
        assert_eq!(sink.total(), 0, "{}", sink.summary());
    }

    proptest! {
        /// Sum over buckets × width equals the integral over the window.
        #[test]
        fn prop_buckets_partition_integral(
            events in proptest::collection::vec(0u64..500, 1..80),
        ) {
            let mut c = ConcurrencyTracker::new(SimDuration::from_secs(60));
            let mut times = events.clone();
            times.sort_unstable();
            let mut level = 0u32;
            for (i, &tm) in times.iter().enumerate() {
                if level == 0 || i % 2 == 0 {
                    c.enter(t(tm));
                    level += 1;
                } else {
                    c.leave(t(tm));
                    level -= 1;
                }
            }
            let width = SimDuration::from_millis(50);
            let buckets = c.bucket_averages(t(0), t(500), width);
            let total: f64 = buckets.iter().sum::<f64>() * 50.0;
            let integral = c.average_in(t(0), t(500)) * 500.0;
            prop_assert!((total - integral).abs() < 1e-6,
                "bucketed {total} vs integral {integral}");
        }
    }
}
