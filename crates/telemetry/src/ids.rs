//! Identity newtypes shared across the tracing and simulation layers.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The raw numeric value.
            pub const fn get(self) -> $repr {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a microservice (e.g. `Cart`, `Catalogue`) within an
    /// application topology.
    ServiceId,
    "svc-",
    u32
);

id_type!(
    /// Identifies one replica (pod) of a service. Replica ids are globally
    /// unique across services and never reused after a scale-down.
    ReplicaId,
    "pod-",
    u64
);

id_type!(
    /// Identifies one end-to-end user request.
    RequestId,
    "req-",
    u64
);

id_type!(
    /// Identifies a request *type* (an entry in the application's request
    /// mix, e.g. `GET /catalogue` vs `POST /cart`).
    RequestTypeId,
    "rt-",
    u32
);

id_type!(
    /// Identifies one span (one service's segment of a request).
    SpanId,
    "span-",
    u64
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_is_prefixed() {
        assert_eq!(ServiceId(3).to_string(), "svc-3");
        assert_eq!(ReplicaId(42).to_string(), "pod-42");
        assert_eq!(RequestId(1).to_string(), "req-1");
        assert_eq!(RequestTypeId(0).to_string(), "rt-0");
        assert_eq!(SpanId(9).to_string(), "span-9");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(ServiceId(1));
        set.insert(ServiceId(1));
        assert_eq!(set.len(), 1);
        assert!(ServiceId(1) < ServiceId(2));
        assert_eq!(ServiceId::from(7).get(), 7);
    }
}
