//! Property tests: ring-served windowed queries are *bit-identical* to the
//! reference-scan oracle on arbitrary interleaved event streams, including
//! compaction, eviction, threshold changes and windows that straddle
//! evicted buckets or fall back to the scan path.

use crate::scatter::{build_scatter_scan, ScatterScratch};
use crate::{build_scatter_into, CompletionLog, ConcurrencyTracker};
use proptest::prelude::*;
use sim_core::{SimDuration, SimTime};

/// One stream step: `(dt_nanos, op, rt_nanos)` — advance time by `dt`,
/// then op 0 = enter, 1 = leave (or enter when idle), 2 = record(`rt`).
type Step = (u64, u8, u64);

/// Replays a stream into a tracker + log with a 1 s horizon, keeping the
/// level legal (a leave with nothing in service becomes an enter).
/// Irregular, unaligned gaps up to 60 ms mean a few hundred events span
/// several times the horizon, so compaction and ring recycling trigger.
fn replay(stream: &[Step]) -> (ConcurrencyTracker, CompletionLog, SimTime) {
    let horizon = SimDuration::from_secs(1);
    let mut conc = ConcurrencyTracker::new(horizon);
    let mut log = CompletionLog::new(horizon);
    let mut now = 0u64;
    let mut level = 0u32;
    for &(dt, op, rt_nanos) in stream {
        now += dt;
        let at = SimTime::from_nanos(now);
        match op {
            0 => {
                conc.enter(at);
                level += 1;
            }
            1 if level > 0 => {
                conc.leave(at);
                level -= 1;
            }
            1 => {
                conc.enter(at);
                level += 1;
            }
            _ => log.record(at, SimDuration::from_nanos(rt_nanos)),
        }
    }
    (conc, log, SimTime::from_nanos(now))
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Query windows exercising every serving mode: ring-served interior
/// windows, windows straddling the compacted/evicted past (from = 0),
/// windows extending past "now", and unaligned fallbacks.
fn windows(now: SimTime) -> Vec<(SimTime, SimTime, SimDuration)> {
    let ms = |v: u64| SimDuration::from_millis(v);
    let end_ms = now.as_nanos() / 1_000_000;
    let align = |v: u64, w: u64| SimTime::from_millis((v / w) * w);
    let mut out = vec![
        // Straddles everything ever evicted.
        (SimTime::ZERO, now + ms(50), ms(100)),
        // Unaligned width and start: scan fallback.
        (
            SimTime::from_nanos(12_345),
            now,
            SimDuration::from_nanos(33_333_333),
        ),
    ];
    for w in [10u64, 20, 100] {
        // Trailing aligned window just inside the horizon.
        out.push((align(end_ms.saturating_sub(800), w), now, ms(w)));
        // Aligned window straddling the eviction edge.
        out.push((align(end_ms.saturating_sub(1100), w), now + ms(w), ms(w)));
    }
    out
}

fn steps() -> proptest::collection::VecStrategy<(
    std::ops::Range<u64>,
    std::ops::Range<u8>,
    std::ops::Range<u64>,
)> {
    proptest::collection::vec((0u64..60_000_000, 0u8..3, 0u64..40_000_000), 1..300)
}

proptest! {
    /// `bucket_averages` and `average_in` are bit-identical to the scan.
    #[test]
    fn prop_concurrency_ring_equals_scan(stream in steps()) {
        let (conc, _, now) = replay(&stream);
        for (from, to, w) in windows(now) {
            prop_assert_eq!(
                bits(&conc.bucket_averages(from, to, w)),
                bits(&conc.bucket_averages_scan(from, to, w)),
                "bucket_averages [{}, {}) w={}", from, to, w
            );
            if from < to {
                prop_assert_eq!(
                    conc.average_in(from, to).to_bits(),
                    conc.average_in_scan(from, to).to_bits(),
                    "average_in [{}, {})", from, to
                );
            }
        }
    }

    /// `bucket_counts`, `count_in` and `goodput_in` equal the scan for a
    /// sequence of alternating thresholds (each change re-folds the ring).
    #[test]
    fn prop_completion_ring_equals_scan(
        stream in steps(),
        thresholds in proptest::collection::vec(0u64..50_000_000, 1..5),
    ) {
        let (_, log, now) = replay(&stream);
        for (from, to, w) in windows(now) {
            for &thr in &thresholds {
                let thr = SimDuration::from_nanos(thr);
                prop_assert_eq!(
                    log.bucket_counts(from, to, w, thr),
                    log.bucket_counts_scan(from, to, w, thr),
                    "bucket_counts [{}, {}) w={} thr={}", from, to, w, thr
                );
                prop_assert_eq!(log.count_in(from, to), log.count_in_scan(from, to));
                prop_assert_eq!(
                    log.goodput_in(from, to, thr),
                    log.goodput_in_scan(from, to, thr)
                );
            }
        }
    }

    /// Full scatter construction (goodput and throughput variants) is
    /// exactly equal to the oracle built from the scan queries.
    #[test]
    fn prop_scatter_equals_scan(
        stream in steps(),
        thr in 0u64..50_000_000,
    ) {
        let (conc, log, now) = replay(&stream);
        let mut scratch = ScatterScratch::default();
        for (from, to, w) in windows(now) {
            for threshold in [Some(SimDuration::from_nanos(thr)), None] {
                let mut ring = Vec::new();
                build_scatter_into(&conc, &log, from, to, w, threshold, &mut scratch, &mut ring);
                let scan = build_scatter_scan(&conc, &log, from, to, w, threshold);
                prop_assert_eq!(ring.len(), scan.len());
                for (r, s) in ring.iter().zip(&scan) {
                    prop_assert_eq!(r.q.to_bits(), s.q.to_bits());
                    prop_assert_eq!(r.rate.to_bits(), s.rate.to_bits());
                }
            }
        }
    }
}
