//! End-to-end (client-side) outcome log for experiment reporting.

use sim_core::stats::{BucketSeries, LatencyHistogram};
use sim_core::{SimDuration, SimTime};

/// Records every finished end-to-end request as seen by the workload
/// generator: completion time and response time.
///
/// Unlike the per-service samplers (which are bounded and evicting, because
/// they feed the *online* controllers), the client log retains the whole
/// run — it produces the paper's reported numbers: goodput timelines
/// (Figs. 10–12, top panels), p95/p99 percentiles (Table 2), and
/// response-time distribution histograms (Fig. 4).
///
/// # Example
///
/// ```
/// use telemetry::ClientLog;
/// use sim_core::{SimDuration, SimTime};
///
/// let mut log = ClientLog::new(SimDuration::from_secs(1));
/// log.record(SimTime::from_millis(200), SimDuration::from_millis(120));
/// log.record(SimTime::from_millis(700), SimDuration::from_millis(450));
/// assert_eq!(log.total(), 2);
/// assert_eq!(log.goodput_count(SimDuration::from_millis(400)), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ClientLog {
    bucket: SimDuration,
    /// All (completion, response-time) pairs in completion order.
    outcomes: Vec<(SimTime, SimDuration)>,
    histogram: LatencyHistogram,
}

impl ClientLog {
    /// Creates a log whose timeline queries use `bucket`-sized bins
    /// (the paper plots 1 s bins over 12-minute runs).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket must be non-zero");
        ClientLog {
            bucket,
            outcomes: Vec::new(),
            histogram: LatencyHistogram::new(),
        }
    }

    /// Records one finished request.
    pub fn record(&mut self, completed: SimTime, response_time: SimDuration) {
        self.outcomes.push((completed, response_time));
        self.histogram.record(response_time);
    }

    /// Total completed requests.
    pub fn total(&self) -> u64 {
        self.outcomes.len() as u64
    }

    /// Completed requests within `threshold` (goodput count).
    pub fn goodput_count(&self, threshold: SimDuration) -> u64 {
        self.outcomes
            .iter()
            .filter(|&&(_, rt)| rt <= threshold)
            .count() as u64
    }

    /// Average goodput in requests/second over `[from, to)`.
    pub fn goodput_rate(&self, from: SimTime, to: SimTime, threshold: SimDuration) -> f64 {
        assert!(from < to, "empty window");
        let n = self
            .outcomes
            .iter()
            .filter(|&&(t, rt)| t >= from && t < to && rt <= threshold)
            .count();
        n as f64 / (to - from).as_secs_f64()
    }

    /// Exact `(completed, within-threshold)` counts over `[from, to)` —
    /// the completion-window numbers the service plane streams between
    /// simulation steps.
    pub fn counts_in(&self, from: SimTime, to: SimTime, threshold: SimDuration) -> (u64, u64) {
        let mut total = 0u64;
        let mut good = 0u64;
        for &(t, rt) in &self.outcomes {
            if t >= from && t < to {
                total += 1;
                if rt <= threshold {
                    good += 1;
                }
            }
        }
        (total, good)
    }

    /// The `p`-th percentile of response time over the whole run, or `None`
    /// when the log is empty or `p` is not a finite value in `[0, 100]`
    /// (same contract as [`LatencyHistogram::percentile`] and
    /// [`ClientLog::percentile_in`]).
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        self.histogram.percentile(p)
    }

    /// The full response-time histogram (for Fig. 4-style plots).
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.histogram
    }

    /// Goodput timeline: `(bucket_start, requests/second within threshold)`.
    pub fn goodput_timeline(&self, threshold: SimDuration) -> Vec<(SimTime, f64)> {
        let mut series = BucketSeries::new(self.bucket);
        for &(t, rt) in &self.outcomes {
            if rt <= threshold {
                series.tick(t);
            }
        }
        let secs = self.bucket.as_secs_f64();
        series
            .iter()
            .map(|(t, b)| (t, b.count as f64 / secs))
            .collect()
    }

    /// Mean response-time timeline: `(bucket_start, mean_rt_ms)` with empty
    /// buckets reported as 0.
    pub fn response_time_timeline(&self) -> Vec<(SimTime, f64)> {
        let mut series = BucketSeries::new(self.bucket);
        for &(t, rt) in &self.outcomes {
            series.push(t, rt.as_millis_f64());
        }
        series.iter().map(|(t, b)| (t, b.mean())).collect()
    }

    /// Mean response time over the whole run.
    pub fn mean_response_time(&self) -> Option<SimDuration> {
        self.histogram.approx_mean()
    }

    /// Exact percentile over a sub-window. A quickselect of the window's
    /// samples — O(n) instead of the full sort the rank needs none of.
    ///
    /// Returns `None` when the window holds no samples or `p` is not a
    /// finite value in `[0, 100]`; `p = 0` is the window minimum and
    /// `p = 100` the maximum (same contract as
    /// [`LatencyHistogram::percentile`]).
    pub fn percentile_in(&self, from: SimTime, to: SimTime, p: f64) -> Option<SimDuration> {
        if !p.is_finite() || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let mut rts: Vec<SimDuration> = self
            .outcomes
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, rt)| rt)
            .collect();
        if rts.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * rts.len() as f64).ceil().max(1.0) as usize - 1;
        let rank = rank.min(rts.len() - 1);
        let (_, nth, _) = rts.select_nth_unstable(rank);
        Some(*nth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    fn ramp_log() -> ClientLog {
        let mut log = ClientLog::new(d(1000));
        for i in 1..=100u64 {
            log.record(t(i * 50), d(i * 10)); // rts 10..=1000 ms
        }
        log
    }

    #[test]
    fn counts_and_goodput() {
        let log = ramp_log();
        assert_eq!(log.total(), 100);
        assert_eq!(log.goodput_count(d(400)), 40);
        assert_eq!(log.goodput_count(d(5)), 0);
    }

    #[test]
    fn counts_in_window_are_exact() {
        let log = ramp_log();
        // [0, 2 s): completions at 50..1950 ms → 39; rts 10..390 all ≤ 400.
        assert_eq!(log.counts_in(t(0), t(2000), d(400)), (39, 39));
        // Whole run: 100 completions, 40 within 400 ms.
        assert_eq!(log.counts_in(t(0), t(10_000), d(400)), (100, 40));
        // Empty window.
        assert_eq!(log.counts_in(t(50_000), t(60_000), d(400)), (0, 0));
    }

    #[test]
    fn rate_over_window() {
        let log = ramp_log();
        // [0, 5 s): completions at 50..4950 ms → 99 of them; thresholds all pass.
        let r = log.goodput_rate(t(0), t(5000), d(10_000));
        assert!((r - 99.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn exact_window_percentile() {
        let log = ramp_log();
        let p50 = log.percentile_in(t(0), t(10_000), 50.0).unwrap();
        assert_eq!(p50.as_millis(), 500);
        let p99 = log.percentile_in(t(0), t(10_000), 99.0).unwrap();
        assert_eq!(p99.as_millis(), 990);
        assert_eq!(log.percentile_in(t(50_000), t(60_000), 50.0), None);
    }

    /// Regression: invalid `p` (NaN/out-of-range) used to panic in
    /// `percentile_in` and in the histogram-backed `percentile`; both now
    /// return `None`, and the boundary percentiles are the exact extremes.
    #[test]
    fn percentile_edge_cases_agree_across_paths() {
        let log = ramp_log();
        for bad in [f64::NAN, f64::NEG_INFINITY, -1.0, 100.5] {
            assert_eq!(log.percentile(bad), None);
            assert_eq!(log.percentile_in(t(0), t(10_000), bad), None);
        }
        // p = 0 / p = 100 are the window extremes, exactly.
        assert_eq!(
            log.percentile_in(t(0), t(10_000), 0.0).unwrap().as_millis(),
            10
        );
        assert_eq!(
            log.percentile_in(t(0), t(10_000), 100.0)
                .unwrap()
                .as_millis(),
            1000
        );
        assert_eq!(log.percentile(0.0).unwrap().as_millis(), 10);
        assert_eq!(log.percentile(100.0).unwrap().as_millis(), 1000);
        // Single-sample window: every valid p returns that sample.
        let mut one = ClientLog::new(d(1000));
        one.record(t(100), d(42));
        for p in [0.0, 37.5, 50.0, 100.0] {
            assert_eq!(one.percentile_in(t(0), t(1000), p).unwrap(), d(42));
        }
    }

    #[test]
    fn histogram_percentile_tracks_exact() {
        let log = ramp_log();
        let approx = log.percentile(95.0).unwrap().as_millis() as f64;
        assert!((approx - 950.0).abs() / 950.0 < 0.05, "approx {approx}");
    }

    #[test]
    fn timelines_are_bucketed() {
        let log = ramp_log();
        let gp = log.goodput_timeline(d(400));
        // Good completions are the first 40 (t = 50..2000 ms) → buckets 0 and 1.
        let total: f64 = gp.iter().map(|(_, r)| r).sum();
        assert!((total - 40.0).abs() < 1e-9); // 1 s buckets: rate == count
        let rt = log.response_time_timeline();
        assert!(rt[0].1 > 0.0);
        assert!(rt.last().unwrap().1 > rt[0].1, "rts ramp up");
    }
}
