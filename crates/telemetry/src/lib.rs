//! Distributed-tracing vocabulary and the monitoring pipeline.
//!
//! The paper's Sora framework consumes two kinds of telemetry (its
//! *Monitoring Module*, §4.1):
//!
//! 1. **request traces** — per-request arrival/departure timestamps at every
//!    microservice (a Jaeger/Zipkin-style span tree), stored in a *Trace
//!    Warehouse* and queried by the SCG model for critical-path extraction,
//!    deadline propagation and the concurrency/goodput scatter graph;
//! 2. **system metrics** — pod CPU utilisation, used by the hardware-only
//!    autoscalers (HPA/VPA/FIRM).
//!
//! This crate defines that vocabulary ([`Span`], [`Trace`], the id newtypes)
//! and the in-memory pipeline: [`TraceWarehouse`] with time-horizon
//! eviction, [`ConcurrencyTracker`] and [`CompletionLog`] (the 100 ms
//! samplers of the *Metrics Collection Phase*), scatter-graph construction,
//! critical-path analysis, and [`ClientLog`] for end-to-end goodput /
//! percentile reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod client;
mod completions;
mod concurrency;
mod critical_path;
mod ids;
#[cfg(test)]
mod ring_equivalence;
mod scatter;
mod span;
mod warehouse;

pub use breakdown::{latency_breakdown, BreakdownComponent, ServiceBreakdown};
pub use client::ClientLog;
pub use completions::CompletionLog;
pub use concurrency::ConcurrencyTracker;
pub use critical_path::{critical_path, per_service_stats, CriticalPathStats, PathHop};
pub use ids::{ReplicaId, RequestId, RequestTypeId, ServiceId, SpanId};
#[cfg(any(test, feature = "reference-scan"))]
pub use scatter::build_scatter_scan;
pub use scatter::ScatterScratch;
pub use scatter::{build_scatter, build_scatter_into, build_scatter_throughput, ScatterPoint};
pub use span::{ChildCall, Span, Trace};
pub use warehouse::TraceWarehouse;
