//! Critical-path extraction and the statistics behind critical-service
//! localisation (the first phase of the SCG workflow, §3.2).

use crate::{ReplicaId, ServiceId, Trace};
use sim_core::stats::{pearson, OnlineStats};
use sim_core::SimDuration;
use std::collections::HashMap;

/// One hop of a request's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathHop {
    /// The service at this depth (depth 0 is the front-end).
    pub service: ServiceId,
    /// The replica that served it.
    pub replica: ReplicaId,
    /// The hop's *own* processing time (wall time minus downstream waits) —
    /// the paper's `PT_s`.
    pub self_time: SimDuration,
    /// The hop's total wall time including downstream waits — `RT_s`.
    pub response_time: SimDuration,
}

/// Extracts a trace's critical path: starting at the root span, repeatedly
/// descend into the direct child span with the largest wall time (the
/// *path of maximal duration* in the paper's definition, footnote 1). For
/// purely sequential call chains this visits every service on the chain;
/// for parallel fan-outs it follows the slowest branch — e.g. either
/// `front-end → Cart → Cart-db` or `front-end → Catalogue → Catalogue-db`
/// for the Catalogue request of Fig. 5, depending on runtime contention.
///
/// Returns the hops front-end-first. Never empty for a well-formed trace.
pub fn critical_path(trace: &Trace) -> Vec<PathHop> {
    // Group spans by parent for O(1) descent.
    let mut children: HashMap<Option<crate::SpanId>, Vec<usize>> = HashMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        children.entry(s.parent).or_default().push(i);
    }
    let mut path = Vec::new();
    let mut current = match children.get(&None).and_then(|roots| roots.first()) {
        Some(&root) => root,
        None => return path,
    };
    loop {
        let span = &trace.spans[current];
        path.push(PathHop {
            service: span.service,
            replica: span.replica,
            self_time: span.self_time(),
            response_time: span.response_time(),
        });
        let next = children.get(&Some(span.id)).and_then(|kids| {
            kids.iter()
                .copied()
                .max_by_key(|&i| (trace.spans[i].response_time(), std::cmp::Reverse(i)))
        });
        match next {
            Some(i) => current = i,
            None => break,
        }
    }
    path
}

/// Aggregated critical-path statistics over a window of traces: dominant
/// path shape, per-service Pearson correlation between on-path processing
/// time and end-to-end response time (the localisation signal), and mean
/// upstream processing time (the deadline-propagation input).
#[derive(Debug, Clone, Default)]
pub struct CriticalPathStats {
    /// How often each path shape (sequence of services) occurred.
    path_counts: HashMap<Vec<ServiceId>, u64>,
    /// Per-service: paired `(PT_si, RT_cp)` samples across traces where the
    /// service was on the critical path.
    samples: HashMap<ServiceId, (Vec<f64>, Vec<f64>)>,
    /// Per-service: sum of self-times of hops strictly *before* the service
    /// on the path (upstream processing, `Σ PT_sk` of eq. 3).
    upstream: HashMap<ServiceId, OnlineStats>,
    traces: u64,
}

impl CriticalPathStats {
    /// Number of traces analysed.
    pub fn trace_count(&self) -> u64 {
        self.traces
    }

    /// The most frequent critical-path shape, if any traces were analysed.
    pub fn dominant_path(&self) -> Option<&[ServiceId]> {
        self.path_counts
            .iter()
            .max_by_key(|(path, &count)| (count, std::cmp::Reverse(path.len())))
            .map(|(path, _)| path.as_slice())
    }

    /// Pearson correlation between `service`'s on-path processing time and
    /// the end-to-end response time — the paper's `PCC(PT_si, RT_CP)`.
    pub fn pcc(&self, service: ServiceId) -> Option<f64> {
        let (pt, rt) = self.samples.get(&service)?;
        pearson(pt, rt)
    }

    /// The candidate critical service: largest PCC, ties broken toward the
    /// lower service id (deterministic).
    pub fn candidate_critical_service(&self) -> Option<ServiceId> {
        let mut best: Option<(f64, ServiceId)> = None;
        let mut ids: Vec<ServiceId> = self.samples.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if let Some(r) = self.pcc(id) {
                match best {
                    Some((br, _)) if br >= r => {}
                    _ => best = Some((r, id)),
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Mean upstream processing time observed before `service` on critical
    /// paths that include it — the `Σ_{k<i} PT_sk` of the RT-threshold
    /// propagation phase.
    pub fn mean_upstream_pt(&self, service: ServiceId) -> Option<SimDuration> {
        let stats = self.upstream.get(&service)?;
        if stats.is_empty() {
            return None;
        }
        Some(SimDuration::from_nanos(stats.mean().round() as u64))
    }

    /// How many traces had `service` on their critical path.
    pub fn on_path_count(&self, service: ServiceId) -> u64 {
        self.samples
            .get(&service)
            .map_or(0, |(pt, _)| pt.len() as u64)
    }
}

/// Analyses a window of traces into [`CriticalPathStats`].
pub fn per_service_stats<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> CriticalPathStats {
    let mut stats = CriticalPathStats::default();
    for trace in traces {
        let path = critical_path(trace);
        if path.is_empty() {
            continue;
        }
        stats.traces += 1;
        let rt = trace.response_time().as_nanos() as f64;
        let shape: Vec<ServiceId> = path.iter().map(|h| h.service).collect();
        *stats.path_counts.entry(shape).or_insert(0) += 1;
        let mut upstream = SimDuration::ZERO;
        for hop in &path {
            let entry = stats.samples.entry(hop.service).or_default();
            entry.0.push(hop.self_time.as_nanos() as f64);
            entry.1.push(rt);
            stats
                .upstream
                .entry(hop.service)
                .or_insert_with(OnlineStats::new)
                .push(upstream.as_nanos() as f64);
            upstream += hop.self_time;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChildCall, RequestId, RequestTypeId, Span, SpanId};
    use sim_core::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// front-end(0) calls cart(1) and catalogue(2) in parallel; catalogue
    /// calls catalogue-db(3). Durations chosen so catalogue branch wins.
    fn fanout_trace(req: u64, cat_ms: u64) -> Trace {
        let fe = Span {
            id: SpanId(0),
            request: RequestId(req),
            service: ServiceId(0),
            replica: ReplicaId(0),
            parent: None,
            arrival: t(0),
            service_start: t(0),
            departure: t(cat_ms + 20),
            children: vec![
                ChildCall {
                    service: ServiceId(1),
                    start: t(5),
                    end: t(35),
                },
                ChildCall {
                    service: ServiceId(2),
                    start: t(5),
                    end: t(cat_ms + 10),
                },
            ],
        };
        let cart = Span {
            id: SpanId(1),
            parent: Some(SpanId(0)),
            service: ServiceId(1),
            arrival: t(5),
            service_start: t(5),
            departure: t(35),
            children: vec![],
            ..fe.clone()
        };
        let cat = Span {
            id: SpanId(2),
            parent: Some(SpanId(0)),
            service: ServiceId(2),
            arrival: t(5),
            service_start: t(5),
            departure: t(cat_ms + 10),
            children: vec![ChildCall {
                service: ServiceId(3),
                start: t(10),
                end: t(cat_ms),
            }],
            ..fe.clone()
        };
        let db = Span {
            id: SpanId(3),
            parent: Some(SpanId(2)),
            service: ServiceId(3),
            arrival: t(10),
            service_start: t(10),
            departure: t(cat_ms),
            children: vec![],
            ..fe.clone()
        };
        Trace {
            request: RequestId(req),
            request_type: RequestTypeId(0),
            spans: vec![fe, cart, cat, db],
        }
    }

    #[test]
    fn critical_path_follows_slowest_branch() {
        let trace = fanout_trace(1, 100);
        let path = critical_path(&trace);
        let services: Vec<u32> = path.iter().map(|h| h.service.get()).collect();
        assert_eq!(services, [0, 2, 3], "front-end → catalogue → catalogue-db");
    }

    #[test]
    fn critical_path_switches_when_branch_times_flip() {
        // Catalogue branch finishes at 30 ms — now the cart branch (35 ms)
        // dominates.
        let trace = fanout_trace(1, 20);
        let path = critical_path(&trace);
        let services: Vec<u32> = path.iter().map(|h| h.service.get()).collect();
        assert_eq!(services, [0, 1], "front-end → cart");
    }

    #[test]
    fn hop_self_times_subtract_child_waits() {
        let trace = fanout_trace(1, 100);
        let path = critical_path(&trace);
        // front-end span: 120 ms wall, children cover [5, 110] → 15 ms self.
        assert_eq!(path[0].self_time.as_millis(), 15);
        // catalogue: [5, 110] wall = 105, db call covers [10,100] → 15 ms.
        assert_eq!(path[1].self_time.as_millis(), 15);
        // db leaf: all self time.
        assert_eq!(path[2].self_time.as_millis(), 90);
    }

    #[test]
    fn stats_identify_variable_service() {
        // catalogue-db time varies; all others constant → highest PCC at
        // db (3) and catalogue (2); db self-time drives it.
        let traces: Vec<Trace> = (0..20).map(|i| fanout_trace(i, 60 + i * 10)).collect();
        let stats = per_service_stats(&traces);
        assert_eq!(stats.trace_count(), 20);
        assert_eq!(stats.dominant_path().unwrap().len(), 3);
        let db_pcc = stats.pcc(ServiceId(3)).unwrap();
        assert!(db_pcc > 0.99, "db self-time should track RT: {db_pcc}");
        let candidate = stats.candidate_critical_service().unwrap();
        assert_eq!(candidate, ServiceId(3));
        assert_eq!(stats.on_path_count(ServiceId(1)), 0);
    }

    #[test]
    fn upstream_pt_accumulates_along_path() {
        let traces: Vec<Trace> = (0..5).map(|i| fanout_trace(i, 100)).collect();
        let stats = per_service_stats(&traces);
        // Upstream of the front-end is zero.
        assert_eq!(
            stats.mean_upstream_pt(ServiceId(0)).unwrap(),
            SimDuration::ZERO
        );
        // Upstream of catalogue = front-end self time (15 ms).
        assert_eq!(
            stats.mean_upstream_pt(ServiceId(2)).unwrap().as_millis(),
            15
        );
        // Upstream of db = 15 + 15 = 30 ms.
        assert_eq!(
            stats.mean_upstream_pt(ServiceId(3)).unwrap().as_millis(),
            30
        );
        assert_eq!(stats.mean_upstream_pt(ServiceId(9)), None);
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let trace = Trace {
            request: RequestId(0),
            request_type: RequestTypeId(0),
            spans: vec![],
        };
        assert!(critical_path(&trace).is_empty());
    }
}
