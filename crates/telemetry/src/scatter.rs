//! Scatter-graph construction: pairing concurrency with goodput per bucket.

use crate::{CompletionLog, ConcurrencyTracker};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

/// One sampled point of the concurrency–goodput (or –throughput) scatter
/// graph: the time-weighted average concurrency `q` during one sampling
/// bucket and the completion rate `rate` (requests/second) observed in the
/// same bucket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Average in-service concurrency during the bucket.
    pub q: f64,
    /// Completion rate in requests per second (goodput or throughput,
    /// depending on the builder used).
    pub rate: f64,
}

/// Builds the SCG model's input: `<Q_n, GP_n>` pairs sampled at `interval`
/// granularity over `[from, to)`, counting only completions whose response
/// time is within `threshold` (goodput).
///
/// Empty buckets (no concurrency and no completions) are skipped — they
/// carry no information about the concurrency–goodput relationship and
/// would drag curve fitting toward the origin.
///
/// # Example
///
/// ```
/// use telemetry::{build_scatter, CompletionLog, ConcurrencyTracker};
/// use sim_core::{SimDuration, SimTime};
///
/// let mut conc = ConcurrencyTracker::new(SimDuration::from_secs(60));
/// let mut log = CompletionLog::new(SimDuration::from_secs(60));
/// conc.enter(SimTime::ZERO);
/// log.record(SimTime::from_millis(50), SimDuration::from_millis(5));
/// conc.leave(SimTime::from_millis(50));
/// let pts = build_scatter(&conc, &log,
///     SimTime::ZERO, SimTime::from_millis(100),
///     SimDuration::from_millis(100), SimDuration::from_millis(10));
/// assert_eq!(pts.len(), 1);
/// assert!((pts[0].q - 0.5).abs() < 1e-9);
/// assert!((pts[0].rate - 10.0).abs() < 1e-9); // 1 completion / 0.1 s
/// ```
pub fn build_scatter(
    concurrency: &ConcurrencyTracker,
    completions: &CompletionLog,
    from: SimTime,
    to: SimTime,
    interval: SimDuration,
    threshold: SimDuration,
) -> Vec<ScatterPoint> {
    let mut scratch = ScatterScratch::default();
    let mut out = Vec::new();
    build_scatter_into(
        concurrency,
        completions,
        from,
        to,
        interval,
        Some(threshold),
        &mut scratch,
        &mut out,
    );
    out
}

/// Like [`build_scatter`] but counts *all* completions — the
/// Scatter-Concurrency-Throughput (SCT) variant used by ConScale.
pub fn build_scatter_throughput(
    concurrency: &ConcurrencyTracker,
    completions: &CompletionLog,
    from: SimTime,
    to: SimTime,
    interval: SimDuration,
) -> Vec<ScatterPoint> {
    let mut scratch = ScatterScratch::default();
    let mut out = Vec::new();
    build_scatter_into(
        concurrency,
        completions,
        from,
        to,
        interval,
        None,
        &mut scratch,
        &mut out,
    );
    out
}

/// Reusable buffers for [`build_scatter_into`]: per-bucket concurrency
/// averages and completion counts. Controllers hold one of these across
/// ticks so scatter construction allocates nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct ScatterScratch {
    qs: Vec<f64>,
    counts: Vec<(u64, u64)>,
}

/// Zero-allocation scatter construction: appends one point per non-empty
/// bucket of `[from, to)` to `out` (which is *not* cleared, so per-replica
/// graphs can be overlaid into one buffer). `threshold = Some(d)` builds
/// the goodput (SCG) variant, `None` the throughput (SCT) variant.
#[allow(clippy::too_many_arguments)]
pub fn build_scatter_into(
    concurrency: &ConcurrencyTracker,
    completions: &CompletionLog,
    from: SimTime,
    to: SimTime,
    interval: SimDuration,
    threshold: Option<SimDuration>,
    scratch: &mut ScatterScratch,
    out: &mut Vec<ScatterPoint>,
) {
    assert!(!interval.is_zero(), "sampling interval must be non-zero");
    concurrency.bucket_averages_into(from, to, interval, &mut scratch.qs);
    completions.bucket_counts_into(
        from,
        to,
        interval,
        threshold.unwrap_or(SimDuration::MAX),
        &mut scratch.counts,
    );
    push_points(&scratch.qs, &scratch.counts, interval, threshold, out);
}

/// Reference implementation of [`build_scatter`]/[`build_scatter_throughput`]
/// on top of the scan oracles — the equivalence baseline for property tests
/// and the `estimation_pipeline` benchmark.
#[cfg(any(test, feature = "reference-scan"))]
pub fn build_scatter_scan(
    concurrency: &ConcurrencyTracker,
    completions: &CompletionLog,
    from: SimTime,
    to: SimTime,
    interval: SimDuration,
    threshold: Option<SimDuration>,
) -> Vec<ScatterPoint> {
    assert!(!interval.is_zero(), "sampling interval must be non-zero");
    let qs = concurrency.bucket_averages_scan(from, to, interval);
    let counts =
        completions.bucket_counts_scan(from, to, interval, threshold.unwrap_or(SimDuration::MAX));
    let mut out = Vec::new();
    push_points(&qs, &counts, interval, threshold, &mut out);
    out
}

fn push_points(
    qs: &[f64],
    counts: &[(u64, u64)],
    interval: SimDuration,
    threshold: Option<SimDuration>,
    out: &mut Vec<ScatterPoint>,
) {
    let secs = interval.as_secs_f64();
    for (&q, &(total, good)) in qs.iter().zip(counts) {
        if q > 0.0 || total > 0 {
            let n = if threshold.is_some() { good } else { total };
            out.push(ScatterPoint {
                q,
                rate: n as f64 / secs,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    fn setup() -> (ConcurrencyTracker, CompletionLog) {
        let mut conc = ConcurrencyTracker::new(SimDuration::from_secs(600));
        let mut log = CompletionLog::new(SimDuration::from_secs(600));
        // Bucket 0: two concurrent fast requests.
        conc.enter(t(0));
        conc.enter(t(0));
        log.record(t(80), d(80));
        conc.leave(t(80));
        log.record(t(90), d(90));
        conc.leave(t(90));
        // Bucket 1: idle.
        // Bucket 2: one slow request (400 ms rt).
        conc.enter(t(200));
        log.record(t(280), d(400));
        conc.leave(t(280));
        (conc, log)
    }

    #[test]
    fn goodput_scatter_filters_slow_requests() {
        let (conc, log) = setup();
        let pts = build_scatter(&conc, &log, t(0), t(300), d(100), d(100));
        assert_eq!(pts.len(), 2, "idle bucket skipped");
        // Bucket 0: q = (2*80 + 1*10)/100 = 1.7, rate = 2/0.1 = 20.
        assert!((pts[0].q - 1.7).abs() < 1e-9);
        assert!((pts[0].rate - 20.0).abs() < 1e-9);
        // Bucket 2: completion had rt 400 ms > 100 ms threshold → goodput 0.
        assert!((pts[1].rate - 0.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_scatter_counts_everything() {
        let (conc, log) = setup();
        let pts = build_scatter_throughput(&conc, &log, t(0), t(300), d(100));
        assert_eq!(pts.len(), 2);
        assert!((pts[1].rate - 10.0).abs() < 1e-9); // slow request counts
    }

    #[test]
    fn goodput_never_exceeds_throughput() {
        let (conc, log) = setup();
        let gp = build_scatter(&conc, &log, t(0), t(300), d(100), d(50));
        let tp = build_scatter_throughput(&conc, &log, t(0), t(300), d(100));
        for (g, t_) in gp.iter().zip(&tp) {
            assert!(g.rate <= t_.rate + 1e-12);
            assert_eq!(g.q, t_.q);
        }
    }
}
