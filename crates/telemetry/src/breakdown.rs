//! Per-service latency breakdown: where end-to-end time actually goes.
//!
//! Decomposes each span into the three intervals that matter for
//! soft-resource diagnosis — time queued for a worker thread (soft-resource
//! wait), own processing time, and time blocked on downstream calls — and
//! aggregates them per service over a trace window. This is the analysis a
//! tool like tProf [22] automates, and the quickest way to see *which* kind
//! of resource (thread pool vs CPU vs downstream pool) is throttling a
//! service.

use crate::{ServiceId, Trace};
use sim_core::stats::OnlineStats;
use std::collections::BTreeMap;

/// Aggregated latency decomposition of one service over a trace window.
/// All statistics are in milliseconds.
#[derive(Debug, Clone, Default)]
pub struct ServiceBreakdown {
    /// Time spans spent waiting for a worker thread (accept-queue wait —
    /// grows when the thread pool under-allocates).
    pub queue_wait_ms: OnlineStats,
    /// Own processing time (wall time minus downstream waits — grows when
    /// the CPU saturates or oversubscribes).
    pub self_time_ms: OnlineStats,
    /// Time blocked on downstream calls (grows when a downstream service or
    /// the connection pool toward it throttles).
    pub downstream_wait_ms: OnlineStats,
    /// Total span response time.
    pub response_time_ms: OnlineStats,
}

impl ServiceBreakdown {
    /// Number of spans aggregated.
    pub fn spans(&self) -> u64 {
        self.response_time_ms.count()
    }

    /// The dominant component of this service's mean latency.
    pub fn dominant(&self) -> BreakdownComponent {
        let q = self.queue_wait_ms.mean();
        let s = self.self_time_ms.mean();
        let d = self.downstream_wait_ms.mean();
        if q >= s && q >= d {
            BreakdownComponent::QueueWait
        } else if d >= s {
            BreakdownComponent::DownstreamWait
        } else {
            BreakdownComponent::SelfTime
        }
    }
}

/// The three places a span's time can go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakdownComponent {
    /// Waiting for a worker thread.
    QueueWait,
    /// Local processing (CPU + sharing overhead).
    SelfTime,
    /// Blocked on downstream calls.
    DownstreamWait,
}

impl std::fmt::Display for BreakdownComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakdownComponent::QueueWait => "thread-pool queueing",
            BreakdownComponent::SelfTime => "local processing",
            BreakdownComponent::DownstreamWait => "downstream waiting",
        })
    }
}

/// Aggregates the latency breakdown of every service across `traces`.
///
/// # Example
///
/// ```
/// use telemetry::{latency_breakdown, Trace, Span, SpanId, RequestId,
///                 RequestTypeId, ServiceId, ReplicaId};
/// use sim_core::SimTime;
///
/// let span = Span {
///     id: SpanId(0), request: RequestId(0), service: ServiceId(0),
///     replica: ReplicaId(0), parent: None,
///     arrival: SimTime::ZERO,
///     service_start: SimTime::from_millis(4),   // 4 ms queued
///     departure: SimTime::from_millis(10),      // 6 ms processing
///     children: vec![],
/// };
/// let trace = Trace { request: RequestId(0), request_type: RequestTypeId(0),
///                     spans: vec![span] };
/// let b = latency_breakdown([&trace]);
/// let svc = &b[&ServiceId(0)];
/// assert!((svc.queue_wait_ms.mean() - 4.0).abs() < 1e-9);
/// assert!((svc.self_time_ms.mean() - 6.0).abs() < 1e-9);
/// ```
pub fn latency_breakdown<'a>(
    traces: impl IntoIterator<Item = &'a Trace>,
) -> BTreeMap<ServiceId, ServiceBreakdown> {
    let mut out: BTreeMap<ServiceId, ServiceBreakdown> = BTreeMap::new();
    for trace in traces {
        for span in &trace.spans {
            let entry = out.entry(span.service).or_default();
            let queue = span.queue_wait();
            // `self_time` counts everything outside downstream waits, which
            // includes the accept-queue wait; subtract it so the three
            // components partition the span exactly.
            let processing = span.self_time().saturating_sub_or_zero(queue);
            entry.queue_wait_ms.push(queue.as_millis_f64());
            entry.self_time_ms.push(processing.as_millis_f64());
            entry
                .downstream_wait_ms
                .push(span.child_wait_time().as_millis_f64());
            entry
                .response_time_ms
                .push(span.response_time().as_millis_f64());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChildCall, ReplicaId, RequestId, RequestTypeId, Span, SpanId};
    use sim_core::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn make_trace(req: u64, queue_ms: u64, child_ms: u64) -> Trace {
        let root = Span {
            id: SpanId(req * 2),
            request: RequestId(req),
            service: ServiceId(0),
            replica: ReplicaId(0),
            parent: None,
            arrival: t(0),
            service_start: t(queue_ms),
            departure: t(queue_ms + 10 + child_ms),
            children: vec![ChildCall {
                service: ServiceId(1),
                start: t(queue_ms + 5),
                end: t(queue_ms + 5 + child_ms),
            }],
        };
        let child = Span {
            id: SpanId(req * 2 + 1),
            parent: Some(root.id),
            service: ServiceId(1),
            arrival: t(queue_ms + 5),
            service_start: t(queue_ms + 5),
            departure: t(queue_ms + 5 + child_ms),
            children: vec![],
            ..root.clone()
        };
        Trace {
            request: RequestId(req),
            request_type: RequestTypeId(0),
            spans: vec![root, child],
        }
    }

    #[test]
    fn components_sum_to_response_time() {
        let traces: Vec<Trace> = (0..10).map(|i| make_trace(i, 4, 20)).collect();
        let b = latency_breakdown(&traces);
        let root = &b[&ServiceId(0)];
        assert_eq!(root.spans(), 10);
        let sum =
            root.queue_wait_ms.mean() + root.self_time_ms.mean() + root.downstream_wait_ms.mean();
        assert!(
            (sum - root.response_time_ms.mean()).abs() < 1e-9,
            "{sum} vs {}",
            root.response_time_ms.mean()
        );
    }

    #[test]
    fn dominant_component_identification() {
        // Heavy queueing at the root.
        let queued = latency_breakdown(&[make_trace(0, 100, 5)]);
        assert_eq!(
            queued[&ServiceId(0)].dominant(),
            BreakdownComponent::QueueWait
        );
        // Downstream-bound root.
        let downstream = latency_breakdown(&[make_trace(0, 0, 100)]);
        assert_eq!(
            downstream[&ServiceId(0)].dominant(),
            BreakdownComponent::DownstreamWait
        );
        // The leaf child is always self-time-bound.
        assert_eq!(
            downstream[&ServiceId(1)].dominant(),
            BreakdownComponent::SelfTime
        );
        assert_eq!(
            BreakdownComponent::QueueWait.to_string(),
            "thread-pool queueing"
        );
    }

    #[test]
    fn empty_window_is_empty() {
        let b = latency_breakdown(std::iter::empty::<&Trace>());
        assert!(b.is_empty());
    }
}
