//! Per-service completion log: response times with time-horizon eviction.

use crate::concurrency::RING_WIDTH_NANOS;
use sim_core::stats::BucketRing;
use sim_core::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;

/// A bounded log of `(completion_time, response_time)` pairs for one
/// service.
///
/// This is the `GP_n` half of the SCG model's `<Q_n, GP_n>` pairs: because
/// the response-time *threshold* is chosen later (by deadline propagation),
/// the log stores raw response times and computes goodput for any threshold
/// on demand, rather than committing to a threshold at ingest.
///
/// Windowed counting queries are served from a streaming aggregation ring:
/// each `record` folds a `(total, good)` pair into a 10 ms [`BucketRing`]
/// and each eviction subtracts it back out, so aligned queries read
/// `O(window buckets)` slots instead of re-scanning the raw log. "Good" is
/// relative to the most recently queried threshold; querying a *different*
/// threshold re-folds the retained entries once (no worse than the scan it
/// replaces) and subsequent queries at that threshold are ring reads. Counts
/// are exact integers, so ring-served answers are bit-identical to the
/// retained scan implementation (exposed as the `*_scan` oracle under
/// `cfg(any(test, feature = "reference-scan"))`); unaligned or
/// out-of-retention windows fall back to the scan transparently.
///
/// # Example
///
/// ```
/// use telemetry::CompletionLog;
/// use sim_core::{SimDuration, SimTime};
///
/// let mut log = CompletionLog::new(SimDuration::from_secs(60));
/// log.record(SimTime::from_millis(10), SimDuration::from_millis(4));
/// log.record(SimTime::from_millis(20), SimDuration::from_millis(40));
/// let good = log.goodput_in(SimTime::ZERO, SimTime::from_millis(100),
///                           SimDuration::from_millis(10));
/// assert_eq!(good, 1); // only the 4 ms completion beat the 10 ms threshold
/// ```
#[derive(Debug, Clone)]
pub struct CompletionLog {
    horizon: SimDuration,
    entries: VecDeque<(SimTime, SimDuration)>,
    /// Interior mutability lets `&self` queries re-fold the good counts
    /// when the threshold changes; the log is used single-threaded per
    /// world, so `RefCell` costs nothing but a flag check.
    counts: RefCell<CountRing>,
}

/// Per-10 ms `(total, good)` completion counts for the retained entries,
/// with `good` valid for `threshold`.
#[derive(Debug, Clone)]
struct CountRing {
    threshold: SimDuration,
    ring: BucketRing<(u32, u32)>,
}

impl CompletionLog {
    /// Creates a log retaining `horizon` of history.
    pub fn new(horizon: SimDuration) -> Self {
        let capacity = (horizon.as_nanos() / RING_WIDTH_NANOS + 2) as usize;
        CompletionLog {
            horizon,
            entries: VecDeque::new(),
            counts: RefCell::new(CountRing {
                threshold: SimDuration::MAX,
                ring: BucketRing::new(RING_WIDTH_NANOS, capacity),
            }),
        }
    }

    /// Records a completion at `t` with response time `rt`.
    ///
    /// The fast path appends: the function-edge simulator emits completions
    /// in time order. Under a simulated network, telemetry reports can be
    /// delayed past each other and arrive *out of order*; a late sample is
    /// sorted into place (keeping window queries exact) if it still falls
    /// inside the retention window, and silently discarded otherwise — a
    /// report that stale would have been evicted already had it arrived on
    /// time, and dropping it keeps the count ring an exact mirror of the
    /// retained entries.
    pub fn record(&mut self, t: SimTime, rt: SimDuration) {
        match self.entries.back() {
            Some(&(last, _)) if t < last => return self.record_late(t, rt),
            _ => {}
        }
        self.entries.push_back((t, rt));
        let c = self.counts.get_mut();
        let slot = c
            .ring
            .slot_mut(t.as_nanos() / RING_WIDTH_NANOS)
            .expect("newest bucket is always retained");
        slot.0 += 1;
        if rt <= c.threshold {
            slot.1 += 1;
        }
        self.evict(t);
    }

    /// Sorted-insert path for a completion that arrived after a newer one.
    ///
    /// The ring slot is resolved *first*: a `None` slot means the sample
    /// predates ring retention, and admitting it to `entries` without a ring
    /// slot would break the entries↔ring mirror every windowed query relies
    /// on — so the sample is dropped outright. Eviction is not re-run (the
    /// newest timestamp has not advanced).
    fn record_late(&mut self, t: SimTime, rt: SimDuration) {
        let c = self.counts.get_mut();
        let Some(slot) = c.ring.slot_mut(t.as_nanos() / RING_WIDTH_NANOS) else {
            return; // beyond retention: would already have been evicted
        };
        slot.0 += 1;
        if rt <= c.threshold {
            slot.1 += 1;
        }
        let at = self.entries.partition_point(|&(et, _)| et <= t);
        self.entries.insert(at, (t, rt));
    }

    fn evict(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(SimTime::ZERO);
        if elapsed <= self.horizon {
            return;
        }
        let cutoff = SimTime::ZERO + (elapsed - self.horizon);
        let c = self.counts.get_mut();
        while let Some(&(t, rt)) = self.entries.front() {
            if t < cutoff {
                self.entries.pop_front();
                // Subtract so ring slots keep mirroring exactly the
                // retained entries.
                if let Some(slot) = c.ring.slot_mut(t.as_nanos() / RING_WIDTH_NANOS) {
                    slot.0 -= 1;
                    if rt <= c.threshold {
                        slot.1 -= 1;
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Time of the most recent retained completion, if any — the freshness
    /// signal controllers use to detect telemetry staleness.
    pub fn latest(&self) -> Option<SimTime> {
        self.entries.back().map(|&(t, _)| t)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Completions in `[from, to)`.
    pub fn count_in(&self, from: SimTime, to: SimTime) -> u64 {
        let c = self.counts.borrow();
        if Self::ring_serves(&c.ring, from, to) {
            let (b0, b1) = (
                from.as_nanos() / RING_WIDTH_NANOS,
                to.as_nanos() / RING_WIDTH_NANOS,
            );
            return (b0..b1)
                .map(|b| u64::from(c.ring.get(b).unwrap_or_default().0))
                .sum();
        }
        drop(c);
        self.iter_window(from, to).count() as u64
    }

    /// Completions in `[from, to)` with response time ≤ `threshold`.
    pub fn goodput_in(&self, from: SimTime, to: SimTime, threshold: SimDuration) -> u64 {
        let mut c = self.counts.borrow_mut();
        if Self::ring_serves(&c.ring, from, to) {
            if c.threshold != threshold {
                Self::refold(&self.entries, &mut c, threshold);
            }
            let (b0, b1) = (
                from.as_nanos() / RING_WIDTH_NANOS,
                to.as_nanos() / RING_WIDTH_NANOS,
            );
            return (b0..b1)
                .map(|b| u64::from(c.ring.get(b).unwrap_or_default().1))
                .sum();
        }
        drop(c);
        self.iter_window(from, to)
            .filter(|&&(_, rt)| rt <= threshold)
            .count() as u64
    }

    /// Iterates `(time, response_time)` entries in `[from, to)`.
    pub fn iter_window(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &(SimTime, SimDuration)> + '_ {
        // Entries are time-ordered; binary search both ends.
        let start = self.entries.partition_point(|&(t, _)| t < from);
        let end = self.entries.partition_point(|&(t, _)| t < to);
        self.entries.range(start..end)
    }

    /// Per-bucket `(completions, good_completions)` counts over `[from, to)`.
    pub fn bucket_counts(
        &self,
        from: SimTime,
        to: SimTime,
        width: SimDuration,
        threshold: SimDuration,
    ) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.bucket_counts_into(from, to, width, threshold, &mut out);
        out
    }

    /// [`CompletionLog::bucket_counts`] into a caller-owned buffer (cleared
    /// first) — the zero-allocation path for per-tick callers that reuse
    /// scratch.
    pub fn bucket_counts_into(
        &self,
        from: SimTime,
        to: SimTime,
        width: SimDuration,
        threshold: SimDuration,
        out: &mut Vec<(u64, u64)>,
    ) {
        assert!(!width.is_zero(), "bucket width must be non-zero");
        out.clear();
        let w = width.as_nanos();
        let n = to.saturating_since(from).as_nanos() / w;
        if n == 0 {
            return;
        }
        let mut c = self.counts.borrow_mut();
        if !w.is_multiple_of(RING_WIDTH_NANOS)
            || !from.as_nanos().is_multiple_of(RING_WIDTH_NANOS)
            || from.as_nanos() / RING_WIDTH_NANOS < c.ring.first_retained()
        {
            drop(c);
            self.scan_bucket_counts_into(from, to, width, threshold, out);
            return;
        }
        if c.threshold != threshold {
            Self::refold(&self.entries, &mut c, threshold);
        }
        let k = w / RING_WIDTH_NANOS;
        let base = from.as_nanos() / RING_WIDTH_NANOS;
        out.reserve(n as usize);
        for i in 0..n {
            let b0 = base + i * k;
            let (mut total, mut good) = (0u64, 0u64);
            for b in b0..b0 + k {
                let (t_, g) = c.ring.get(b).unwrap_or_default();
                total += u64::from(t_);
                good += u64::from(g);
            }
            out.push((total, good));
        }
    }

    /// Reference scan implementation of [`CompletionLog::bucket_counts`] —
    /// the equivalence oracle for the ring path.
    #[cfg(any(test, feature = "reference-scan"))]
    pub fn bucket_counts_scan(
        &self,
        from: SimTime,
        to: SimTime,
        width: SimDuration,
        threshold: SimDuration,
    ) -> Vec<(u64, u64)> {
        assert!(!width.is_zero(), "bucket width must be non-zero");
        let mut out = Vec::new();
        self.scan_bucket_counts_into(from, to, width, threshold, &mut out);
        out
    }

    /// Reference scan implementation of [`CompletionLog::count_in`].
    #[cfg(any(test, feature = "reference-scan"))]
    pub fn count_in_scan(&self, from: SimTime, to: SimTime) -> u64 {
        self.iter_window(from, to).count() as u64
    }

    /// Reference scan implementation of [`CompletionLog::goodput_in`].
    #[cfg(any(test, feature = "reference-scan"))]
    pub fn goodput_in_scan(&self, from: SimTime, to: SimTime, threshold: SimDuration) -> u64 {
        self.iter_window(from, to)
            .filter(|&&(_, rt)| rt <= threshold)
            .count() as u64
    }

    fn scan_bucket_counts_into(
        &self,
        from: SimTime,
        to: SimTime,
        width: SimDuration,
        threshold: SimDuration,
        out: &mut Vec<(u64, u64)>,
    ) {
        let n = (to.saturating_since(from).as_nanos() / width.as_nanos()) as usize;
        out.clear();
        out.resize(n, (0u64, 0u64));
        for &(t, rt) in self.iter_window(from, from + width * n as u64) {
            let idx = ((t - from).as_nanos() / width.as_nanos()) as usize;
            out[idx].0 += 1;
            if rt <= threshold {
                out[idx].1 += 1;
            }
        }
    }

    /// True when `[from, to)` is 10 ms-aligned and inside ring retention.
    fn ring_serves(ring: &BucketRing<(u32, u32)>, from: SimTime, to: SimTime) -> bool {
        from.as_nanos().is_multiple_of(RING_WIDTH_NANOS)
            && to.as_nanos().is_multiple_of(RING_WIDTH_NANOS)
            && from.as_nanos() / RING_WIDTH_NANOS >= ring.first_retained()
    }

    /// Rebuilds the `good` half of every retained slot for a new threshold:
    /// one pass over the retained entries, amortized across every later
    /// aligned query at that threshold.
    fn refold(
        entries: &VecDeque<(SimTime, SimDuration)>,
        c: &mut CountRing,
        threshold: SimDuration,
    ) {
        c.threshold = threshold;
        for b in c.ring.first_retained()..c.ring.next_bucket() {
            if let Some(slot) = c.ring.slot_mut(b) {
                slot.1 = 0;
            }
        }
        for &(t, rt) in entries {
            if rt <= threshold {
                if let Some(slot) = c.ring.slot_mut(t.as_nanos() / RING_WIDTH_NANOS) {
                    slot.1 += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn goodput_respects_threshold() {
        let mut log = CompletionLog::new(SimDuration::from_secs(60));
        log.record(t(1), d(5));
        log.record(t(2), d(15));
        log.record(t(3), d(10));
        assert_eq!(log.count_in(t(0), t(10)), 3);
        assert_eq!(log.goodput_in(t(0), t(10), d(10)), 2); // 5 and 10 (inclusive)
        assert_eq!(log.goodput_in(t(0), t(10), d(4)), 0);
    }

    #[test]
    fn window_bounds_are_half_open() {
        let mut log = CompletionLog::new(SimDuration::from_secs(60));
        log.record(t(10), d(1));
        log.record(t(20), d(1));
        assert_eq!(log.count_in(t(10), t(20)), 1);
        assert_eq!(log.count_in(t(0), t(10)), 0);
    }

    #[test]
    fn horizon_evicts() {
        let mut log = CompletionLog::new(d(100));
        log.record(t(10), d(1));
        log.record(t(200), d(1)); // cutoff at 100 ms → first entry dropped
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn bucket_counts_partition() {
        let mut log = CompletionLog::new(SimDuration::from_secs(60));
        log.record(t(50), d(5));
        log.record(t(150), d(50));
        log.record(t(160), d(5));
        let buckets = log.bucket_counts(t(0), t(200), d(100), d(10));
        assert_eq!(buckets, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn late_record_is_sorted_into_place() {
        let mut log = CompletionLog::new(SimDuration::from_secs(60));
        log.record(t(10), d(1));
        log.record(t(30), d(20));
        log.record(t(20), d(1)); // late arrival
        assert_eq!(log.len(), 3);
        assert_eq!(log.latest(), Some(t(30)), "latest() ignores late inserts");
        let times: Vec<u64> = log
            .iter_window(t(0), t(100))
            .map(|&(et, _)| et.as_millis())
            .collect();
        assert_eq!(times, [10, 20, 30], "entries stay time-sorted");
        assert_eq!(log.count_in(t(20), t(30)), 1);
        assert_eq!(log.goodput_in(t(0), t(100), d(10)), 2);
    }

    #[test]
    fn late_record_beyond_retention_is_discarded() {
        let mut log = CompletionLog::new(d(100));
        log.record(t(10), d(1));
        log.record(t(500), d(1)); // evicts the 10 ms entry
        log.record(t(10), d(1)); // far staler than the horizon: dropped
        assert_eq!(log.len(), 1);
        assert_eq!(
            log.count_in(t(0), t(1000)),
            log.count_in_scan(t(0), t(1000))
        );
    }

    #[test]
    fn ring_matches_scan_with_late_inserts() {
        let mut log = CompletionLog::new(d(500));
        for i in 0..100u64 {
            log.record(t(1000 + i * 7), SimDuration::from_micros(i * 997 % 40_000));
            if i.is_multiple_of(5) {
                // A telemetry report delayed past its peers.
                log.record(t(990 + i * 7), SimDuration::from_micros(i * 131 % 40_000));
            }
        }
        let (f, to) = (t(1200), t(1600));
        for thr_ms in [5u64, 20] {
            assert_eq!(
                log.bucket_counts(f, to, d(50), d(thr_ms)),
                log.bucket_counts_scan(f, to, d(50), d(thr_ms)),
                "threshold {thr_ms}"
            );
        }
        assert_eq!(log.count_in(f, to), log.count_in_scan(f, to));
    }

    #[test]
    fn ring_matches_scan_across_thresholds_and_eviction() {
        let mut log = CompletionLog::new(d(500));
        for i in 0..300u64 {
            log.record(t(i * 7), SimDuration::from_micros(i * 997 % 40_000));
        }
        // Alternating thresholds force repeated refolds.
        for thr_ms in [5u64, 20, 5, 33] {
            let (f, to) = (t(1700), t(2100));
            assert_eq!(
                log.bucket_counts(f, to, d(50), d(thr_ms)),
                log.bucket_counts_scan(f, to, d(50), d(thr_ms)),
                "threshold {thr_ms}"
            );
            assert_eq!(
                log.goodput_in(f, to, d(thr_ms)),
                log.goodput_in_scan(f, to, d(thr_ms))
            );
        }
        // A window straddling the evicted region falls back to the scan and
        // still matches.
        assert_eq!(
            log.bucket_counts(t(0), t(2100), d(100), d(10)),
            log.bucket_counts_scan(t(0), t(2100), d(100), d(10))
        );
        assert_eq!(
            log.count_in(t(0), t(2100)),
            log.count_in_scan(t(0), t(2100))
        );
    }

    proptest! {
        /// Goodput never exceeds throughput for any threshold, and both are
        /// monotone in the threshold.
        #[test]
        fn prop_goodput_bounds(
            rts in proptest::collection::vec(1u64..500, 1..100),
            thr_a in 1u64..500,
            thr_b in 1u64..500,
        ) {
            let mut log = CompletionLog::new(SimDuration::from_secs(600));
            for (i, &rt) in rts.iter().enumerate() {
                log.record(t(i as u64), d(rt));
            }
            let (from, to) = (t(0), t(rts.len() as u64));
            let total = log.count_in(from, to);
            let (lo, hi) = (thr_a.min(thr_b), thr_a.max(thr_b));
            let g_lo = log.goodput_in(from, to, d(lo));
            let g_hi = log.goodput_in(from, to, d(hi));
            prop_assert!(g_lo <= g_hi);
            prop_assert!(g_hi <= total);
        }
    }
}
