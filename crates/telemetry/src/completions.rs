//! Per-service completion log: response times with time-horizon eviction.

use sim_core::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A bounded log of `(completion_time, response_time)` pairs for one
/// service.
///
/// This is the `GP_n` half of the SCG model's `<Q_n, GP_n>` pairs: because
/// the response-time *threshold* is chosen later (by deadline propagation),
/// the log stores raw response times and computes goodput for any threshold
/// on demand, rather than committing to a threshold at ingest.
///
/// # Example
///
/// ```
/// use telemetry::CompletionLog;
/// use sim_core::{SimDuration, SimTime};
///
/// let mut log = CompletionLog::new(SimDuration::from_secs(60));
/// log.record(SimTime::from_millis(10), SimDuration::from_millis(4));
/// log.record(SimTime::from_millis(20), SimDuration::from_millis(40));
/// let good = log.goodput_in(SimTime::ZERO, SimTime::from_millis(100),
///                           SimDuration::from_millis(10));
/// assert_eq!(good, 1); // only the 4 ms completion beat the 10 ms threshold
/// ```
#[derive(Debug, Clone)]
pub struct CompletionLog {
    horizon: SimDuration,
    entries: VecDeque<(SimTime, SimDuration)>,
}

impl CompletionLog {
    /// Creates a log retaining `horizon` of history.
    pub fn new(horizon: SimDuration) -> Self {
        CompletionLog {
            horizon,
            entries: VecDeque::new(),
        }
    }

    /// Records a completion at `t` with response time `rt`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded completion (the simulator
    /// emits completions in time order).
    pub fn record(&mut self, t: SimTime, rt: SimDuration) {
        if let Some(&(last, _)) = self.entries.back() {
            assert!(t >= last, "completions must be recorded in time order");
        }
        self.entries.push_back((t, rt));
        self.evict(t);
    }

    fn evict(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(SimTime::ZERO);
        if elapsed <= self.horizon {
            return;
        }
        let cutoff = SimTime::ZERO + (elapsed - self.horizon);
        while let Some(&(t, _)) = self.entries.front() {
            if t < cutoff {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    /// Time of the most recent retained completion, if any — the freshness
    /// signal controllers use to detect telemetry staleness.
    pub fn latest(&self) -> Option<SimTime> {
        self.entries.back().map(|&(t, _)| t)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Completions in `[from, to)`.
    pub fn count_in(&self, from: SimTime, to: SimTime) -> u64 {
        self.iter_window(from, to).count() as u64
    }

    /// Completions in `[from, to)` with response time ≤ `threshold`.
    pub fn goodput_in(&self, from: SimTime, to: SimTime, threshold: SimDuration) -> u64 {
        self.iter_window(from, to)
            .filter(|&&(_, rt)| rt <= threshold)
            .count() as u64
    }

    /// Iterates `(time, response_time)` entries in `[from, to)`.
    pub fn iter_window(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &(SimTime, SimDuration)> + '_ {
        // Entries are time-ordered; binary search both ends.
        let start = self.entries.partition_point(|&(t, _)| t < from);
        let end = self.entries.partition_point(|&(t, _)| t < to);
        self.entries.range(start..end)
    }

    /// Per-bucket `(completions, good_completions)` counts over `[from, to)`.
    pub fn bucket_counts(
        &self,
        from: SimTime,
        to: SimTime,
        width: SimDuration,
        threshold: SimDuration,
    ) -> Vec<(u64, u64)> {
        assert!(!width.is_zero(), "bucket width must be non-zero");
        let n = (to.saturating_since(from).as_nanos() / width.as_nanos()) as usize;
        let mut out = vec![(0u64, 0u64); n];
        for &(t, rt) in self.iter_window(from, from + width * n as u64) {
            let idx = ((t - from).as_nanos() / width.as_nanos()) as usize;
            out[idx].0 += 1;
            if rt <= threshold {
                out[idx].1 += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn goodput_respects_threshold() {
        let mut log = CompletionLog::new(SimDuration::from_secs(60));
        log.record(t(1), d(5));
        log.record(t(2), d(15));
        log.record(t(3), d(10));
        assert_eq!(log.count_in(t(0), t(10)), 3);
        assert_eq!(log.goodput_in(t(0), t(10), d(10)), 2); // 5 and 10 (inclusive)
        assert_eq!(log.goodput_in(t(0), t(10), d(4)), 0);
    }

    #[test]
    fn window_bounds_are_half_open() {
        let mut log = CompletionLog::new(SimDuration::from_secs(60));
        log.record(t(10), d(1));
        log.record(t(20), d(1));
        assert_eq!(log.count_in(t(10), t(20)), 1);
        assert_eq!(log.count_in(t(0), t(10)), 0);
    }

    #[test]
    fn horizon_evicts() {
        let mut log = CompletionLog::new(d(100));
        log.record(t(10), d(1));
        log.record(t(200), d(1)); // cutoff at 100 ms → first entry dropped
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn bucket_counts_partition() {
        let mut log = CompletionLog::new(SimDuration::from_secs(60));
        log.record(t(50), d(5));
        log.record(t(150), d(50));
        log.record(t(160), d(5));
        let buckets = log.bucket_counts(t(0), t(200), d(100), d(10));
        assert_eq!(buckets, vec![(1, 1), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_record_panics() {
        let mut log = CompletionLog::new(SimDuration::from_secs(60));
        log.record(t(10), d(1));
        log.record(t(5), d(1));
    }

    proptest! {
        /// Goodput never exceeds throughput for any threshold, and both are
        /// monotone in the threshold.
        #[test]
        fn prop_goodput_bounds(
            rts in proptest::collection::vec(1u64..500, 1..100),
            thr_a in 1u64..500,
            thr_b in 1u64..500,
        ) {
            let mut log = CompletionLog::new(SimDuration::from_secs(600));
            for (i, &rt) in rts.iter().enumerate() {
                log.record(t(i as u64), d(rt));
            }
            let (from, to) = (t(0), t(rts.len() as u64));
            let total = log.count_in(from, to);
            let (lo, hi) = (thr_a.min(thr_b), thr_a.max(thr_b));
            let g_lo = log.goodput_in(from, to, d(lo));
            let g_hi = log.goodput_in(from, to, d(hi));
            prop_assert!(g_lo <= g_hi);
            prop_assert!(g_hi <= total);
        }
    }
}
