//! Spans and traces: the request-level records the Monitoring Module emits.

use crate::{ReplicaId, RequestId, RequestTypeId, ServiceId, SpanId};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

/// One downstream RPC issued while serving a span: which service was called
/// and when the call was outstanding. Used to split a span's wall time into
/// *own processing* vs *waiting on children* — the paper's `PT` vs `RT`
/// decomposition (§3.2, eq. 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChildCall {
    /// The downstream service invoked.
    pub service: ServiceId,
    /// When the call was issued.
    pub start: SimTime,
    /// When the response arrived.
    pub end: SimTime,
}

impl ChildCall {
    /// Wall time the call was outstanding.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// One service's segment of a request: arrival and departure timestamps plus
/// the downstream calls made in between. This is the unit the trace
/// warehouse stores, equivalent to an OpenTracing span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// The span's identity.
    pub id: SpanId,
    /// The request this span belongs to.
    pub request: RequestId,
    /// The service that executed it.
    pub service: ServiceId,
    /// The replica (pod) that executed it.
    pub replica: ReplicaId,
    /// The parent span, if any (`None` for the root / front-end span).
    pub parent: Option<SpanId>,
    /// When the request arrived at this service.
    pub arrival: SimTime,
    /// When a worker thread picked the request up (arrival plus any accept
    /// -queue wait).
    pub service_start: SimTime,
    /// When the response left this service.
    pub departure: SimTime,
    /// Downstream calls made while serving, in issue order.
    pub children: Vec<ChildCall>,
}

impl Span {
    /// Total wall time spent in this service (including downstream waits).
    pub fn response_time(&self) -> SimDuration {
        self.departure - self.arrival
    }

    /// Time spent waiting for a worker thread (soft-resource queueing).
    pub fn queue_wait(&self) -> SimDuration {
        self.service_start.saturating_since(self.arrival)
    }

    /// Own processing time: wall time minus the union of child-call
    /// intervals. Overlapping (parallel) child calls are not double-counted.
    ///
    /// This is the paper's `PT_s = PT_req,s + PT_res,s` — the part of the
    /// span that the *local* service spent queueing/computing, which is what
    /// deadline propagation subtracts from the SLA (eq. 3).
    pub fn self_time(&self) -> SimDuration {
        let total = self.response_time();
        let waiting = self.child_wait_time();
        if waiting >= total {
            SimDuration::ZERO
        } else {
            total - waiting
        }
    }

    /// Wall time covered by at least one outstanding child call (interval
    /// union, robust to parallel fan-out).
    pub fn child_wait_time(&self) -> SimDuration {
        if self.children.is_empty() {
            return SimDuration::ZERO;
        }
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .children
            .iter()
            .map(|c| (c.start.max(self.arrival), c.end.min(self.departure)))
            .filter(|(s, e)| e > s)
            .collect();
        intervals.sort();
        let mut covered = SimDuration::ZERO;
        let mut cursor: Option<(SimTime, SimTime)> = None;
        for (s, e) in intervals {
            match cursor {
                None => cursor = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        cursor = Some((cs, ce.max(e)));
                    } else {
                        covered += ce - cs;
                        cursor = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = cursor {
            covered += ce - cs;
        }
        covered
    }
}

/// A finished request: its metadata plus every span it produced, root first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The request's identity.
    pub request: RequestId,
    /// The request type (workload-mix entry).
    pub request_type: RequestTypeId,
    /// All spans of the request. `spans[0]` is the root (front-end) span.
    pub spans: Vec<Span>,
}

impl Trace {
    /// The root span.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no spans (never produced by the simulator).
    pub fn root(&self) -> &Span {
        &self.spans[0]
    }

    /// End-to-end response time (root span duration).
    pub fn response_time(&self) -> SimDuration {
        self.root().response_time()
    }

    /// When the request completed.
    pub fn completed_at(&self) -> SimTime {
        self.root().departure
    }

    /// Looks up a span by id.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// The spans executed by `service`, in arrival order of appearance.
    pub fn spans_of(&self, service: ServiceId) -> impl Iterator<Item = &Span> + '_ {
        self.spans.iter().filter(move |s| s.service == service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn span(id: u64, arrival: u64, departure: u64, children: Vec<ChildCall>) -> Span {
        Span {
            id: SpanId(id),
            request: RequestId(1),
            service: ServiceId(0),
            replica: ReplicaId(0),
            parent: None,
            arrival: t(arrival),
            service_start: t(arrival),
            departure: t(departure),
            children,
        }
    }

    #[test]
    fn self_time_without_children_is_wall_time() {
        let s = span(0, 10, 25, vec![]);
        assert_eq!(s.response_time().as_millis(), 15);
        assert_eq!(s.self_time().as_millis(), 15);
        assert_eq!(s.child_wait_time(), SimDuration::ZERO);
    }

    #[test]
    fn sequential_children_subtract() {
        let s = span(
            0,
            0,
            100,
            vec![
                ChildCall {
                    service: ServiceId(1),
                    start: t(10),
                    end: t(30),
                },
                ChildCall {
                    service: ServiceId(2),
                    start: t(50),
                    end: t(70),
                },
            ],
        );
        assert_eq!(s.child_wait_time().as_millis(), 40);
        assert_eq!(s.self_time().as_millis(), 60);
    }

    #[test]
    fn parallel_children_are_not_double_counted() {
        let s = span(
            0,
            0,
            100,
            vec![
                ChildCall {
                    service: ServiceId(1),
                    start: t(10),
                    end: t(60),
                },
                ChildCall {
                    service: ServiceId(2),
                    start: t(20),
                    end: t(40),
                },
                ChildCall {
                    service: ServiceId(3),
                    start: t(50),
                    end: t(80),
                },
            ],
        );
        // Union of [10,60] ∪ [20,40] ∪ [50,80] = [10,80] → 70 ms.
        assert_eq!(s.child_wait_time().as_millis(), 70);
        assert_eq!(s.self_time().as_millis(), 30);
    }

    #[test]
    fn child_intervals_are_clamped_to_span() {
        let s = span(
            0,
            10,
            50,
            vec![ChildCall {
                service: ServiceId(1),
                start: t(0),
                end: t(100),
            }],
        );
        assert_eq!(s.child_wait_time().as_millis(), 40);
        assert_eq!(s.self_time(), SimDuration::ZERO);
    }

    #[test]
    fn trace_accessors() {
        let tr = Trace {
            request: RequestId(9),
            request_type: RequestTypeId(2),
            spans: vec![
                span(0, 0, 50, vec![]),
                Span {
                    service: ServiceId(5),
                    ..span(1, 5, 45, vec![])
                },
            ],
        };
        assert_eq!(tr.response_time().as_millis(), 50);
        assert_eq!(tr.completed_at(), t(50));
        assert!(tr.span(SpanId(1)).is_some());
        assert!(tr.span(SpanId(7)).is_none());
        assert_eq!(tr.spans_of(ServiceId(5)).count(), 1);
    }
}
