//! The on-disk, content-addressed result cache.
//!
//! One file per completed run, named `<cache-key>.json` and holding the
//! canonical result text. Writes go through a temp file and an atomic
//! rename, so a killed farm never leaves a truncated entry: whatever is in
//! the cache directory is complete and trustworthy, which is the whole
//! resume story — a restarted sweep just looks its keys up again.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A directory of completed results keyed by [`crate::canon::cache_key`].
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `key`'s result lives (whether or not it exists yet).
    pub fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// The cached result text, if this key has completed before.
    pub fn lookup(&self, key: &str) -> Option<String> {
        fs::read_to_string(self.path_of(key)).ok()
    }

    /// Stores a completed result: temp file + atomic rename, so readers
    /// (and resumed farms) never observe a partial entry.
    pub fn store(&self, key: &str, text: &str) -> io::Result<()> {
        let tmp = self.dir.join(format!(".{key}.tmp"));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.path_of(key))
    }

    /// How many completed entries the cache holds.
    pub fn stored(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.ends_with(".json") && !name.starts_with('.') && name != "manifest.json"
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sora-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = tmp_dir("rt");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.lookup("deadbeef"), None);
        cache.store("deadbeef", "{\"ok\": true}").unwrap();
        assert_eq!(cache.lookup("deadbeef").as_deref(), Some("{\"ok\": true}"));
        assert_eq!(cache.stored(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_and_temp_files_are_not_counted() {
        let dir = tmp_dir("count");
        let cache = ResultCache::open(&dir).unwrap();
        cache.store("aa", "1").unwrap();
        fs::write(dir.join("manifest.json"), "{}").unwrap();
        fs::write(dir.join(".bb.tmp"), "partial").unwrap();
        assert_eq!(cache.stored(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
