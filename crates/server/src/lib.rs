//! **sora-server** — the simulation-as-a-service control plane.
//!
//! Everything else in this workspace runs simulations *in process*. This
//! crate puts the same engine behind a small wire protocol so experiments
//! can be driven remotely and fanned out across worker processes:
//!
//! * [`protocol`] — a length-prefixed JSON frame codec with typed
//!   [`protocol::Request`]/[`protocol::Reply`] messages, used identically
//!   over TCP (the server) and over stdio (farm workers);
//! * [`session`] — live sessions: a scenario initialised once and stepped
//!   to successive simulated-time targets, surfacing telemetry snapshots
//!   and controller status between steps;
//! * [`canon`] — canonical scenario JSON (sorted keys, normalised numbers)
//!   and the content-addressed cache key derived from it;
//! * [`cache`] — the on-disk result cache keyed by [`canon::cache_key`];
//! * [`farm`] — the sweep farm: scenario fan-out across spawned worker
//!   processes with cache short-circuiting and kill/resume semantics;
//! * [`service`] — the TCP accept loop, per-connection dispatch, and the
//!   stdio worker loop;
//! * [`signals`] — the SIGINT/SIGTERM stop flag behind graceful shutdown.
//!
//! The headline invariant: a scenario submitted over the wire produces
//! **byte-identical** results JSON to the same scenario run in-process
//! (`run_scenario` / [`sora_bench::ScenarioSpec::run`]), at any worker
//! count. Both paths funnel through [`sora_bench::scenario_result_text`],
//! and live sessions step the run with [`apps::ScenarioStepper`], which
//! pauses only between fully-executed workload actions.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canon;
pub mod farm;
pub mod protocol;
pub mod service;
pub mod session;
pub mod signals;

pub use cache::ResultCache;
pub use canon::{cache_key, canonical_string, canonicalize, content_hash, ENGINE_FINGERPRINT};
pub use farm::{run_farm, EntryStatus, FarmConfig, FarmEntry, FarmOutcome};
pub use protocol::{
    read_frame, write_frame, FrameError, Reply, Request, ServerError, SessionStatus,
    TelemetryFrame, MAX_FRAME_LEN,
};
pub use service::{serve, worker_loop, worker_loop_on};
pub use session::LiveSession;
pub use signals::{install as install_signal_handlers, request_stop, stop_flag};

// Re-exported so server binaries and tests need no direct bench dependency
// to parse specs or render the canonical result text.
pub use sora_bench::{scenario_result_text, ScenarioError, ScenarioSpec};
