//! The request loop: the TCP control plane and the stdio worker loop.
//!
//! Both speak the same framed protocol; the TCP side additionally hosts
//! per-connection [`LiveSession`]s (a `World` is not `Send`, so a session
//! lives and dies on its connection's thread). Malformed traffic drops the
//! offending connection with a typed error reply where possible — the
//! process never panics on wire input.

use crate::cache::ResultCache;
use crate::canon::cache_key;
use crate::protocol::{read_frame, write_frame, FrameError, Reply, Request, ServerError};
use crate::session::LiveSession;
use crate::signals;
use sim_core::{SimDuration, SimTime};
use sora_bench::{scenario_result_text, ScenarioSpec};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Accepts connections until `stop` is raised, spawning one thread per
/// connection. `cache` (when present) memoises `Submit` results by their
/// content-addressed key.
pub fn serve(
    listener: TcpListener,
    cache: Option<ResultCache>,
    stop: &'static AtomicBool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                let cache = cache.clone();
                conns.push(std::thread::spawn(move || handle_conn(stream, cache)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    // Let in-flight connections wind down; they observe the stop flag only
    // through Shutdown requests, so just join what has already finished.
    for handle in conns {
        if handle.is_finished() {
            let _ = handle.join();
        }
    }
    Ok(())
}

/// Parses and runs one scenario, memoising through `cache` when present.
/// This is the single code path behind TCP `Submit`, session `Finish`
/// caching, and the stdio worker — which is what makes wire results
/// byte-identical to in-process runs.
fn run_submit(text: &str, cache: Option<&ResultCache>) -> Reply {
    let spec = match ScenarioSpec::parse(text) {
        Ok(spec) => spec,
        Err(error) => {
            return Reply::Error {
                error: ServerError::Scenario { error },
            }
        }
    };
    let key = cache_key(&spec);
    if let Some(cache) = cache {
        if let Some(text) = cache.lookup(&key) {
            return Reply::Result { key, text };
        }
    }
    let outcome = spec.run();
    let text = scenario_result_text(&spec, &outcome);
    if let Some(cache) = cache {
        if let Err(e) = cache.store(&key, &text) {
            eprintln!("[serve] could not cache {key}: {e}");
        }
    }
    Reply::Result { key, text }
}

fn bad_request(message: impl Into<String>) -> Reply {
    Reply::Error {
        error: ServerError::BadRequest {
            message: message.into(),
        },
    }
}

/// Serves one TCP connection to completion.
fn handle_conn(mut stream: TcpStream, cache: Option<ResultCache>) {
    let mut session: Option<LiveSession> = None;
    loop {
        let request = match read_frame::<_, Request>(&mut stream) {
            Ok(request) => request,
            Err(FrameError::Closed) => break,
            Err(e) => {
                // Tell the peer why (best effort), then drop the link: after
                // a framing error the stream position is unknowable.
                let _ = write_frame(&mut stream, &bad_request(e.to_string()));
                break;
            }
        };
        let reply = match request {
            Request::Ping => Reply::Pong,
            Request::Submit { scenario } => run_submit(&scenario, cache.as_ref()),
            Request::Init { scenario } => match ScenarioSpec::parse(&scenario) {
                Ok(spec) => {
                    let live = LiveSession::new(spec);
                    let key = live.key().to_string();
                    session = Some(live);
                    Reply::Inited { key }
                }
                Err(error) => Reply::Error {
                    error: ServerError::Scenario { error },
                },
            },
            Request::StepUntil { t_secs } => match session.as_mut() {
                None => bad_request("no live session: send `init` first"),
                Some(_) if !(t_secs.is_finite() && t_secs >= 0.0) => {
                    bad_request(format!("step target {t_secs} is not a valid time"))
                }
                Some(live) => {
                    let target = SimTime::from_secs_f64(t_secs);
                    let mut write_failed = false;
                    let (now, workload_done) = live.step_until(target, |frame| {
                        if !write_failed
                            && write_frame(&mut stream, &Reply::Telemetry { frame }).is_err()
                        {
                            write_failed = true;
                        }
                    });
                    if write_failed {
                        return;
                    }
                    Reply::Stepped {
                        now_secs: now.as_secs_f64(),
                        workload_done,
                    }
                }
            },
            Request::Time => match session.as_ref() {
                None => bad_request("no live session: send `init` first"),
                Some(live) => Reply::TimeIs {
                    now_secs: live.now().as_secs_f64(),
                },
            },
            Request::Status => match session.as_ref() {
                None => bad_request("no live session: send `init` first"),
                Some(live) => Reply::StatusIs {
                    status: live.status(),
                },
            },
            Request::Subscribe { period_secs } => match session.as_mut() {
                None => bad_request("no live session: send `init` first"),
                Some(_) if !(period_secs.is_finite() && period_secs > 0.0) => bad_request(format!(
                    "subscription period {period_secs} must be positive"
                )),
                Some(live) => {
                    live.subscribe(SimDuration::from_secs_f64(period_secs));
                    Reply::Subscribed
                }
            },
            Request::Finish => match session.take() {
                None => bad_request("no live session: send `init` first"),
                Some(live) => {
                    let (key, text) = live.finish();
                    if let Some(cache) = cache.as_ref() {
                        if let Err(e) = cache.store(&key, &text) {
                            eprintln!("[serve] could not cache {key}: {e}");
                        }
                    }
                    Reply::Result { key, text }
                }
            },
            Request::Halt => {
                session = None;
                Reply::Halted
            }
            Request::Shutdown => {
                let _ = write_frame(&mut stream, &Reply::ShuttingDown);
                signals::request_stop();
                return;
            }
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// The stdio worker loop: `Submit` frames in, `Result` frames out, until
/// stdin closes or a `Shutdown` frame arrives. Spawned by the farm
/// coordinator as `sora-server worker`; results are cached by the
/// coordinator, not here.
pub fn worker_loop() {
    let stdin = io::stdin();
    let stdout = io::stdout();
    worker_loop_on(&mut stdin.lock(), &mut stdout.lock());
}

/// The worker loop over arbitrary streams (testable without a process).
pub fn worker_loop_on<R: Read, W: Write>(input: &mut R, output: &mut W) {
    loop {
        let reply = match read_frame::<_, Request>(input) {
            Ok(Request::Submit { scenario }) => run_submit(&scenario, None),
            Ok(Request::Ping) => Reply::Pong,
            Ok(Request::Shutdown) | Err(FrameError::Closed) => {
                let _ = write_frame(output, &Reply::ShuttingDown);
                return;
            }
            Ok(other) => bad_request(format!("workers only run submissions, got {other:?}")),
            Err(e) => {
                let _ = write_frame(output, &bad_request(e.to_string()));
                return;
            }
        };
        if write_frame(output, &reply).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const TINY: &str = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 80,
                           "duration_secs": 8, "sla_ms": 400, "seed": 3}"#;

    #[test]
    fn worker_loop_runs_a_submission_and_matches_in_process_bytes() {
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &Request::Submit {
                scenario: TINY.to_string(),
            },
        )
        .unwrap();
        // EOF after one request: the worker answers, then acknowledges
        // shutdown on the closed stream.
        let mut output = Vec::new();
        worker_loop_on(&mut Cursor::new(input), &mut output);

        let mut read = Cursor::new(output);
        let reply: Reply = read_frame(&mut read).unwrap();
        let spec = ScenarioSpec::parse(TINY).unwrap();
        let expected = scenario_result_text(&spec, &spec.run());
        match reply {
            Reply::Result { key, text } => {
                assert_eq!(key, cache_key(&spec));
                assert_eq!(text, expected, "wire result must match in-process bytes");
            }
            other => panic!("expected a result, got {other:?}"),
        }
        let farewell: Reply = read_frame(&mut read).unwrap();
        assert_eq!(farewell, Reply::ShuttingDown);
    }

    #[test]
    fn worker_loop_rejects_bad_scenarios_with_typed_errors() {
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &Request::Submit {
                scenario: r#"{"app": "sock_shop", "max_user": 5}"#.to_string(),
            },
        )
        .unwrap();
        let mut output = Vec::new();
        worker_loop_on(&mut Cursor::new(input), &mut output);
        let reply: Reply = read_frame(&mut Cursor::new(output)).unwrap();
        match reply {
            Reply::Error {
                error: ServerError::Scenario { error },
            } => assert_eq!(
                error,
                sora_bench::ScenarioError::UnknownField {
                    field: "max_user".to_string()
                }
            ),
            other => panic!("expected a typed scenario error, got {other:?}"),
        }
    }
}
