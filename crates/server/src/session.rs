//! Live sessions: one scenario, initialised once, stepped on demand.
//!
//! A session owns its `World`, controller stack and [`ScenarioStepper`],
//! and lives on the connection thread that created it (worlds are not
//! `Send`). Between steps the server can read telemetry snapshots and
//! controller status without perturbing the run; finishing a session
//! yields the same canonical result text as running the scenario
//! in-process — byte for byte, because the stepper pauses only between
//! fully-executed workload actions.

use crate::canon::cache_key;
use crate::protocol::{SessionStatus, TelemetryFrame};
use apps::ScenarioStepper;
use microsim::World;
use sim_core::{SimDuration, SimTime};
use sora_bench::{scenario_result_text, BuiltScenario, ScenarioOutcome, ScenarioSpec};
use sora_core::Controller;

/// A scenario being stepped interactively over the wire.
pub struct LiveSession {
    key: String,
    spec: ScenarioSpec,
    world: World,
    stepper: ScenarioStepper,
    controller: Box<dyn Controller>,
    subscribe_period: Option<SimDuration>,
    /// Start of the next telemetry window (last streamed frame, or zero).
    window_from: SimTime,
    workload_done: bool,
}

impl LiveSession {
    /// Builds the world and controller stack for `spec` without advancing
    /// simulated time.
    pub fn new(spec: ScenarioSpec) -> LiveSession {
        let key = cache_key(&spec);
        let BuiltScenario {
            world,
            scenario,
            controller,
        } = spec.build();
        LiveSession {
            key,
            spec,
            world,
            stepper: scenario.into_stepper(),
            controller,
            subscribe_period: None,
            window_from: SimTime::ZERO,
            workload_done: false,
        }
    }

    /// The session's content-addressed cache key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The workload clock.
    pub fn now(&self) -> SimTime {
        self.stepper.now()
    }

    /// Whether the trace has ended.
    pub fn workload_done(&self) -> bool {
        self.workload_done
    }

    /// Streams a telemetry frame every `period` of simulated time during
    /// subsequent [`step_until`] calls.
    ///
    /// [`step_until`]: LiveSession::step_until
    pub fn subscribe(&mut self, period: SimDuration) {
        self.subscribe_period = Some(period);
    }

    /// A telemetry frame covering the window since the last streamed frame.
    pub fn frame(&self) -> TelemetryFrame {
        TelemetryFrame {
            now_secs: self.stepper.now().as_secs_f64(),
            snapshot: self
                .world
                .telemetry_snapshot(self.window_from, self.stepper.report_rtt()),
            controller: self.controller.status(),
        }
    }

    /// The full session status.
    pub fn status(&self) -> SessionStatus {
        SessionStatus {
            key: self.key.clone(),
            now_secs: self.stepper.now().as_secs_f64(),
            workload_done: self.workload_done,
            samples: self.stepper.samples().len() as u64,
            controller: self.controller.status(),
            snapshot: self
                .world
                .telemetry_snapshot(self.window_from, self.stepper.report_rtt()),
        }
    }

    /// Advances the workload clock to `target`, emitting a telemetry frame
    /// per subscription period along the way. Returns the clock and
    /// whether the trace ended.
    pub fn step_until(
        &mut self,
        target: SimTime,
        mut emit: impl FnMut(TelemetryFrame),
    ) -> (SimTime, bool) {
        match self.subscribe_period {
            None => {
                self.workload_done =
                    self.stepper
                        .step_until(&mut self.world, self.controller.as_mut(), target);
            }
            Some(period) => {
                while self.stepper.now() < target && !self.workload_done {
                    let sub_target = (self.stepper.now() + period).min(target);
                    self.workload_done = self.stepper.step_until(
                        &mut self.world,
                        self.controller.as_mut(),
                        sub_target,
                    );
                    let frame = self.frame();
                    self.window_from = self.stepper.now();
                    emit(frame);
                }
            }
        }
        (self.stepper.now(), self.workload_done)
    }

    /// Completes the session: runs the remaining trace, drains in-flight
    /// requests, and renders the canonical result text.
    pub fn finish(self) -> (String, String) {
        let LiveSession {
            key,
            spec,
            mut world,
            stepper,
            mut controller,
            ..
        } = self;
        let result = stepper.finish(&mut world, controller.as_mut());
        let summary = result.summary;
        let outcome = ScenarioOutcome {
            result,
            summary,
            world,
        };
        (key, scenario_result_text(&spec, &outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            r#"{"app": "sock_shop", "trace": "Steady", "max_users": 120.0,
                "duration_secs": 12, "sla_ms": 400, "seed": 11}"#,
        )
        .unwrap()
    }

    /// The tentpole invariant at the session layer: stepping a live
    /// session in uneven increments and finishing produces exactly the
    /// bytes of an in-process run.
    #[test]
    fn stepped_session_matches_in_process_run_byte_for_byte() {
        let spec = tiny_spec();
        let in_process = {
            let outcome = spec.run();
            scenario_result_text(&spec, &outcome)
        };

        let mut session = LiveSession::new(spec);
        let mut frames = Vec::new();
        session.subscribe(SimDuration::from_millis(2_500));
        let mut done = false;
        let mut t = 1.7;
        while !done {
            let (_, d) = session.step_until(SimTime::from_secs_f64(t), |f| frames.push(f));
            done = d;
            t += 3.3;
        }
        let (_, text) = session.finish();
        assert_eq!(in_process, text);

        // The streamed frames are causally consistent: time non-decreasing,
        // cumulative counters monotone, windows sum to the total.
        assert!(!frames.is_empty());
        for pair in frames.windows(2) {
            assert!(pair[1].now_secs >= pair[0].now_secs);
            assert!(pair[1].snapshot.completed >= pair[0].snapshot.completed);
            assert!(pair[1].snapshot.events_dispatched >= pair[0].snapshot.events_dispatched);
        }
        let windowed: u64 = frames.iter().map(|f| f.snapshot.window_completed).sum();
        let last = frames.last().unwrap();
        assert_eq!(windowed, last.snapshot.completed, "windows tile the run");
        assert_eq!(last.controller.name, "static");
    }

    #[test]
    fn status_reports_progress() {
        let spec = tiny_spec();
        let mut session = LiveSession::new(spec);
        assert_eq!(session.now(), SimTime::ZERO);
        let (now, done) = session.step_until(SimTime::from_secs(5), |_| {});
        assert!(now >= SimTime::from_secs(5));
        assert!(!done);
        let status = session.status();
        assert!(status.now_secs >= 5.0);
        assert!(!status.workload_done);
        assert!(status.samples >= 4);
        assert!(status.snapshot.completed > 0);
        assert_eq!(status.key, session.key());
    }
}
