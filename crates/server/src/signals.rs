//! SIGINT/SIGTERM → a process-wide stop flag, with no libc dependency.
//!
//! The handler only flips an atomic (the one operation that is
//! async-signal-safe by construction); the accept loop and the sweep farm
//! poll the flag and wind down cooperatively — workers finish their
//! current run, completed results are already flushed to the cache, and
//! the process exits with partial state that *is* the resume manifest.

use std::sync::atomic::{AtomicBool, Ordering};

static STOP: AtomicBool = AtomicBool::new(false);

/// The process-wide stop flag. `false` until a termination signal arrives
/// (or [`request_stop`] is called, e.g. by a `Shutdown` request).
pub fn stop_flag() -> &'static AtomicBool {
    &STOP
}

/// Raises the stop flag programmatically.
pub fn request_stop() {
    STOP.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use super::STOP;
    use std::sync::atomic::Ordering;

    // Declared by hand: the workspace builds offline, so no libc crate.
    // `signal(2)` is in every libc this repo can run on.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe; `signal` itself is just a handler swap.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

/// Installs the SIGINT/SIGTERM handler (idempotent) and returns the flag.
/// On non-Unix targets this is just [`stop_flag`].
pub fn install() -> &'static AtomicBool {
    #[cfg(unix)]
    unix::install();
    &STOP
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stop_raises_the_flag() {
        assert!(!stop_flag().load(Ordering::SeqCst));
        request_stop();
        assert!(stop_flag().load(Ordering::SeqCst));
        // Reset for other tests in this process.
        STOP.store(false, Ordering::SeqCst);
    }
}
