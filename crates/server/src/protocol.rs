//! The wire protocol: length-prefixed JSON frames with typed messages.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. The same codec runs over TCP (client ↔ server) and
//! over stdio (farm coordinator ↔ worker process). Framing failures are
//! typed ([`FrameError`]) so a malformed, truncated or oversized frame
//! drops the offending connection — never the process.

use microsim::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use sora_bench::ScenarioError;
use sora_core::ControllerStatus;
use std::io::{ErrorKind, Read, Write};

/// Hard cap on a frame's payload length. Large enough for the result JSON
/// of the paper's full 12-minute runs (a few MiB), small enough that a
/// corrupt length prefix cannot trigger a multi-GiB allocation.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the stream cleanly, at a frame boundary.
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The stream failed or ended mid-frame.
    Io {
        /// The transport error.
        message: String,
    },
    /// The payload is not UTF-8 JSON of the expected shape.
    Json {
        /// The decoder's message.
        message: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            FrameError::Io { message } => write!(f, "frame transport error: {message}"),
            FrameError::Json { message } => write!(f, "frame decode error: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: big-endian length, then the compact JSON payload.
pub fn write_frame<W: Write, T: Serialize + ?Sized>(
    w: &mut W,
    value: &T,
) -> Result<(), FrameError> {
    let text = serde_json::to_string(value).map_err(|e| FrameError::Json {
        message: e.to_string(),
    })?;
    let bytes = text.as_bytes();
    if bytes.len() > MAX_FRAME_LEN as usize {
        return Err(FrameError::Oversized {
            len: bytes.len().min(u32::MAX as usize) as u32,
        });
    }
    let io = |e: std::io::Error| FrameError::Io {
        message: e.to_string(),
    };
    w.write_all(&(bytes.len() as u32).to_be_bytes())
        .map_err(io)?;
    w.write_all(bytes).map_err(io)?;
    w.flush().map_err(io)?;
    Ok(())
}

/// Reads one frame and decodes it as `T`.
///
/// EOF before the first prefix byte is a clean [`FrameError::Closed`]; EOF
/// anywhere inside a frame is [`FrameError::Io`]. A length prefix above
/// [`MAX_FRAME_LEN`] is rejected before any allocation.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<T, FrameError> {
    let io = |e: &std::io::Error| FrameError::Io {
        message: e.to_string(),
    };
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io {
                    message: "stream ended inside a frame length prefix".to_string(),
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io(&e)),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            FrameError::Io {
                message: "stream ended inside a frame payload".to_string(),
            }
        } else {
            io(&e)
        }
    })?;
    let text = String::from_utf8(payload).map_err(|_| FrameError::Json {
        message: "frame payload is not UTF-8".to_string(),
    })?;
    serde_json::from_str(&text).map_err(|e| FrameError::Json {
        message: e.to_string(),
    })
}

/// Everything a client (or the farm coordinator) can ask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Run a scenario to completion and return its canonical result JSON.
    Submit {
        /// The scenario config text (the `run_scenario` JSON schema).
        scenario: String,
    },
    /// Start a live session on this connection (one per connection).
    Init {
        /// The scenario config text.
        scenario: String,
    },
    /// Advance the live session's workload clock to this simulated second.
    /// With a subscription active, `Telemetry` frames stream out before the
    /// final `Stepped` reply.
    StepUntil {
        /// Target simulated time in seconds.
        t_secs: f64,
    },
    /// Ask for the live session's workload clock.
    Time,
    /// Ask for a full status frame (clock, telemetry, controller state).
    Status,
    /// Stream a `Telemetry` frame every `period_secs` of simulated time
    /// during subsequent `StepUntil` requests.
    Subscribe {
        /// Streaming period in simulated seconds (must be positive).
        period_secs: f64,
    },
    /// Complete the live session: run the remaining trace, drain, and
    /// return the canonical result JSON.
    Finish,
    /// Abandon the live session without producing results.
    Halt,
    /// Stop the whole server (all connections).
    Shutdown,
}

/// A point-in-time telemetry frame streamed between simulation steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryFrame {
    /// The workload clock in simulated seconds.
    pub now_secs: f64,
    /// World counters; the completion window covers the span since the
    /// previous frame.
    pub snapshot: TelemetrySnapshot,
    /// The controller stack's self-reported state.
    pub controller: ControllerStatus,
}

/// A live session's full status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStatus {
    /// The session's content-addressed cache key.
    pub key: String,
    /// The workload clock in simulated seconds.
    pub now_secs: f64,
    /// Whether the trace has ended (only `Finish` remains).
    pub workload_done: bool,
    /// Gauge samples recorded so far.
    pub samples: u64,
    /// The controller stack's self-reported state.
    pub controller: ControllerStatus,
    /// World counters (window since the last streamed frame).
    pub snapshot: TelemetrySnapshot,
}

/// Why the server rejected a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ServerError {
    /// The scenario config was rejected (typed parse/validation error).
    Scenario {
        /// The underlying scenario error.
        error: ScenarioError,
    },
    /// The request is invalid in the connection's current state.
    BadRequest {
        /// What went wrong.
        message: String,
    },
    /// A farm worker failed.
    Worker {
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Scenario { error } => write!(f, "scenario rejected: {error}"),
            ServerError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServerError::Worker { message } => write!(f, "worker failed: {message}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Everything the server answers with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Reply {
    /// Liveness answer.
    Pong,
    /// The canonical result JSON of a completed run.
    Result {
        /// The run's content-addressed cache key.
        key: String,
        /// The result JSON text (byte-identical to the in-process run).
        text: String,
    },
    /// A live session is ready.
    Inited {
        /// The session's content-addressed cache key.
        key: String,
    },
    /// A `StepUntil` completed.
    Stepped {
        /// The workload clock after stepping (may overshoot the target by
        /// up to one workload action).
        now_secs: f64,
        /// Whether the trace has ended.
        workload_done: bool,
    },
    /// A streamed telemetry frame (precedes `Stepped` under subscription).
    Telemetry {
        /// The frame.
        frame: TelemetryFrame,
    },
    /// Answer to `Time`.
    TimeIs {
        /// The workload clock in simulated seconds.
        now_secs: f64,
    },
    /// Answer to `Status`.
    StatusIs {
        /// The session status.
        status: SessionStatus,
    },
    /// A subscription is active.
    Subscribed,
    /// The live session was abandoned.
    Halted,
    /// The server is shutting down.
    ShuttingDown,
    /// The request failed.
    Error {
        /// Why.
        error: ServerError,
    },
}
