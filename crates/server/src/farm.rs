//! The sweep farm: scenario runs fanned across worker *processes*.
//!
//! The coordinator parses every scenario up front (a typed
//! [`ScenarioError`] aborts the whole sweep before any work starts),
//! derives each run's content-addressed key, satisfies what it can from
//! the [`ResultCache`], and fans the remaining runs across worker
//! processes via [`Sweep::run_ctx`] — one long-lived worker process per
//! pool thread, speaking the same length-prefixed protocol over stdio
//! that the TCP server speaks. Every completed result is flushed to the
//! cache the moment it lands, so a farm killed mid-sweep (SIGINT, OOM,
//! power) leaves a cache that *is* the resume state: rerunning the same
//! command skips the finished runs as hits and computes only the rest.

use crate::cache::ResultCache;
use crate::canon::{cache_key, ENGINE_FINGERPRINT};
use crate::protocol::{read_frame, write_frame, Reply, Request};
use serde_json::{json, Value};
use sora_bench::{ctx_job, ScenarioError, ScenarioSpec, Sweep};
use std::io::BufReader;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};

/// How the farm runs.
pub struct FarmConfig {
    /// Worker processes to fan across.
    pub workers: usize,
    /// The result cache (also where the manifest lives).
    pub cache: ResultCache,
    /// Command line of a worker process (argv; must speak the stdio
    /// protocol, i.e. `sora-server worker`).
    pub worker_cmd: Vec<String>,
}

/// What happened to one scenario of a farm sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryStatus {
    /// Served from the cache without running anything.
    Hit,
    /// Computed by a worker this sweep (and flushed to the cache).
    Computed,
    /// Never executed: the farm was interrupted first.
    Skipped,
    /// The worker rejected or failed the run.
    Failed(String),
}

impl EntryStatus {
    /// The manifest spelling of this status.
    pub fn as_str(&self) -> &'static str {
        match self {
            EntryStatus::Hit => "hit",
            EntryStatus::Computed => "computed",
            EntryStatus::Skipped => "skipped",
            EntryStatus::Failed(_) => "failed",
        }
    }
}

/// One scenario's ledger line in a [`FarmOutcome`].
#[derive(Debug, Clone)]
pub struct FarmEntry {
    /// The scenario's label (its file name, for CLI sweeps).
    pub label: String,
    /// The scenario's content-addressed cache key.
    pub key: String,
    /// What happened.
    pub status: EntryStatus,
}

/// The ledger of a farm sweep, in submission order.
#[derive(Debug, Clone)]
pub struct FarmOutcome {
    /// Scenarios submitted.
    pub total: usize,
    /// Scenarios whose results exist in the cache now (hits + computed).
    pub completed: usize,
    /// Scenarios served from the cache without running.
    pub cache_hits: usize,
    /// Whether the sweep was cut short by the stop flag.
    pub interrupted: bool,
    /// Per-scenario outcomes, in submission order.
    pub entries: Vec<FarmEntry>,
}

/// A worker process handle: the child plus its framed stdio channel.
///
/// Dropping the handle shuts the worker down: a best-effort `Shutdown`
/// frame, then stdin closes (the worker exits on EOF), then `wait` reaps
/// the child.
struct WorkerHandle {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

impl WorkerHandle {
    fn spawn(cmd: &[String]) -> Result<WorkerHandle, String> {
        let (prog, args) = cmd.split_first().ok_or("empty worker command")?;
        let mut child = Command::new(prog)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawning worker `{prog}`: {e}"))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout was piped"));
        Ok(WorkerHandle {
            child,
            stdin: Some(stdin),
            stdout,
        })
    }

    /// Runs one scenario on the worker, returning `(key, result_text)`.
    fn submit(&mut self, scenario: &str) -> Result<(String, String), String> {
        let stdin = self.stdin.as_mut().ok_or("worker stdin closed")?;
        write_frame(
            stdin,
            &Request::Submit {
                scenario: scenario.to_string(),
            },
        )
        .map_err(|e| format!("sending to worker: {e}"))?;
        match read_frame::<_, Reply>(&mut self.stdout) {
            Ok(Reply::Result { key, text }) => Ok((key, text)),
            Ok(Reply::Error { error }) => Err(error.to_string()),
            Ok(other) => Err(format!("unexpected worker reply: {other:?}")),
            Err(e) => Err(format!("reading from worker: {e}")),
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        if let Some(mut stdin) = self.stdin.take() {
            let _ = write_frame(&mut stdin, &Request::Shutdown);
            // Dropping stdin here closes the pipe; the worker exits on EOF
            // even if it never understood the Shutdown frame.
        }
        let _ = self.child.wait();
    }
}

/// A pool context: one worker process, spawned lazily on first use so a
/// fully-cached sweep never forks anything, and respawned after a failure
/// so one crashed worker does not poison the rest of the sweep.
struct WorkerCtx {
    cmd: Vec<String>,
    handle: Option<WorkerHandle>,
}

impl WorkerCtx {
    fn submit(&mut self, scenario: &str) -> Result<(String, String), String> {
        if self.handle.is_none() {
            self.handle = Some(WorkerHandle::spawn(&self.cmd)?);
        }
        let result = self.handle.as_mut().expect("just spawned").submit(scenario);
        if result.is_err() {
            // The channel is in an unknown state; respawn for the next run.
            self.handle = None;
        }
        result
    }
}

/// Runs a farm sweep over `scenarios` (label, config-text pairs).
///
/// Any scenario that fails to parse aborts the sweep with its typed error
/// before any run starts. Raising `stop` (SIGINT does this via
/// [`crate::signals`]) lets in-flight runs finish, flushes their results,
/// and marks the rest [`EntryStatus::Skipped`]; the cache left behind is
/// the resume manifest.
pub fn run_farm(
    scenarios: Vec<(String, String)>,
    cfg: &FarmConfig,
    stop: &AtomicBool,
) -> Result<FarmOutcome, ScenarioError> {
    // Parse everything first: a sweep with a typo runs nothing.
    let mut parsed: Vec<(String, String, ScenarioSpec)> = Vec::with_capacity(scenarios.len());
    for (label, text) in scenarios {
        let spec = ScenarioSpec::parse(&text)?;
        let key = cache_key(&spec);
        parsed.push((label, key, spec));
    }
    let total = parsed.len();

    // Triage against the cache.
    let mut entries: Vec<FarmEntry> = Vec::with_capacity(total);
    let mut misses: Vec<usize> = Vec::new();
    for (i, (label, key, _spec)) in parsed.iter().enumerate() {
        let status = if cfg.cache.lookup(key).is_some() {
            EntryStatus::Hit
        } else {
            misses.push(i);
            EntryStatus::Skipped // placeholder until the run reports back
        };
        entries.push(FarmEntry {
            label: label.clone(),
            key: key.clone(),
            status,
        });
    }
    write_manifest(&cfg.cache, &entries, true);

    // Fan the misses across worker processes; each completed result is
    // flushed to the cache inside its job, before the pool moves on.
    let jobs = misses
        .iter()
        .map(|&i| {
            let (label, key, spec) = &parsed[i];
            let text = serde_json::to_string(spec).expect("spec reserializes");
            let cache = cfg.cache.clone();
            let key = key.clone();
            ctx_job(label.clone(), move |ctx: &mut WorkerCtx| {
                let (worker_key, result) = ctx.submit(&text)?;
                if worker_key != key {
                    return Err(format!(
                        "worker derived key {worker_key}, coordinator expected {key}"
                    ));
                }
                cache
                    .store(&key, &result)
                    .map_err(|e| format!("flushing result: {e}"))?;
                Ok::<(), String>(())
            })
        })
        .collect();
    let outcome = Sweep::with_jobs(cfg.workers).run_ctx(
        |_worker| WorkerCtx {
            cmd: cfg.worker_cmd.clone(),
            handle: None,
        },
        Some(stop),
        jobs,
    );

    for (slot, &i) in outcome.results.iter().zip(&misses) {
        entries[i].status = match slot {
            Some((Ok(()), _stat)) => EntryStatus::Computed,
            Some((Err(message), _stat)) => EntryStatus::Failed(message.clone()),
            None => EntryStatus::Skipped,
        };
    }

    let cache_hits = entries
        .iter()
        .filter(|e| e.status == EntryStatus::Hit)
        .count();
    let completed = entries
        .iter()
        .filter(|e| matches!(e.status, EntryStatus::Hit | EntryStatus::Computed))
        .count();
    let interrupted =
        stop.load(Ordering::SeqCst) || entries.iter().any(|e| e.status == EntryStatus::Skipped);
    write_manifest(&cfg.cache, &entries, false);

    Ok(FarmOutcome {
        total,
        completed,
        cache_hits,
        interrupted,
        entries,
    })
}

/// Writes the human-auditable sweep manifest next to the cached results.
/// Purely informational (and therefore best-effort): resume reads the
/// cache entries themselves, which are atomic and always trustworthy.
fn write_manifest(cache: &ResultCache, entries: &[FarmEntry], in_progress: bool) {
    let rows: Vec<Value> = entries
        .iter()
        .map(|e| {
            json!({
                "label": e.label,
                "key": e.key,
                "status": if in_progress && e.status == EntryStatus::Skipped {
                    "pending"
                } else {
                    e.status.as_str()
                },
            })
        })
        .collect();
    let manifest = json!({
        "engine": ENGINE_FINGERPRINT,
        "in_progress": in_progress,
        "entries": rows,
    });
    let text = serde_json::to_string_pretty(&manifest).expect("manifest serializes");
    if let Err(e) = std::fs::write(cache.dir().join("manifest.json"), text) {
        eprintln!("[farm] could not write manifest: {e}");
    }
}
