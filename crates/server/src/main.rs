//! `sora-server`: the simulation-as-a-service CLI.
//!
//! One binary, several roles:
//!
//! * `serve`     — TCP control plane hosting submissions and live sessions
//! * `worker`    — stdio worker process for the sweep farm
//! * `sweep`     — farm coordinator: fan scenarios across workers, cached
//! * `submit`    — client: run one scenario on a server, print its result
//! * `run-local` — run one scenario in-process, print its result (the
//!   byte-diff baseline for everything above)
//! * `canon-key` — print a scenario's content-addressed cache key
//! * `ping`      — client liveness probe

use sora_server::{
    cache_key, read_frame, run_farm, serve, worker_loop, write_frame, EntryStatus, FarmConfig,
    Reply, Request, ResultCache, ScenarioSpec,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: sora-server <mode> [options]\n\
         \n\
         modes:\n\
         \x20 serve --addr HOST:PORT [--cache DIR]   run the TCP control plane\n\
         \x20 worker                                 stdio worker (spawned by sweep)\n\
         \x20 sweep --cache DIR [--workers N] FILE...\n\
         \x20                                        run scenarios on a worker farm\n\
         \x20 submit --addr HOST:PORT FILE           run one scenario on a server\n\
         \x20 run-local FILE                         run one scenario in-process\n\
         \x20 canon-key FILE                         print a scenario's cache key\n\
         \x20 ping --addr HOST:PORT                  liveness probe"
    );
    exit(2)
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("sora-server: {message}");
    exit(2)
}

/// Splits argv into `--flag value` pairs and positionals.
fn parse_args(args: &[String]) -> (Vec<(String, String)>, Vec<String>) {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let Some(value) = args.get(i + 1) else {
                fail(format!("--{name} needs a value"));
            };
            flags.push((name.to_string(), value.clone()));
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn read_scenario(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail(format!("reading {path}: {e}")),
    }
}

fn parse_scenario(path: &str) -> ScenarioSpec {
    match ScenarioSpec::parse(&read_scenario(path)) {
        Ok(spec) => spec,
        Err(e) => fail(format!("{path}: {e}")),
    }
}

fn print_result(text: &str) {
    let mut out = std::io::stdout();
    out.write_all(text.as_bytes())
        .and_then(|()| out.flush())
        .unwrap_or_else(|e| fail(format!("writing result: {e}")));
}

fn mode_serve(flags: &[(String, String)]) {
    let addr = flag(flags, "addr").unwrap_or("127.0.0.1:7070");
    let cache = flag(flags, "cache").map(|dir| {
        ResultCache::open(dir).unwrap_or_else(|e| fail(format!("opening cache {dir}: {e}")))
    });
    let stop = sora_server::install_signal_handlers();
    let listener = TcpListener::bind(addr).unwrap_or_else(|e| fail(format!("binding {addr}: {e}")));
    let local = listener.local_addr().map(|a| a.to_string());
    eprintln!("[serve] listening on {}", local.as_deref().unwrap_or(addr));
    if let Err(e) = serve(listener, cache, stop) {
        fail(format!("serving: {e}"));
    }
}

fn mode_sweep(flags: &[(String, String)], files: &[String]) -> ! {
    if files.is_empty() {
        fail("sweep needs at least one scenario file");
    }
    let Some(cache_dir) = flag(flags, "cache") else {
        fail("sweep needs --cache DIR (the cache is also the resume state)");
    };
    let workers = match flag(flags, "workers") {
        None => 1,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(format!("--workers {v} is not a number"))),
    };
    let cache = ResultCache::open(cache_dir)
        .unwrap_or_else(|e| fail(format!("opening cache {cache_dir}: {e}")));
    let me = std::env::current_exe()
        .unwrap_or_else(|e| fail(format!("locating own binary: {e}")))
        .to_string_lossy()
        .into_owned();
    let cfg = FarmConfig {
        workers,
        cache,
        worker_cmd: vec![me, "worker".to_string()],
    };
    let scenarios: Vec<(String, String)> = files
        .iter()
        .map(|path| (path.clone(), read_scenario(path)))
        .collect();
    let stop = sora_server::install_signal_handlers();
    let outcome = match run_farm(scenarios, &cfg, stop) {
        Ok(outcome) => outcome,
        Err(e) => fail(e),
    };
    let mut failed = false;
    for entry in &outcome.entries {
        println!(
            "{}  {:>8}  {}",
            entry.key,
            entry.status.as_str(),
            entry.label
        );
        if let EntryStatus::Failed(message) = &entry.status {
            eprintln!("[farm] {} failed: {message}", entry.label);
            failed = true;
        }
    }
    println!(
        "farm: total={} completed={} cache_hits={} interrupted={}",
        outcome.total, outcome.completed, outcome.cache_hits, outcome.interrupted
    );
    if outcome.interrupted {
        exit(130);
    }
    exit(if failed { 1 } else { 0 })
}

fn connect(flags: &[(String, String)]) -> TcpStream {
    let Some(addr) = flag(flags, "addr") else {
        fail("this mode needs --addr HOST:PORT");
    };
    TcpStream::connect(addr).unwrap_or_else(|e| fail(format!("connecting to {addr}: {e}")))
}

fn mode_submit(flags: &[(String, String)], files: &[String]) -> ! {
    let [path] = files else {
        fail("submit needs exactly one scenario file");
    };
    let scenario = read_scenario(path);
    let mut stream = connect(flags);
    write_frame(&mut stream, &Request::Submit { scenario })
        .unwrap_or_else(|e| fail(format!("sending submission: {e}")));
    match read_frame::<_, Reply>(&mut stream) {
        Ok(Reply::Result { text, .. }) => {
            print_result(&text);
            exit(0)
        }
        Ok(Reply::Error { error }) => fail(error),
        Ok(other) => fail(format!("unexpected reply: {other:?}")),
        Err(e) => fail(format!("reading reply: {e}")),
    }
}

fn mode_ping(flags: &[(String, String)]) -> ! {
    let mut stream = connect(flags);
    write_frame(&mut stream, &Request::Ping).unwrap_or_else(|e| fail(format!("pinging: {e}")));
    match read_frame::<_, Reply>(&mut stream) {
        Ok(Reply::Pong) => {
            println!("pong");
            exit(0)
        }
        Ok(other) => fail(format!("unexpected reply: {other:?}")),
        Err(e) => fail(format!("reading reply: {e}")),
    }
}

fn mode_run_local(files: &[String]) -> ! {
    let [path] = files else {
        fail("run-local needs exactly one scenario file");
    };
    let spec = parse_scenario(path);
    let outcome = spec.run();
    print_result(&sora_server::scenario_result_text(&spec, &outcome));
    exit(0)
}

fn mode_canon_key(files: &[String]) -> ! {
    let [path] = files else {
        fail("canon-key needs exactly one scenario file");
    };
    println!("{}", cache_key(&parse_scenario(path)));
    exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((mode, rest)) = args.split_first() else {
        usage();
    };
    let (flags, positional) = parse_args(rest);
    match mode.as_str() {
        "serve" => mode_serve(&flags),
        "worker" => worker_loop(),
        "sweep" => mode_sweep(&flags, &positional),
        "submit" => mode_submit(&flags, &positional),
        "run-local" => mode_run_local(&positional),
        "canon-key" => mode_canon_key(&positional),
        "ping" => mode_ping(&flags),
        _ => usage(),
    }
}
