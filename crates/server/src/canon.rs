//! Canonical scenario JSON and content-addressed cache keys.
//!
//! Two scenario files that *mean* the same thing must hit the same cache
//! entry, however they are spelled: key order, `800` vs `800.0`, omitted
//! fields vs explicit defaults vs explicit `null`s. The cache key is
//! therefore derived not from the file text but from the **parsed spec**,
//! re-serialized (which materialises every default) and canonicalized
//! (keys sorted, integral floats collapsed to integers), then hashed
//! together with the engine fingerprint so results produced by a different
//! engine version never alias.

use serde_json::{Map, Number, Value};
use sora_bench::ScenarioSpec;

/// Identifies the simulation engine that produced a cached result. Bumped
/// with the workspace version: any change that can alter simulation output
/// ships as a new version, which invalidates every prior cache entry.
pub const ENGINE_FINGERPRINT: &str = concat!("sora-sim/", env!("CARGO_PKG_VERSION"));

/// Recursively canonicalizes a JSON value: object keys sorted
/// lexicographically, and numbers normalised (a float with zero fractional
/// part becomes the equivalent integer, so `800.0` and `800` render
/// identically).
pub fn canonicalize(value: &Value) -> Value {
    match value {
        Value::Object(map) => {
            let mut entries: Vec<(&String, &Value)> = map.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            let mut out = Map::new();
            for (k, v) in entries {
                out.insert(k.clone(), canonicalize(v));
            }
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        Value::Number(n) => Value::Number(normalize_number(*n)),
        other => other.clone(),
    }
}

fn normalize_number(n: Number) -> Number {
    if let Some(i) = n.as_i64() {
        return if i >= 0 {
            Number::PosInt(i as u64)
        } else {
            Number::NegInt(i)
        };
    }
    if let Some(u) = n.as_u64() {
        return Number::PosInt(u);
    }
    n
}

/// The compact single-line rendering of [`canonicalize`]. Equal canonical
/// strings ⇔ semantically identical configs.
pub fn canonical_string(value: &Value) -> String {
    let mut out = String::new();
    canonicalize(value).write_compact(&mut out);
    out
}

/// FNV-1a 64 over `bytes` from a caller-chosen basis.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A 128-bit content hash as 32 hex characters: two FNV-1a 64 passes from
/// independent bases. Not cryptographic — it guards against accidental
/// collisions in a result cache, not adversaries.
pub fn content_hash(text: &str) -> String {
    let a = fnv1a(text.as_bytes(), 0xcbf2_9ce4_8422_2325);
    let b = fnv1a(text.as_bytes(), 0x9e37_79b9_7f4a_7c15);
    format!("{a:016x}{b:016x}")
}

/// The content-addressed cache key of a scenario: the hash of its
/// canonical re-serialized form plus [`ENGINE_FINGERPRINT`].
pub fn cache_key(spec: &ScenarioSpec) -> String {
    let value = serde_json::to_value(spec);
    let canon = canonical_string(&value);
    content_hash(&format!("{canon}\n{ENGINE_FINGERPRINT}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_string_sorts_keys_and_normalises_numbers() {
        let a = serde_json::parse(r#"{"b": 2.0, "a": {"y": [1.0, 2.5], "x": 3}}"#).unwrap();
        let b = serde_json::parse(r#"{"a": {"x": 3.0, "y": [1, 2.5]}, "b": 2}"#).unwrap();
        assert_eq!(canonical_string(&a), canonical_string(&b));
        assert_eq!(canonical_string(&a), r#"{"a":{"x":3,"y":[1,2.5]},"b":2}"#);
    }

    #[test]
    fn content_hash_is_stable_and_wide() {
        let h = content_hash("hello");
        assert_eq!(h.len(), 32);
        assert_eq!(h, content_hash("hello"));
        assert_ne!(h, content_hash("hello "));
    }

    /// The satellite regression: two textually different but semantically
    /// identical scenario files land on the same cache entry.
    #[test]
    fn equivalent_scenario_files_share_a_cache_key() {
        // Key order scrambled, float spelling of integers, defaults made
        // explicit (including `null` options) — all immaterial.
        let spelled_out = r#"{
            "seed": 7,
            "app": "sock_shop",
            "trace": "Steady",
            "sla_ms": 400,
            "duration_secs": 30,
            "max_users": 800.0,
            "hardware": "none",
            "soft": "none",
            "cart_threads": null,
            "cart_cores": null,
            "home_timeline_conns": null,
            "drift_at_secs": null
        }"#;
        let terse = r#"{"app":"sock_shop","trace":"Steady","max_users":800,
                        "duration_secs":30.0,"sla_ms":400,"seed":7}"#;
        let a = ScenarioSpec::parse(spelled_out).unwrap();
        let b = ScenarioSpec::parse(terse).unwrap();
        assert_eq!(cache_key(&a), cache_key(&b));

        // And a real difference must not alias.
        let other = ScenarioSpec::parse(
            r#"{"app":"sock_shop","trace":"Steady","max_users":800,
                "duration_secs":30,"sla_ms":400,"seed":8}"#,
        )
        .unwrap();
        assert_ne!(cache_key(&a), cache_key(&other));
    }

    #[test]
    fn cache_key_binds_the_engine_fingerprint() {
        let spec = ScenarioSpec::parse(
            r#"{"app":"sock_shop","trace":"Steady","max_users":10,
                "duration_secs":5,"sla_ms":400}"#,
        )
        .unwrap();
        let value = serde_json::to_value(&spec);
        let canon = canonical_string(&value);
        let with = content_hash(&format!("{canon}\n{ENGINE_FINGERPRINT}"));
        let without = content_hash(&canon);
        assert_eq!(cache_key(&spec), with);
        assert_ne!(with, without);
    }
}
