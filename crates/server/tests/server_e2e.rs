//! End-to-end service-plane tests: a real TCP server on loopback, real
//! worker processes under the farm, and the headline invariant throughout —
//! results over the wire are byte-identical to in-process runs.

use sora_server::{
    cache_key, read_frame, run_farm, scenario_result_text, serve, write_frame, EntryStatus,
    FarmConfig, Reply, Request, ResultCache, ScenarioError, ScenarioSpec, ServerError,
};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

const TINY_A: &str = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 100,
                         "duration_secs": 10, "sla_ms": 400, "seed": 21}"#;
const TINY_B: &str = r#"{"app": "sock_shop", "trace": "BigSpike", "max_users": 90,
                         "duration_secs": 10, "sla_ms": 400, "seed": 22}"#;
const TINY_C: &str = r#"{"app": "social_network", "trace": "Steady", "max_users": 80,
                         "duration_secs": 10, "sla_ms": 500, "seed": 23}"#;

fn in_process(text: &str) -> (String, String) {
    let spec = ScenarioSpec::parse(text).unwrap();
    let outcome = spec.run();
    (cache_key(&spec), scenario_result_text(&spec, &outcome))
}

/// Starts a server on an ephemeral loopback port with its own stop flag.
fn start_server(cache: Option<ResultCache>) -> (String, &'static AtomicBool) {
    let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || serve(listener, cache, stop).unwrap());
    (addr, stop)
}

struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        Client {
            stream: TcpStream::connect(addr).unwrap(),
        }
    }

    fn send(&mut self, request: &Request) {
        write_frame(&mut self.stream, request).unwrap();
    }

    fn recv(&mut self) -> Reply {
        read_frame(&mut self.stream).unwrap()
    }

    fn ask(&mut self, request: &Request) -> Reply {
        self.send(request);
        self.recv()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sora-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn ping_pong() {
    let (addr, stop) = start_server(None);
    let mut client = Client::connect(&addr);
    assert_eq!(client.ask(&Request::Ping), Reply::Pong);
    stop.store(true, Ordering::SeqCst);
}

#[test]
fn submit_over_the_wire_is_byte_identical_to_in_process() {
    let (expected_key, expected_text) = in_process(TINY_A);
    let (addr, stop) = start_server(None);
    let mut client = Client::connect(&addr);
    match client.ask(&Request::Submit {
        scenario: TINY_A.to_string(),
    }) {
        Reply::Result { key, text } => {
            assert_eq!(key, expected_key);
            assert_eq!(text, expected_text, "wire bytes != in-process bytes");
        }
        other => panic!("expected a result, got {other:?}"),
    }
    stop.store(true, Ordering::SeqCst);
}

/// A fuzz-shaped extended spec: generated topology, retry policy, and a
/// fault schedule — the feature set the scenario fuzzer composes. The
/// service plane must treat it like any other scenario: wire bytes equal
/// in-process bytes, and the canon cache key is spelling-independent.
const FAULTED: &str = r#"{"app": "generated", "trace": "BigSpike", "max_users": 60,
                          "duration_secs": 8, "sla_ms": 400, "seed": 31,
                          "services": 16, "topo_seed": 9,
                          "retry": {"max_retries": 2, "base_backoff_ms": 40},
                          "faults": [
                            {"crash": {"service": 3, "at_ms": 2000, "restart_after_ms": 800}},
                            {"telemetry_blackout": {"at_ms": 4000, "duration_ms": 500, "lag": true}}
                          ]}"#;

#[test]
fn fault_bearing_spec_round_trips_the_wire_and_canon_paths() {
    let (expected_key, expected_text) = in_process(FAULTED);
    // Canon key is stable across respellings: the spec's own canonical
    // emission (key order normalised, defaults omitted) shares the key.
    let spec = ScenarioSpec::parse(FAULTED).unwrap();
    let respelled = ScenarioSpec::parse(&spec.emit()).unwrap();
    assert_eq!(respelled, spec, "parse(emit(spec)) drifted");
    assert_eq!(cache_key(&respelled), expected_key);

    let (addr, stop) = start_server(None);
    let mut client = Client::connect(&addr);
    match client.ask(&Request::Submit {
        scenario: FAULTED.to_string(),
    }) {
        Reply::Result { key, text } => {
            assert_eq!(key, expected_key);
            assert_eq!(text, expected_text, "wire bytes != in-process bytes");
        }
        other => panic!("expected a result, got {other:?}"),
    }
    // The fault schedule actually ran: the result text carries the fault
    // log with both injected events.
    assert!(
        expected_text.contains("crash") && expected_text.contains("blackout"),
        "fault log missing from result text"
    );
    stop.store(true, Ordering::SeqCst);
}

#[test]
fn cached_submissions_return_the_same_bytes() {
    let dir = tmp_dir("submit-cache");
    let cache = ResultCache::open(&dir).unwrap();
    let (addr, stop) = start_server(Some(cache.clone()));
    let (_, expected_text) = in_process(TINY_B);

    let mut first = Client::connect(&addr);
    let Reply::Result { key, text } = first.ask(&Request::Submit {
        scenario: TINY_B.to_string(),
    }) else {
        panic!("expected a result");
    };
    assert_eq!(text, expected_text);
    assert_eq!(cache.lookup(&key).as_deref(), Some(expected_text.as_str()));

    // Second submission (fresh connection) is served from the cache —
    // still the same bytes.
    let mut second = Client::connect(&addr);
    let Reply::Result { text: cached, .. } = second.ask(&Request::Submit {
        scenario: TINY_B.to_string(),
    }) else {
        panic!("expected a result");
    };
    assert_eq!(cached, expected_text);

    stop.store(true, Ordering::SeqCst);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_session_lifecycle_streams_telemetry_and_finishes_byte_identical() {
    let (expected_key, expected_text) = in_process(TINY_C);
    let (addr, stop) = start_server(None);
    let mut client = Client::connect(&addr);

    let Reply::Inited { key } = client.ask(&Request::Init {
        scenario: TINY_C.to_string(),
    }) else {
        panic!("expected inited");
    };
    assert_eq!(key, expected_key);

    assert_eq!(
        client.ask(&Request::Subscribe { period_secs: 2.0 }),
        Reply::Subscribed
    );

    // Step in two uneven increments, collecting streamed telemetry until
    // the Stepped reply arrives.
    let mut frames = Vec::new();
    for target in [3.7, 11.0] {
        client.send(&Request::StepUntil { t_secs: target });
        loop {
            match client.recv() {
                Reply::Telemetry { frame } => frames.push(frame),
                Reply::Stepped {
                    now_secs,
                    workload_done,
                } => {
                    // The trace can end (10 s) before the target (11 s).
                    assert!(now_secs >= target || workload_done);
                    break;
                }
                other => panic!("expected telemetry or stepped, got {other:?}"),
            }
        }
    }
    assert!(frames.len() >= 4, "2s cadence over 10s: {}", frames.len());
    for pair in frames.windows(2) {
        assert!(pair[1].now_secs >= pair[0].now_secs);
        assert!(pair[1].snapshot.completed >= pair[0].snapshot.completed);
    }

    let Reply::TimeIs { now_secs } = client.ask(&Request::Time) else {
        panic!("expected time");
    };
    assert!(now_secs >= 10.0);
    let Reply::StatusIs { status } = client.ask(&Request::Status) else {
        panic!("expected status");
    };
    assert_eq!(status.key, expected_key);
    assert!(status.snapshot.completed > 0);

    let Reply::Result { key, text } = client.ask(&Request::Finish) else {
        panic!("expected the final result");
    };
    assert_eq!(key, expected_key);
    assert_eq!(
        text, expected_text,
        "stepped wire bytes != in-process bytes"
    );

    stop.store(true, Ordering::SeqCst);
}

#[test]
fn protocol_errors_are_typed_and_do_not_kill_the_connection() {
    let (addr, stop) = start_server(None);
    let mut client = Client::connect(&addr);

    // Scenario parse failures carry the typed scenario error.
    match client.ask(&Request::Submit {
        scenario: r#"{"app": "sock_shop", "max_user": 5}"#.to_string(),
    }) {
        Reply::Error {
            error: ServerError::Scenario { error },
        } => assert_eq!(
            error,
            ScenarioError::UnknownField {
                field: "max_user".to_string()
            }
        ),
        other => panic!("expected a typed scenario error, got {other:?}"),
    }

    // Session requests without a session are bad requests...
    for request in [
        Request::StepUntil { t_secs: 5.0 },
        Request::Time,
        Request::Status,
        Request::Finish,
        Request::Subscribe { period_secs: 1.0 },
    ] {
        match client.ask(&request) {
            Reply::Error {
                error: ServerError::BadRequest { .. },
            } => {}
            other => panic!("{request:?}: expected bad request, got {other:?}"),
        }
    }

    // ...and invalid arguments are rejected even with a session live.
    let Reply::Inited { .. } = client.ask(&Request::Init {
        scenario: TINY_A.to_string(),
    }) else {
        panic!("expected inited");
    };
    for request in [
        Request::Subscribe { period_secs: 0.0 },
        Request::StepUntil { t_secs: -1.0 },
        Request::StepUntil {
            t_secs: f64::INFINITY,
        },
    ] {
        match client.ask(&request) {
            Reply::Error {
                error: ServerError::BadRequest { .. },
            } => {}
            other => panic!("{request:?}: expected bad request, got {other:?}"),
        }
    }

    // The connection survived all of it.
    assert_eq!(client.ask(&Request::Ping), Reply::Pong);
    stop.store(true, Ordering::SeqCst);
}

fn farm_config(dir: &PathBuf, workers: usize) -> FarmConfig {
    FarmConfig {
        workers,
        cache: ResultCache::open(dir).unwrap(),
        worker_cmd: vec![
            env!("CARGO_BIN_EXE_sora-server").to_string(),
            "worker".to_string(),
        ],
    }
}

fn farm_scenarios() -> Vec<(String, String)> {
    vec![
        ("a".to_string(), TINY_A.to_string()),
        ("b".to_string(), TINY_B.to_string()),
        ("c".to_string(), TINY_C.to_string()),
    ]
}

#[test]
fn farm_computes_across_worker_processes_then_resumes_from_cache() {
    let dir = tmp_dir("farm");
    let stop = AtomicBool::new(false);

    // First sweep: everything is computed by spawned worker processes.
    let cfg = farm_config(&dir, 2);
    let first = run_farm(farm_scenarios(), &cfg, &stop).unwrap();
    assert_eq!(first.total, 3);
    assert_eq!(first.completed, 3);
    assert_eq!(first.cache_hits, 0);
    assert!(!first.interrupted);
    assert!(first
        .entries
        .iter()
        .all(|e| e.status == EntryStatus::Computed));

    // Worker-produced cache entries are byte-identical to in-process runs.
    for text in [TINY_A, TINY_B, TINY_C] {
        let (key, expected) = in_process(text);
        assert_eq!(
            cfg.cache.lookup(&key).as_deref(),
            Some(expected.as_str()),
            "farm bytes != in-process bytes for key {key}"
        );
    }

    // Second sweep over the same cache: pure hits, no workers spawned.
    let second = run_farm(farm_scenarios(), &cfg, &stop).unwrap();
    assert_eq!(second.completed, 3);
    assert_eq!(second.cache_hits, 3);
    assert!(second.entries.iter().all(|e| e.status == EntryStatus::Hit));
    assert!(!second.interrupted);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_farm_reports_skips_and_resumes_cleanly() {
    let dir = tmp_dir("farm-interrupt");

    // A stop flag raised before the sweep starts: nothing runs, everything
    // is skipped, and the outcome says so.
    let cfg = farm_config(&dir, 2);
    let stop = AtomicBool::new(true);
    let halted = run_farm(farm_scenarios(), &cfg, &stop).unwrap();
    assert_eq!(halted.completed, 0);
    assert!(halted.interrupted);
    assert!(halted
        .entries
        .iter()
        .all(|e| e.status == EntryStatus::Skipped));

    // Resume with the flag lowered: the same command completes the sweep.
    let stop = AtomicBool::new(false);
    let resumed = run_farm(farm_scenarios(), &cfg, &stop).unwrap();
    assert_eq!(resumed.completed, 3);
    assert!(!resumed.interrupted);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn farm_rejects_a_bad_scenario_before_running_anything() {
    let dir = tmp_dir("farm-badspec");
    let cfg = farm_config(&dir, 2);
    let stop = AtomicBool::new(false);
    let scenarios = vec![
        ("good".to_string(), TINY_A.to_string()),
        (
            "bad".to_string(),
            r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10,
                "duration_secs": 30, "sla_ms": 400, "drift_at_secs": 30}"#
                .to_string(),
        ),
    ];
    let err = run_farm(scenarios, &cfg, &stop).unwrap_err();
    assert_eq!(
        err,
        ScenarioError::InvertedWindow {
            drift_at_secs: 30,
            duration_secs: 30
        }
    );
    // Nothing ran: the cache holds no results.
    assert_eq!(cfg.cache.stored(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
