//! Wire-protocol conformance: every message round-trips, and no byte
//! stream — however truncated, corrupt or oversized — can panic the frame
//! reader. A satellite requirement of the service-plane issue.

use microsim::{DropBreakdown, TelemetrySnapshot};
use proptest::prelude::*;
use sora_core::ControllerStatus;
use sora_server::{
    read_frame, write_frame, FrameError, Reply, Request, ScenarioError, ServerError, SessionStatus,
    TelemetryFrame, MAX_FRAME_LEN,
};
use std::io::Cursor;

fn round_trip_request(request: Request) {
    let mut buf = Vec::new();
    write_frame(&mut buf, &request).unwrap();
    let back: Request = read_frame(&mut Cursor::new(&buf)).unwrap();
    assert_eq!(back, request);
}

fn round_trip_reply(reply: Reply) {
    let mut buf = Vec::new();
    write_frame(&mut buf, &reply).unwrap();
    let back: Reply = read_frame(&mut Cursor::new(&buf)).unwrap();
    assert_eq!(back, reply);
}

fn sample_snapshot() -> TelemetrySnapshot {
    TelemetrySnapshot {
        now_nanos: 12_500_000_000,
        completed: 420,
        dropped: 7,
        in_flight: 33,
        events_dispatched: 90_120,
        window_completed: 96,
        window_good: 88,
        drop_breakdown: DropBreakdown {
            refused: 3,
            replica_failed: 1,
            client_timeout: 2,
            retries_exhausted: 1,
            net_lost: 0,
            net_timed_out: 0,
        },
    }
}

fn sample_status() -> SessionStatus {
    SessionStatus {
        key: "00112233445566778899aabbccddeeff".to_string(),
        now_secs: 12.5,
        workload_done: false,
        samples: 125,
        controller: ControllerStatus::named("adaptive"),
        snapshot: sample_snapshot(),
    }
}

#[test]
fn every_request_variant_round_trips() {
    for request in [
        Request::Ping,
        Request::Submit {
            scenario: "{\"app\": \"sock_shop\"}".to_string(),
        },
        Request::Init {
            scenario: "{}".to_string(),
        },
        Request::StepUntil { t_secs: 42.25 },
        Request::Time,
        Request::Status,
        Request::Subscribe { period_secs: 0.5 },
        Request::Finish,
        Request::Halt,
        Request::Shutdown,
    ] {
        round_trip_request(request);
    }
}

#[test]
fn every_reply_variant_round_trips() {
    for reply in [
        Reply::Pong,
        Reply::Result {
            key: "abc123".to_string(),
            text: "{\n  \"summary\": {}\n}".to_string(),
        },
        Reply::Inited {
            key: "abc123".to_string(),
        },
        Reply::Stepped {
            now_secs: 30.0,
            workload_done: true,
        },
        Reply::Telemetry {
            frame: TelemetryFrame {
                now_secs: 12.5,
                snapshot: sample_snapshot(),
                controller: ControllerStatus::named("static"),
            },
        },
        Reply::TimeIs { now_secs: 0.0 },
        Reply::StatusIs {
            status: sample_status(),
        },
        Reply::Subscribed,
        Reply::Halted,
        Reply::ShuttingDown,
        Reply::Error {
            error: ServerError::Scenario {
                error: ScenarioError::UnknownField {
                    field: "max_user".to_string(),
                },
            },
        },
        Reply::Error {
            error: ServerError::Scenario {
                error: ScenarioError::InvertedWindow {
                    drift_at_secs: 30,
                    duration_secs: 30,
                },
            },
        },
        Reply::Error {
            error: ServerError::BadRequest {
                message: "no live session".to_string(),
            },
        },
        Reply::Error {
            error: ServerError::Worker {
                message: "worker died".to_string(),
            },
        },
    ] {
        round_trip_reply(reply);
    }
}

#[test]
fn empty_stream_reads_as_clean_close() {
    let err = read_frame::<_, Request>(&mut Cursor::new(Vec::new())).unwrap_err();
    assert_eq!(err, FrameError::Closed);
}

#[test]
fn truncated_length_prefix_is_a_transport_error() {
    for cut in 1..4 {
        let err = read_frame::<_, Request>(&mut Cursor::new(vec![0u8; cut])).unwrap_err();
        assert!(
            matches!(err, FrameError::Io { .. }),
            "prefix cut at {cut}: {err:?}"
        );
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // Claims a 4 GiB frame; must fail fast with Oversized, not OOM.
    let mut bytes = (u32::MAX).to_be_bytes().to_vec();
    bytes.extend_from_slice(b"ignored");
    let err = read_frame::<_, Request>(&mut Cursor::new(bytes)).unwrap_err();
    assert_eq!(err, FrameError::Oversized { len: u32::MAX });
}

#[test]
fn truncated_payload_is_a_transport_error() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &Request::Ping).unwrap();
    for cut in 5..buf.len() {
        let err = read_frame::<_, Request>(&mut Cursor::new(&buf[..cut])).unwrap_err();
        assert!(
            matches!(err, FrameError::Io { .. }),
            "payload cut at {cut}: {err:?}"
        );
    }
}

#[test]
fn garbage_payload_is_a_decode_error() {
    let payload = b"not json at all";
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(payload);
    let err = read_frame::<_, Request>(&mut Cursor::new(bytes)).unwrap_err();
    assert!(matches!(err, FrameError::Json { .. }), "{err:?}");
}

#[test]
fn non_utf8_payload_is_a_decode_error() {
    let payload = [0xFFu8, 0xFE, 0x80, 0x80];
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(&payload);
    let err = read_frame::<_, Request>(&mut Cursor::new(bytes)).unwrap_err();
    assert_eq!(
        err,
        FrameError::Json {
            message: "frame payload is not UTF-8".to_string()
        }
    );
}

#[test]
fn oversized_writes_are_refused() {
    let text = "x".repeat(MAX_FRAME_LEN as usize + 16);
    let err = write_frame(&mut Vec::new(), &Request::Submit { scenario: text }).unwrap_err();
    assert!(matches!(err, FrameError::Oversized { .. }), "{err:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup must produce `Ok` or a typed error — never a
    /// panic, never an attempt to allocate what a corrupt prefix claims.
    #[test]
    fn arbitrary_bytes_never_panic_the_reader(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let _ = read_frame::<_, Request>(&mut Cursor::new(&bytes));
    }

    /// A valid frame truncated at any point yields a typed error (or, cut
    /// exactly at zero, a clean close) — and an intact frame still decodes.
    #[test]
    fn truncated_valid_frames_fail_typed(cut_fraction in 0.0f64..1.0, t in 0.0f64..1e6) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::StepUntil { t_secs: t }).unwrap();
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        match read_frame::<_, Request>(&mut Cursor::new(&buf[..cut])) {
            Ok(_) => prop_assert_eq!(cut, buf.len()),
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0),
            Err(FrameError::Io { .. }) => prop_assert!(cut < buf.len()),
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
        }
        let back: Request = read_frame(&mut Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back, Request::StepUntil { t_secs: t });
    }

    /// A valid frame with one corrupted payload byte either still decodes
    /// (the byte may be inside a string) or fails with a typed JSON error.
    #[test]
    fn corrupted_payload_bytes_never_panic(flip in 0usize..128, with in 0u8..=255) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Submit {
            scenario: "{\"app\": \"sock_shop\", \"seed\": 7}".to_string(),
        }).unwrap();
        let i = 4 + flip % (buf.len() - 4); // corrupt payload, not the prefix
        buf[i] = with;
        match read_frame::<_, Request>(&mut Cursor::new(&buf)) {
            Ok(_) => {}
            Err(FrameError::Json { .. }) => {}
            // Corrupting a closing quote/brace can leave the decoder
            // starved mid-token only via length mismatch, which the frame
            // layer reports as a decode error too — anything else is a bug.
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
        }
    }
}

/// Wire-level screening of the engine-options `shards` knob (DESIGN §14):
/// a submission with an out-of-range shard count must come back over the
/// frame protocol as the *typed* `invalid_value` scenario error — not a
/// panic, not a stringly bad-request — and the error must survive the
/// round trip intact.
#[test]
fn submitted_out_of_range_shards_is_rejected_over_the_wire() {
    use sora_server::worker_loop_on;

    for (shards, expect_invalid) in [("0", true), ("65", true), ("-3", false)] {
        let scenario = format!(
            r#"{{"app": "sock_shop", "trace": "Steady", "max_users": 80.0,
                "duration_secs": 8, "sla_ms": 400, "shards": {shards}}}"#
        );
        let mut input = Vec::new();
        write_frame(&mut input, &Request::Submit { scenario }).unwrap();
        write_frame(&mut input, &Request::Shutdown).unwrap();
        let mut output = Vec::new();
        worker_loop_on(&mut Cursor::new(&input), &mut output);

        let mut cursor = Cursor::new(&output);
        let reply: Reply = read_frame(&mut cursor).unwrap();
        match reply {
            Reply::Error {
                error: ServerError::Scenario { error },
            } => {
                if expect_invalid {
                    match error {
                        ScenarioError::InvalidValue { field, .. } => {
                            assert_eq!(field, "shards", "shards={shards}")
                        }
                        other => panic!("shards={shards}: expected InvalidValue, got {other:?}"),
                    }
                } else {
                    assert!(
                        matches!(error, ScenarioError::BadField { .. }),
                        "shards={shards}: negative counts fail at the deserializer"
                    );
                }
            }
            other => panic!("shards={shards}: expected scenario rejection, got {other:?}"),
        }
    }
}

/// A valid `shards` value travels the wire and runs: the worker returns a
/// result whose serialized spec echoes the knob.
#[test]
fn submitted_valid_shards_runs_over_the_wire() {
    use sora_server::worker_loop_on;

    let scenario = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 80.0,
                       "duration_secs": 8, "sla_ms": 400, "seed": 3, "shards": 2}"#;
    let mut input = Vec::new();
    write_frame(
        &mut input,
        &Request::Submit {
            scenario: scenario.to_string(),
        },
    )
    .unwrap();
    write_frame(&mut input, &Request::Shutdown).unwrap();
    let mut output = Vec::new();
    worker_loop_on(&mut Cursor::new(&input), &mut output);

    let mut cursor = Cursor::new(&output);
    let reply: Reply = read_frame(&mut cursor).unwrap();
    match reply {
        Reply::Result { text, .. } => {
            assert!(text.contains("\"shards\": 2"), "result echoes the knob");
        }
        other => panic!("expected a result, got {other:?}"),
    }
}
