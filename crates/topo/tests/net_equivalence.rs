//! Byte-identity oracle: a world with a *transparent* network installed
//! (constant latency, zero loss, no partitions) must be indistinguishable —
//! completions, drops, span counts, and serialized traces — from the
//! function-edge engine with the same latency folded into `net_delay`.
//!
//! The function-edge engine is kept in-tree precisely to serve as this
//! oracle: the network substrate routes the same events through the same
//! queue, and its per-edge randomness lives on a split RNG stream whose
//! constant distributions draw nothing, so any divergence is a real bug in
//! the message-passing path, not tolerance noise.

use microsim::{Completion, WorldConfig};
use net::NetworkConfig;
use proptest::prelude::*;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use topo::{build, TopoParams};

/// Drives one world to quiescence under a deterministic injection schedule
/// derived from `params.seed`, returning everything observable.
fn run(
    params: &TopoParams,
    delay_us: u64,
    network: bool,
) -> (Vec<Completion>, u64, u64, u64, String) {
    let config = WorldConfig {
        net_delay: if network {
            // The network supplies the latency; the function-edge knob must
            // contribute nothing (and, being constant, draws nothing).
            Dist::constant_us(0)
        } else {
            Dist::constant_us(delay_us)
        },
        replica_startup: Dist::constant_us(0),
        ..WorldConfig::default()
    };
    let mut t = build(params, config, SimRng::seed_from(params.seed ^ 0x5eed));
    if network {
        t.world
            .install_network(NetworkConfig::constant_latency(SimDuration::from_micros(
                delay_us,
            )));
    }
    let mut sched = SimRng::seed_from(params.seed).split("inject");
    let mut at = 0u64;
    for i in 0..40u64 {
        at += 1 + (sched.f64() * 9.0) as u64;
        let rt = t.request_types[(i % params.request_types as u64) as usize];
        t.world.inject_at(SimTime::from_millis(at), rt);
    }
    let done = t.world.run_until(SimTime::from_secs(120));
    let traces = serde_json::to_string(&t.world.warehouse().iter().collect::<Vec<_>>())
        .expect("traces serialize");
    (
        done,
        t.world.dropped(),
        t.world.spans_created(),
        t.world.events_dispatched(),
        traces,
    )
}

fn assert_equivalent(params: &TopoParams, delay_us: u64) {
    let (done_fn, dropped_fn, spans_fn, events_fn, traces_fn) = run(params, delay_us, false);
    let (done_net, dropped_net, spans_net, events_net, traces_net) = run(params, delay_us, true);
    assert!(!done_fn.is_empty(), "oracle run must complete requests");
    assert_eq!(done_fn, done_net, "completions diverge ({params:?})");
    assert_eq!(dropped_fn, dropped_net, "drops diverge ({params:?})");
    assert_eq!(spans_fn, spans_net, "span counts diverge ({params:?})");
    assert_eq!(events_fn, events_net, "event counts diverge ({params:?})");
    assert_eq!(traces_fn, traces_net, "traces diverge ({params:?})");
}

#[test]
fn sock_shop_preset_is_byte_identical_with_transparent_network() {
    assert_equivalent(&TopoParams::sock_shop_like(30), 0);
    assert_equivalent(&TopoParams::sock_shop_like(30), 200);
}

#[test]
fn client_timeouts_stay_byte_identical() {
    // Timeouts exercise the late-event path: most fire after their request
    // finished, and the network mode must process them identically.
    let params = TopoParams {
        timeout: Some(SimDuration::from_millis(40)),
        ..TopoParams::sock_shop_like(24)
    };
    assert_equivalent(&params, 150);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated topology, run under a transparent (constant-latency,
    /// lossless, partition-free) network, is byte-identical to the
    /// function-edge oracle.
    #[test]
    fn prop_transparent_network_matches_function_edge_oracle(
        services in 8usize..24,
        depth in 2usize..5,
        fanout in 1usize..3,
        request_types in 1usize..4,
        seed in 0u64..1_000,
        delay_pick in 0usize..3,
    ) {
        let delay_us = [0u64, 50, 200][delay_pick];
        let services = services.max(depth);
        let params = TopoParams {
            services,
            depth,
            fanout,
            request_types,
            timeout: None,
            seed,
        };
        assert_equivalent(&params, delay_us);
    }
}
