//! Shard-count equivalence oracle (DESIGN §14): for any generated
//! topology, shard plan and fault schedule, the sharded engine run at
//! `shards = 1` — the family's sequential oracle — must be byte-identical
//! to the same world run at `shards = N`: completion streams, drop logs
//! and breakdowns, span/event counters, fault logs and serialized traces.
//!
//! Conservative window execution guarantees this by construction: every
//! cross-shard interaction is a mailbox message applied at a deterministic
//! `(time, key)` barrier, so the partition is unobservable. Any divergence
//! found here is a real engine bug (a partition-dependent key, a missed
//! window, a merge-order slip), never tolerance noise.

use microsim::{BlackoutMode, Completion, DropReason, FaultSchedule, WorldConfig};
use proptest::prelude::*;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use telemetry::{RequestId, ServiceId};
use topo::{build, TopoParams};

use cluster::NodeId;

/// Everything observable from one run, in comparison-friendly form.
#[derive(Debug, PartialEq)]
struct Observed {
    completions: Vec<Completion>,
    dropped_log: Vec<(RequestId, DropReason)>,
    drop_breakdown: String,
    fault_log: Vec<(SimTime, String)>,
    spans: u64,
    events: u64,
    requests: u64,
    traces: String,
}

/// A generatable fault schedule: each component is optional so the space
/// covers fault-free runs, single faults and stacked windows.
#[derive(Debug, Clone, Copy)]
struct Faults {
    crash_service: Option<usize>,
    crash_at_ms: u64,
    restart_after_ms: Option<u64>,
    pressure: bool,
    blackout_lag: Option<bool>,
}

impl Faults {
    fn schedule(&self, services: usize) -> FaultSchedule {
        let mut s = FaultSchedule::new();
        if let Some(svc) = self.crash_service {
            s = s.crash(
                SimTime::from_millis(self.crash_at_ms),
                ServiceId((svc % services) as u32),
                self.restart_after_ms.map(SimDuration::from_millis),
            );
        }
        if self.pressure {
            s = s.cpu_pressure(
                SimTime::from_millis(self.crash_at_ms + 10),
                NodeId(0),
                0.5,
                SimDuration::from_millis(60),
            );
        }
        if let Some(lag) = self.blackout_lag {
            let mode = if lag {
                BlackoutMode::Lag
            } else {
                BlackoutMode::Drop
            };
            s = s.telemetry_blackout(
                SimTime::from_millis(self.crash_at_ms + 25),
                mode,
                SimDuration::from_millis(40),
            );
        }
        s
    }
}

/// Drives one sharded world to quiescence under a deterministic injection
/// schedule derived from `params.seed`.
fn run(params: &TopoParams, shards: usize, faults: Faults) -> Observed {
    let config = WorldConfig {
        replica_startup: Dist::constant_us(0),
        ..WorldConfig::default()
    };
    let mut t = build(params, config, SimRng::seed_from(params.seed ^ 0x54a2d));
    t.world
        .enable_sharding_with_plan(&t.shard_plan(shards))
        .expect("fresh world accepts sharding");
    t.world
        .install_faults(faults.schedule(params.services))
        .expect("generated schedule validates");
    let mut sched = SimRng::seed_from(params.seed).split("inject");
    let mut at = 0u64;
    for i in 0..60u64 {
        at += 1 + (sched.f64() * 6.0) as u64;
        let rt = t.request_types[(i % params.request_types as u64) as usize];
        t.world.inject_at(SimTime::from_millis(at), rt);
    }
    let done = t.world.run_until(SimTime::from_secs(120));
    assert!(t.world.is_quiescent(), "run must drain ({params:?})");
    let traces = serde_json::to_string(&t.world.warehouse().iter().collect::<Vec<_>>())
        .expect("traces serialize");
    Observed {
        completions: done,
        dropped_log: t.world.drain_dropped(),
        drop_breakdown: format!("{:?}", t.world.drop_breakdown()),
        fault_log: t.world.fault_log().to_vec(),
        spans: t.world.spans_created(),
        events: t.world.events_dispatched(),
        requests: t.world.requests_injected(),
        traces,
    }
}

fn assert_equivalent(params: &TopoParams, shards: usize, faults: Faults) {
    let oracle = run(params, 1, faults);
    let sharded = run(params, shards, faults);
    assert!(
        oracle.completions.len() + oracle.dropped_log.len() > 0,
        "oracle run must observe something ({params:?})"
    );
    assert_eq!(oracle, sharded, "shards=1 vs shards={shards} ({params:?})");
}

#[test]
fn sock_shop_preset_is_shard_count_invariant() {
    let none = Faults {
        crash_service: None,
        crash_at_ms: 20,
        restart_after_ms: None,
        pressure: false,
        blackout_lag: None,
    };
    for shards in [2usize, 3, 4] {
        assert_equivalent(&TopoParams::sock_shop_like(30), shards, none);
    }
}

#[test]
fn crash_with_restart_is_shard_count_invariant() {
    let faults = Faults {
        crash_service: Some(2),
        crash_at_ms: 30,
        restart_after_ms: Some(50),
        pressure: true,
        blackout_lag: Some(true),
    };
    let params = TopoParams {
        timeout: Some(SimDuration::from_millis(60)),
        ..TopoParams::sock_shop_like(24)
    };
    assert_equivalent(&params, 4, faults);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated topology under any generated fault schedule is
    /// byte-identical between the sequential oracle and an arbitrary
    /// shard count.
    #[test]
    fn prop_sharded_run_matches_sequential_oracle(
        services in 8usize..24,
        depth in 2usize..5,
        fanout in 1usize..3,
        request_types in 1usize..4,
        seed in 0u64..1_000,
        shards in 2usize..6,
        timeout_pick in 0usize..3,
        crash_pick in 0usize..3,
        crash_at_ms in 5u64..80,
        restart_pick in 0usize..3,
        pressure_pick in 0usize..2,
        blackout_pick in 0usize..3,
    ) {
        let services = services.max(depth);
        let params = TopoParams {
            services,
            depth,
            fanout,
            request_types,
            timeout: [None, Some(SimDuration::from_millis(40)), Some(SimDuration::from_secs(2))][timeout_pick],
            seed,
        };
        let faults = Faults {
            crash_service: [None, Some(1), Some(7)][crash_pick],
            crash_at_ms,
            restart_after_ms: [None, Some(30), Some(200)][restart_pick],
            pressure: pressure_pick == 1,
            blackout_lag: [None, Some(true), Some(false)][blackout_pick],
        };
        assert_equivalent(&params, shards.min(services), faults);
    }
}
