//! Parameterized microservice topology generator.
//!
//! The hand-built [`apps`] topologies stop at Sock Shop's 12 services —
//! the scale of the paper's evaluation. The ROADMAP north-star is worlds
//! serving millions of users across thousands of services, so this crate
//! grows Sock-Shop/Social-Network-*shaped* call graphs to any size: a
//! layered DAG with edge routers up top, CPU-bound logic tiers in the
//! middle, and database-like leaves at the bottom, wired with the same
//! [`ServiceSpec`]/[`Behavior`]/[`Stage`] vocabulary the hand-built apps
//! use.
//!
//! Generation is **deterministic**: the structure (layer widths, call
//! edges, service-time medians) is drawn from a [`SimRng`] seeded by
//! [`TopoParams::seed`], independent of the world's simulation seed — the
//! same parameters always produce the same world, byte for byte.
//!
//! # Example
//!
//! ```
//! use topo::{build, TopoParams};
//! use microsim::WorldConfig;
//! use sim_core::{SimRng, SimTime};
//!
//! let params = TopoParams::sock_shop_like(50);
//! let mut t = build(&params, WorldConfig::default(), SimRng::seed_from(1));
//! assert_eq!(t.world.service_count(), 50);
//! t.world.inject_at(SimTime::from_millis(1), t.request_types[0]);
//! let done = t.world.run_until(SimTime::from_secs(2));
//! assert_eq!(done.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cluster::Millicores;
use microsim::{Behavior, ServiceSpec, Stage, World, WorldConfig};
use sim_core::{Dist, SimDuration, SimRng};
use telemetry::{RequestTypeId, ServiceId};

/// Knobs of the generated topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopoParams {
    /// Total number of services (≥ `depth`).
    pub services: usize,
    /// Layers in the DAG, including the edge layer and the leaf layer.
    /// Calls only go from layer `l` to layer `l + 1`, so the graph is
    /// acyclic by construction.
    pub depth: usize,
    /// Downstream calls per call stage in middle tiers (the fan-out).
    pub fanout: usize,
    /// Number of request types (each enters at its own edge router,
    /// round-robin across the edge layer).
    pub request_types: usize,
    /// Client-side timeout applied to every request type (`None` waits
    /// forever). Timeouts exercise the late-event path at scale: most
    /// fire after their request already finished.
    pub timeout: Option<SimDuration>,
    /// Structure seed: layer widths, call edges, and service-time medians
    /// derive from this, independent of the simulation seed.
    pub seed: u64,
}

impl TopoParams {
    /// A Sock-Shop-shaped graph: narrow edge, tiered fan-out of 2, three
    /// request mixes — the paper's Fig. 2(i) grown to `services` nodes.
    pub fn sock_shop_like(services: usize) -> TopoParams {
        TopoParams {
            services,
            depth: 5,
            fanout: 2,
            request_types: 3,
            timeout: None,
            seed: 0x50c4,
        }
    }

    /// A Social-Network-shaped graph: shallower but wider fan-out (3) and
    /// more request mixes, like DeathStarBench's compose/read timelines.
    pub fn social_network_like(services: usize) -> TopoParams {
        TopoParams {
            services,
            depth: 4,
            fanout: 3,
            request_types: 5,
            timeout: None,
            seed: 0x50c1,
        }
    }

    /// Spans one request creates: a full `fanout`-ary call tree of the
    /// configured depth, `1 + f + f² + … + f^(depth-1)`.
    pub fn spans_per_request(&self) -> u64 {
        let f = self.fanout as u64;
        (0..self.depth as u32).map(|l| f.pow(l)).sum()
    }
}

/// A generated world plus the handles a driver needs.
pub struct Topology {
    /// The simulated cluster, one ready replica per service.
    pub world: World,
    /// One entry per request type, in id order.
    pub request_types: Vec<RequestTypeId>,
    /// Services per layer, edge first.
    pub layer_sizes: Vec<usize>,
}

impl Topology {
    /// A layer-aware shard plan for this topology — see [`shard_plan`].
    pub fn shard_plan(&self, shards: usize) -> Vec<std::ops::Range<usize>> {
        shard_plan(&self.layer_sizes, shards)
    }
}

/// Splits service ids `0..n` (where `n = layer_sizes.iter().sum()`) into
/// `shards` contiguous, balanced ranges for the parallel world engine.
///
/// Because generated call edges only go from layer `l` to layer `l + 1`
/// and service ids are assigned layer by layer, a cut placed *at a layer
/// boundary* severs only the edges crossing that one boundary — any other
/// cut additionally splits intra-layer sibling fan-outs across shards.
/// Each interior cut therefore snaps to the nearest layer boundary when
/// one lies within half an ideal shard width of the balanced cut point,
/// and falls back to the balanced point otherwise (needed when
/// `shards > depth`). Every shard is non-empty and the ranges tile
/// `0..n` in order.
///
/// # Panics
///
/// Panics if `shards == 0` or `shards > n`.
pub fn shard_plan(layer_sizes: &[usize], shards: usize) -> Vec<std::ops::Range<usize>> {
    let n: usize = layer_sizes.iter().sum();
    assert!(shards >= 1, "need at least one shard");
    assert!(shards <= n, "more shards ({shards}) than services ({n})");
    let mut bounds = Vec::with_capacity(layer_sizes.len() + 1);
    bounds.push(0usize);
    for &s in layer_sizes {
        bounds.push(bounds.last().unwrap() + s);
    }
    let mut cuts = Vec::with_capacity(shards + 1);
    cuts.push(0usize);
    for k in 1..shards {
        let ideal = k * n / shards;
        let prev = *cuts.last().unwrap();
        // Leave at least one service for each remaining shard.
        let max_cut = n - (shards - k);
        let snapped = bounds
            .iter()
            .copied()
            .filter(|&b| b > prev && b <= max_cut)
            .min_by_key(|&b| b.abs_diff(ideal))
            // Snap only when the boundary is within half a shard width.
            .filter(|&b| b.abs_diff(ideal) * 2 * shards <= n);
        cuts.push(snapped.unwrap_or_else(|| ideal.clamp(prev + 1, max_cut)));
    }
    cuts.push(n);
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Splits `n` services across `depth` layers with geometrically growing
/// widths (1 : 2 : 4 : …), every layer non-empty, summing exactly to `n`.
/// This is the id-assignment rule [`build`] uses, exposed so callers can
/// locate a layer (e.g. the connection-pool tier at `depth - 2`) without
/// building the world.
pub fn layer_widths(n: usize, depth: usize) -> Vec<usize> {
    let weights: Vec<u64> = (0..depth as u32).map(|l| 1u64 << l.min(16)).collect();
    let total: u64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|&w| (((n as u64) * w / total) as usize).max(1))
        .collect();
    // Absorb rounding drift in the leaf layer (the widest).
    let assigned: usize = sizes.iter().sum();
    let last = depth - 1;
    if assigned < n {
        sizes[last] += n - assigned;
    } else {
        let over = assigned - n;
        assert!(
            sizes[last] > over,
            "services = {n} cannot fill depth = {depth}"
        );
        sizes[last] -= over;
    }
    sizes
}

/// Builds the world: services layer by layer, behaviours for every request
/// type, one ready replica per service.
///
/// # Panics
///
/// Panics if `services < depth`, or `depth < 2`, or `fanout == 0`, or
/// `request_types == 0`.
pub fn build(params: &TopoParams, config: WorldConfig, rng: SimRng) -> Topology {
    assert!(params.depth >= 2, "need at least an edge and a leaf layer");
    assert!(
        params.services >= params.depth,
        "need at least one service per layer"
    );
    assert!(params.fanout >= 1, "fanout must be at least 1");
    assert!(params.request_types >= 1, "need at least one request type");

    let mut structure = SimRng::seed_from(params.seed).split("topo-structure");
    let sizes = layer_widths(params.services, params.depth);

    // Service ids are assigned in declaration order: layer 0 first.
    let mut first_id = vec![0u32; params.depth];
    for l in 1..params.depth {
        first_id[l] = first_id[l - 1] + sizes[l - 1] as u32;
    }
    let id_of = |layer: usize, idx: usize| ServiceId(first_id[layer] + idx as u32);

    let mut world = World::new(config, rng);
    for layer in 0..params.depth {
        let leaf_layer = layer == params.depth - 1;
        let conn_layer = layer == params.depth.saturating_sub(2);
        for idx in 0..sizes[layer] {
            let name = match layer {
                0 => format!("edge-{idx}"),
                l if l == params.depth - 1 => format!("store-{idx}"),
                l => format!("svc{l}-{idx}"),
            };
            let mut spec = match layer {
                // Edge routers: async I/O, CPU-light, huge thread gates.
                0 => ServiceSpec::new(name)
                    .cpu(Millicores::from_cores(4))
                    .threads(256)
                    .csw(0.005),
                // Leaves: database-like, concurrency-sensitive.
                l if l == params.depth - 1 => ServiceSpec::new(name)
                    .cpu(Millicores::from_cores(2))
                    .threads(64)
                    .csw(0.03),
                // Middle tiers: synchronous logic services.
                _ => ServiceSpec::new(name)
                    .cpu(Millicores::from_cores(2))
                    .threads(64)
                    .csw(0.02),
            };
            for r in 0..params.request_types {
                let rtype = RequestTypeId(r as u32);
                let behavior = if leaf_layer {
                    // Leaves burn the heaviest CPU (storage engines).
                    let median = structure.range_f64(0.5, 2.0);
                    Behavior::leaf(Dist::lognormal_ms(median, 0.4))
                } else {
                    // Pick `fanout` distinct downstream targets in the
                    // next layer, per request type, so different mixes
                    // traverse different subgraphs like real apps.
                    let width = sizes[layer + 1];
                    let mut targets: Vec<ServiceId> = Vec::with_capacity(params.fanout);
                    let base = structure.index(width);
                    for k in 0..params.fanout.min(width) {
                        // Base plus a random stride keeps edges spread
                        // without a rejection loop.
                        let step = 1 + structure.index(width.max(2) - 1);
                        let pick = (base + k * step) % width;
                        let target = id_of(layer + 1, pick);
                        if !targets.contains(&target) {
                            targets.push(target);
                        }
                    }
                    let req = structure.range_f64(0.2, 1.0);
                    let res = structure.range_f64(0.1, 0.5);
                    Behavior::new(vec![
                        Stage::compute(Dist::lognormal_ms(req, 0.3)),
                        Stage::fanout(targets),
                        Stage::compute(Dist::lognormal_ms(res, 0.3)),
                    ])
                };
                spec = spec.on(rtype, behavior);
            }
            if conn_layer {
                // The tier in front of the stores holds bounded connection
                // pools toward every leaf it calls — the paper's tunable
                // soft resource, present at every scale.
                let leaf_targets: Vec<ServiceId> = spec
                    .behaviors
                    .values()
                    .flat_map(|b| &b.stages)
                    .filter_map(|s| match s {
                        Stage::Call { targets } => Some(targets.clone()),
                        Stage::Compute { .. } => None,
                    })
                    .flatten()
                    .collect();
                for t in leaf_targets {
                    spec = spec.conns(t, 32);
                }
            }
            let sid = world.add_service(spec);
            debug_assert_eq!(sid, id_of(layer, idx));
        }
    }

    let request_types: Vec<RequestTypeId> = (0..params.request_types)
        .map(|r| {
            let entry = id_of(0, r % sizes[0]);
            world.add_request_type_with_timeout(format!("mix-{r}"), entry, params.timeout)
        })
        .collect();

    for idx in 0..world.service_count() {
        let pod = world
            .add_replica(ServiceId(idx as u32))
            .expect("default node fits the generated topology");
        world.make_ready(pod);
    }

    Topology {
        world,
        request_types,
        layer_sizes: sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    fn quiet() -> WorldConfig {
        WorldConfig {
            net_delay: Dist::constant_us(100),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        }
    }

    #[test]
    fn layer_sizes_sum_and_grow() {
        for (n, depth) in [(12, 5), (500, 5), (5_000, 4), (7, 5)] {
            let sizes = layer_widths(n, depth);
            assert_eq!(sizes.len(), depth);
            assert_eq!(sizes.iter().sum::<usize>(), n, "n = {n}");
            assert!(sizes.iter().all(|&s| s >= 1));
        }
        let sizes = layer_widths(500, 5);
        assert!(sizes[0] < *sizes.last().unwrap(), "leaves are the widest");
    }

    #[test]
    fn shard_plan_tiles_balances_and_snaps_to_layers() {
        let sizes = layer_widths(500, 5);
        let mut bounds = vec![0usize];
        for &s in &sizes {
            bounds.push(bounds.last().unwrap() + s);
        }
        for shards in [1, 2, 3, 4, 7, 8, 16] {
            let plan = shard_plan(&sizes, shards);
            assert_eq!(plan.len(), shards);
            assert_eq!(plan[0].start, 0);
            assert_eq!(plan.last().unwrap().end, 500);
            for w in plan.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous tiling");
            }
            for r in &plan {
                assert!(!r.is_empty(), "no empty shard at shards = {shards}");
                // Balanced within one ideal shard width either way.
                assert!(r.len() * shards <= 2 * 500, "shard too fat: {r:?}");
            }
        }
        // With few shards, every interior cut lands on a layer boundary.
        let plan = shard_plan(&sizes, 2);
        assert!(
            bounds.contains(&plan[0].end),
            "cut {} should snap to a layer boundary {bounds:?}",
            plan[0].end
        );
        // Degenerate cases.
        assert_eq!(shard_plan(&sizes, 1), vec![0..500]);
        let singles = shard_plan(&[1, 1, 1], 3);
        assert_eq!(singles, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn build_is_deterministic() {
        let p = TopoParams::sock_shop_like(60);
        let a = build(&p, quiet(), SimRng::seed_from(7));
        let b = build(&p, quiet(), SimRng::seed_from(7));
        assert_eq!(a.layer_sizes, b.layer_sizes);
        for idx in 0..a.world.service_count() {
            let s = ServiceId(idx as u32);
            assert_eq!(a.world.service_name(s), b.world.service_name(s));
            assert_eq!(a.world.thread_limit(s), b.world.thread_limit(s));
        }
        // Same structure AND same simulation: identical completions.
        let mut a = a;
        let mut b = b;
        for t in [1u64, 3, 9] {
            a.world
                .inject_at(SimTime::from_millis(t), a.request_types[0]);
            b.world
                .inject_at(SimTime::from_millis(t), b.request_types[0]);
        }
        let da = a.world.run_until(SimTime::from_secs(5));
        let db = b.world.run_until(SimTime::from_secs(5));
        assert_eq!(da.len(), db.len());
        for (x, y) in da.iter().zip(db.iter()) {
            assert_eq!(x.response_time, y.response_time);
        }
    }

    #[test]
    fn request_traverses_every_layer() {
        let p = TopoParams::sock_shop_like(40);
        let mut t = build(&p, quiet(), SimRng::seed_from(3));
        t.world
            .inject_at(SimTime::from_millis(1), t.request_types[1]);
        let done = t.world.run_until(SimTime::from_secs(5));
        assert_eq!(done.len(), 1);
        let trace = t.world.warehouse().iter().next().unwrap();
        assert_eq!(trace.spans.len() as u64, p.spans_per_request());
        let names: Vec<&str> = trace
            .spans
            .iter()
            .map(|sp| t.world.service_name(sp.service))
            .collect();
        assert!(
            names[0].starts_with("edge-"),
            "entry at the edge: {names:?}"
        );
        assert!(
            names.iter().any(|n| n.starts_with("store-")),
            "reaches the leaves: {names:?}"
        );
    }

    #[test]
    fn five_hundred_services_serve_load() {
        let p = TopoParams::sock_shop_like(500);
        let mut t = build(&p, quiet(), SimRng::seed_from(11));
        assert_eq!(t.world.service_count(), 500);
        for i in 0..50u64 {
            let rt = t.request_types[(i % 3) as usize];
            t.world.inject_at(SimTime::from_millis(1 + i * 7), rt);
        }
        let done = t.world.run_until(SimTime::from_secs(10));
        assert_eq!(done.len(), 50);
        assert_eq!(t.world.dropped(), 0);
    }

    #[test]
    fn social_network_preset_is_wider() {
        let p = TopoParams::social_network_like(100);
        let t = build(&p, quiet(), SimRng::seed_from(5));
        assert_eq!(t.layer_sizes.len(), 4);
        assert_eq!(t.request_types.len(), 5);
        assert_eq!(p.spans_per_request(), 1 + 3 + 9 + 27);
        assert_eq!(t.world.service_count(), 100);
    }

    #[test]
    fn timeouts_apply_to_generated_request_types() {
        let p = TopoParams {
            timeout: Some(SimDuration::from_millis(1)),
            ..TopoParams::sock_shop_like(20)
        };
        let mut t = build(&p, quiet(), SimRng::seed_from(2));
        t.world
            .inject_at(SimTime::from_millis(1), t.request_types[0]);
        t.world.run_until(SimTime::from_secs(5));
        // A 1 ms budget cannot cover a multi-layer call tree.
        assert_eq!(t.world.dropped(), 1);
    }
}
