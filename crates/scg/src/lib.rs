//! The Scatter-Concurrency-Goodput (SCG) model — the paper's core
//! contribution (§3).
//!
//! Given fine-grained `<concurrency, goodput>` samples of a critical
//! microservice (built by [`telemetry::build_scatter`] at 100 ms
//! granularity over a short window), the model recommends the *optimal
//! concurrency setting*: the knee of the main-sequence curve, i.e. the
//! smallest concurrency that achieves the highest goodput under the
//! service's propagated response-time deadline.
//!
//! The pipeline mirrors the paper's four phases:
//!
//! 1. **Critical service localisation** ([`localize_critical_service`]) —
//!    resource utilisation screening plus the Pearson correlation between
//!    each service's on-path processing time and the end-to-end response
//!    time;
//! 2. **RT-threshold propagation** ([`propagate_deadline`]) — the
//!    critical service's goodput threshold is the SLA minus upstream
//!    processing time (eq. 3);
//! 3. **Metrics collection** — performed by the `telemetry` crate's
//!    samplers;
//! 4. **Estimation** ([`ScgModel::estimate`]) — aggregate the scatter by
//!    concurrency, fit a smoothing polynomial with incremental degree
//!    tuning, and detect the knee with [`Kneedle`] (Satopaa et al. 2011).
//!
//! The Scatter-Concurrency-**Throughput** (SCT) model that ConScale uses is
//! the same pipeline fed with throughput instead of goodput (build the
//! scatter with [`telemetry::build_scatter_throughput`]); no separate code
//! is needed, which is itself a faithful rendition of the paper's framing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deadline;
mod fit;
mod kneedle;
mod localize;
mod model;
pub mod sensitivity;

pub use deadline::propagate_deadline;
pub use fit::PolyFit;
pub use kneedle::{KneeDirection, Kneedle};
pub use localize::{localize_critical_service, LocalizeConfig};
pub use model::{ConcurrencyEstimate, ScgConfig, ScgModel};
