//! RT-threshold (deadline) propagation along the critical path (§3.2).

use sim_core::SimDuration;

/// Computes the response-time threshold of the critical service from the
/// end-to-end SLA and the summed processing time of its upstream services —
/// the paper's eq. 3: `RTT_sᵢ ≤ SLA − Σ_{k<i} PT_sk`.
///
/// The threshold is floored at 5 % of the SLA: when upstream services eat
/// (nearly) the whole budget, a zero/negative threshold would make every
/// request badput and blind the model; the floor keeps the goodput signal
/// alive while still reflecting an extremely tight budget.
///
/// # Example
///
/// ```
/// use scg::propagate_deadline;
/// use sim_core::SimDuration;
///
/// // Fig. 5 walk-through from the paper: a 150 ms SLA on the Cart path
/// // with 10 ms of front-end processing gives Cart a 140 ms threshold.
/// let rtt = propagate_deadline(SimDuration::from_millis(150),
///                              SimDuration::from_millis(10));
/// assert_eq!(rtt.as_millis(), 140);
/// ```
pub fn propagate_deadline(sla: SimDuration, upstream_pt: SimDuration) -> SimDuration {
    let floor = SimDuration::from_nanos(sla.as_nanos() / 20);
    if upstream_pt >= sla {
        return floor.max(SimDuration::from_nanos(1));
    }
    (sla - upstream_pt).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn paper_example() {
        assert_eq!(propagate_deadline(ms(150), ms(10)).as_millis(), 140);
    }

    #[test]
    fn zero_upstream_keeps_full_sla() {
        assert_eq!(propagate_deadline(ms(400), SimDuration::ZERO), ms(400));
    }

    #[test]
    fn exhausted_budget_floors_at_5_percent() {
        assert_eq!(propagate_deadline(ms(100), ms(100)).as_millis(), 5);
        assert_eq!(propagate_deadline(ms(100), ms(99)).as_millis(), 5);
        assert_eq!(propagate_deadline(ms(100), ms(500)).as_millis(), 5);
    }

    proptest! {
        /// The threshold is monotone non-increasing in upstream time and
        /// never exceeds the SLA.
        #[test]
        fn prop_monotone(sla in 10u64..1_000, up_a in 0u64..1_000, up_b in 0u64..1_000) {
            let (lo, hi) = (up_a.min(up_b), up_a.max(up_b));
            let t_lo = propagate_deadline(ms(sla), ms(lo));
            let t_hi = propagate_deadline(ms(sla), ms(hi));
            prop_assert!(t_hi <= t_lo);
            prop_assert!(t_lo <= ms(sla));
            prop_assert!(t_hi > SimDuration::ZERO);
        }
    }
}
