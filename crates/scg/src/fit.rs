//! Least-squares polynomial fitting (the model's smoothing spline stand-in).

/// A fitted polynomial `y = Σ cᵢ·x̂ⁱ` over an internally normalised domain
/// (inputs are mapped to `[0, 1]` before fitting, which keeps the normal
/// equations well-conditioned up to the degree 5–8 range the paper uses).
///
/// # Example
///
/// ```
/// use scg::PolyFit;
/// let xs: Vec<f64> = (0..20).map(f64::from).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x - 0.1 * x * x).collect();
/// let fit = PolyFit::fit(&xs, &ys, 2).unwrap();
/// assert!((fit.eval(10.0) - 13.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    /// Coefficients in the normalised domain, constant term first.
    coeffs: Vec<f64>,
    x_min: f64,
    x_scale: f64,
}

impl PolyFit {
    /// Fits a polynomial of the given degree to `(xs, ys)` by least squares.
    ///
    /// Returns `None` when the system is degenerate: fewer than `degree + 1`
    /// points, mismatched lengths, zero x-spread, or a singular normal
    /// matrix.
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Option<PolyFit> {
        Self::fit_weighted(xs, ys, None, degree)
    }

    /// Weighted least-squares fit: point `i` contributes with weight
    /// `ws[i]`. The SCG model weights each concurrency bin by its sample
    /// count so that densely observed operating points dominate the shape
    /// and sparse outlier bins cannot drag the curve.
    ///
    /// Returns `None` under the same degeneracy conditions as
    /// [`PolyFit::fit`], or when any weight is non-positive/non-finite.
    pub fn fit_weighted(
        xs: &[f64],
        ys: &[f64],
        ws: Option<&[f64]>,
        degree: usize,
    ) -> Option<PolyFit> {
        let n = xs.len();
        if n != ys.len() || n < degree + 1 {
            return None;
        }
        if let Some(ws) = ws {
            if ws.len() != n || ws.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
                return None;
            }
        }
        let x_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let x_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let spread = x_max - x_min;
        if !(spread.is_finite() && spread > 0.0) {
            return None;
        }
        let m = degree + 1;
        // Normal equations: (VᵀWV) c = VᵀWy with Vandermonde V on x̂ ∈ [0,1].
        let mut ata = vec![vec![0.0f64; m]; m];
        let mut aty = vec![0.0f64; m];
        for (k, (&x, &y)) in xs.iter().zip(ys).enumerate() {
            let w = ws.map_or(1.0, |ws| ws[k]);
            let xh = (x - x_min) / spread;
            let mut pow = vec![1.0; m];
            for i in 1..m {
                pow[i] = pow[i - 1] * xh;
            }
            for i in 0..m {
                aty[i] += w * pow[i] * y;
                for j in 0..m {
                    ata[i][j] += w * pow[i] * pow[j];
                }
            }
        }
        let coeffs = solve(ata, aty)?;
        Some(PolyFit {
            coeffs,
            x_min,
            x_scale: spread,
        })
    }

    /// Evaluates the polynomial at `x` (original domain).
    pub fn eval(&self, x: f64) -> f64 {
        let xh = (x - self.x_min) / self.x_scale;
        // Horner's rule.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * xh + c)
    }

    /// The polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Root-mean-squared residual of the fit on `(xs, ys)`.
    pub fn rmse(&self, xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len().min(ys.len());
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| (self.eval(x) - y).powi(2))
            .sum();
        (sum / n as f64).sqrt()
    }
}

/// Gaussian elimination with partial pivoting. Returns `None` on a singular
/// matrix.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("no NaN in normal matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col].clone();
            for (entry, pivot) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *entry -= f * pivot;
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_on_polynomial_data() {
        let xs: Vec<f64> = (0..30).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.0 - 0.5 * x + 0.02 * x.powi(3))
            .collect();
        let fit = PolyFit::fit(&xs, &ys, 3).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((fit.eval(x) - y).abs() < 1e-6);
        }
        assert!(fit.rmse(&xs, &ys) < 1e-6);
        assert_eq!(fit.degree(), 3);
    }

    #[test]
    fn underdetermined_returns_none() {
        assert!(PolyFit::fit(&[1.0, 2.0], &[1.0, 2.0], 5).is_none());
        assert!(PolyFit::fit(&[1.0, 2.0], &[1.0], 1).is_none());
    }

    #[test]
    fn zero_spread_returns_none() {
        let xs = [3.0; 10];
        let ys = [1.0; 10];
        assert!(PolyFit::fit(&xs, &ys, 2).is_none());
    }

    #[test]
    fn high_degree_stays_stable_on_noisy_knee_curve() {
        // goodput-like shape: ramp then flat, with noise.
        let xs: Vec<f64> = (1..=60).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let clean = if x < 20.0 { 50.0 * x } else { 1000.0 };
                clean + ((i * 37) % 100) as f64 - 50.0
            })
            .collect();
        let fit = PolyFit::fit(&xs, &ys, 8).unwrap();
        // Fit should stay within the data envelope (no wild oscillation).
        for &x in &xs {
            let v = fit.eval(x);
            assert!((-500.0..2_000.0).contains(&v), "eval({x}) = {v}");
        }
    }

    #[test]
    fn weights_prioritise_heavy_points() {
        // Two clusters: heavy points on y = x, one light outlier far off.
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let ys = [1.0, 2.0, 3.0, 4.0, 100.0];
        let ws = [100.0, 100.0, 100.0, 100.0, 0.01];
        let fit = PolyFit::fit_weighted(&xs, &ys, Some(&ws), 1).unwrap();
        assert!(
            (fit.eval(2.0) - 2.0).abs() < 0.2,
            "heavy cluster wins: {}",
            fit.eval(2.0)
        );
        // Invalid weights are rejected.
        assert!(PolyFit::fit_weighted(&xs, &ys, Some(&[1.0; 3]), 1).is_none());
        assert!(PolyFit::fit_weighted(&xs, &ys, Some(&[0.0; 5]), 1).is_none());
    }

    proptest! {
        /// A degree-1 fit of affine data recovers slope and intercept.
        #[test]
        fn prop_affine_recovery(a in -10.0f64..10.0, b in -100.0f64..100.0) {
            let xs: Vec<f64> = (0..20).map(f64::from).collect();
            let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            if let Some(fit) = PolyFit::fit(&xs, &ys, 1) {
                for &x in &xs {
                    prop_assert!((fit.eval(x) - (a * x + b)).abs() < 1e-6);
                }
            } else {
                prop_assert!(false, "fit failed on clean data");
            }
        }
    }
}
