//! Sensitivity analysis of the SCG model (§3.3 of the paper): how the
//! polynomial degree and the Kneedle sensitivity affect the estimated knee.

use crate::{PolyFit, ScgConfig, ScgModel};
use telemetry::ScatterPoint;

/// One row of a degree sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeRow {
    /// The forced polynomial degree.
    pub degree: usize,
    /// The knee found at this degree, if any.
    pub knee: Option<usize>,
    /// Fit RMSE normalised by the goodput range (lower = tighter fit;
    /// suspiciously low at high degrees = chasing noise).
    pub relative_rmse: Option<f64>,
}

/// Sweeps the polynomial degree over `degrees`, forcing each one (no
/// incremental tuning), and reports the knee and fit quality per degree —
/// the experiment behind the paper's observation that degrees 5–8 fit the
/// profiling data while too-low degrees "cannot provide a valid knee point"
/// and too-high ones overfit.
///
/// # Example
///
/// ```
/// use scg::sensitivity::degree_sweep;
/// use telemetry::ScatterPoint;
///
/// let pts: Vec<ScatterPoint> = (1..=30)
///     .flat_map(|q| (0..4).map(move |k| ScatterPoint {
///         q: q as f64,
///         rate: (q as f64).min(8.0) * 100.0 + k as f64,
///     }))
///     .collect();
/// let rows = degree_sweep(&pts, &[2, 5, 8]);
/// assert_eq!(rows.len(), 3);
/// // Mid-range degrees localise the knee near 8.
/// let d5 = rows.iter().find(|r| r.degree == 5).unwrap();
/// assert!(d5.knee.is_some());
/// ```
pub fn degree_sweep(points: &[ScatterPoint], degrees: &[usize]) -> Vec<DegreeRow> {
    let base = ScgModel::default();
    let binned = base.aggregate_counted(points);
    let xs: Vec<f64> = binned.iter().map(|b| b.0).collect();
    let ys: Vec<f64> = binned.iter().map(|b| b.1).collect();
    let range = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - ys.iter().copied().fold(f64::INFINITY, f64::min);
    degrees
        .iter()
        .map(|&degree| {
            let model = ScgModel::new(ScgConfig {
                min_degree: degree,
                max_degree: degree,
                rmse_tolerance: f64::INFINITY,
                ..ScgConfig::default()
            });
            let knee = model.estimate(points).map(|e| e.optimal);
            let relative_rmse = if range > 0.0 {
                PolyFit::fit(&xs, &ys, degree).map(|f| f.rmse(&xs, &ys) / range)
            } else {
                None
            };
            DegreeRow {
                degree,
                knee,
                relative_rmse,
            }
        })
        .collect()
}

/// Sweeps the Kneedle sensitivity `S`: larger values demand a more
/// pronounced knee before confirming one. Returns `(sensitivity, knee)`
/// pairs; the knee vanishing as `S` grows quantifies how pronounced the
/// curve's knee is.
pub fn kneedle_sensitivity_sweep(
    points: &[ScatterPoint],
    sensitivities: &[f64],
) -> Vec<(f64, Option<usize>)> {
    sensitivities
        .iter()
        .map(|&s| {
            let model = ScgModel::new(ScgConfig {
                sensitivity: s,
                ..ScgConfig::default()
            });
            (s, model.estimate(points).map(|e| e.optimal))
        })
        .collect()
}

/// Estimation stability across sub-windows: splits the scatter into
/// `chunks` equal parts (sample order stands in for time order) and
/// estimates each independently. Dispersion across chunks is the §3.3
/// notion of estimation noise; the bench harness combines this with
/// ground-truth sweeps into the MAPE of Table 1.
pub fn chunked_estimates(points: &[ScatterPoint], chunks: usize) -> Vec<Option<usize>> {
    assert!(chunks > 0, "need at least one chunk");
    let model = ScgModel::default();
    let size = points.len().div_ceil(chunks).max(1);
    points
        .chunks(size)
        .map(|chunk| model.estimate(chunk).map(|e| e.optimal))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;

    /// A realistic saturating curve with noise, twelve samples per bin —
    /// enough that a three-way chunk split still clears the model's
    /// min-samples-per-bin floor.
    fn scatter(seed: u64) -> Vec<ScatterPoint> {
        let mut rng = SimRng::seed_from(seed);
        (1..=30)
            .flat_map(|q| {
                let base = 1_000.0 * (1.0 - (-(q as f64) / 4.0).exp());
                (0..12)
                    .map(|_| ScatterPoint {
                        q: q as f64 + rng.f64() - 0.5,
                        rate: base + (rng.f64() - 0.5) * 60.0,
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn degree_sweep_reports_fit_quality_monotone() {
        let rows = degree_sweep(&scatter(1), &[2, 3, 5, 8]);
        assert_eq!(rows.len(), 4);
        // Higher degrees never fit worse (least squares nests).
        let rmses: Vec<f64> = rows.iter().filter_map(|r| r.relative_rmse).collect();
        assert_eq!(rmses.len(), 4);
        for w in rmses.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "rmse must not grow with degree: {rmses:?}"
            );
        }
        // The paper's working range localises a knee near q0·ln(…) ≈ 6–10.
        let d5 = rows.iter().find(|r| r.degree == 5).unwrap();
        let knee = d5.knee.expect("degree 5 finds the knee");
        assert!((4..=12).contains(&knee), "knee {knee}");
    }

    #[test]
    fn sensitivity_sweep_is_monotone_in_confirmation() {
        let pts = scatter(2);
        let sweep = kneedle_sensitivity_sweep(&pts, &[0.5, 1.0, 5.0, 500.0]);
        assert!(sweep[0].1.is_some(), "eager settings confirm the knee");
        assert!(
            sweep.last().unwrap().1.is_none(),
            "absurd S rejects everything"
        );
        // Once the knee vanishes it stays vanished (monotone in S).
        let first_none = sweep.iter().position(|(_, k)| k.is_none());
        if let Some(i) = first_none {
            assert!(sweep[i..].iter().all(|(_, k)| k.is_none()), "{sweep:?}");
        }
    }

    #[test]
    fn chunked_estimates_agree_on_stationary_data() {
        // Interleave the samples so each chunk covers the full concurrency
        // domain (as real time-windows do under a fluctuating workload).
        let pts = scatter(3);
        let mut shuffled = Vec::with_capacity(pts.len());
        for offset in 0..3 {
            shuffled.extend(pts.iter().skip(offset).step_by(3).copied());
        }
        let ests: Vec<usize> = chunked_estimates(&shuffled, 3)
            .into_iter()
            .flatten()
            .collect();
        assert!(ests.len() >= 2, "most chunks estimate");
        let min = ests.iter().min().unwrap();
        let max = ests.iter().max().unwrap();
        assert!(
            max - min <= 4,
            "stationary data gives stable knees: {ests:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_panics() {
        let _ = chunked_estimates(&[], 0);
    }
}
