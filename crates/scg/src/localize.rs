//! Critical-service localisation (the SCG workflow's first phase).

use std::collections::BTreeMap;
use telemetry::{CriticalPathStats, ServiceId};

/// Tuning for [`localize_critical_service`].
#[derive(Debug, Clone, Copy)]
pub struct LocalizeConfig {
    /// CPU-utilisation screening threshold: services at or above this are
    /// capacity-saturation candidates (the paper's first step, following
    /// FIRM).
    pub util_threshold: f64,
    /// Minimum number of traces a service must appear on (as part of the
    /// critical path) for its PCC to be trusted.
    pub min_on_path: u64,
}

impl Default for LocalizeConfig {
    fn default() -> Self {
        LocalizeConfig {
            util_threshold: 0.7,
            min_on_path: 20,
        }
    }
}

/// Identifies the critical service by the paper's two-step method (§3.2):
///
/// 1. screen services whose CPU utilisation suggests they are at capacity;
/// 2. among them, pick the service whose on-critical-path processing time
///    correlates most strongly (Pearson) with the end-to-end response time.
///
/// If no service passes the utilisation screen (e.g. the bottleneck is a
/// soft resource, not CPU), the PCC ranking alone decides — this is exactly
/// the case Fig. 1 illustrates, where an over-allocated connection pool
/// hurts latency while CPU looks fine.
///
/// Returns `None` when the window holds no usable traces.
pub fn localize_critical_service(
    stats: &CriticalPathStats,
    utilization: &BTreeMap<ServiceId, f64>,
    config: &LocalizeConfig,
) -> Option<ServiceId> {
    let candidates: Vec<ServiceId> = utilization
        .iter()
        .filter(|(_, &u)| u >= config.util_threshold)
        .map(|(&s, _)| s)
        .collect();
    let pick_best = |pool: &[ServiceId]| -> Option<ServiceId> {
        pool.iter()
            .copied()
            .filter(|&s| stats.on_path_count(s) >= config.min_on_path)
            .filter_map(|s| stats.pcc(s).map(|r| (s, r)))
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("PCC is never NaN")
                    .then_with(|| b.0.cmp(&a.0)) // tie → lower id
            })
            .map(|(s, _)| s)
    };
    if !candidates.is_empty() {
        if let Some(s) = pick_best(&candidates) {
            return Some(s);
        }
    }
    // Fall back to the full PCC ranking.
    let all: Vec<ServiceId> = utilization.keys().copied().collect();
    pick_best(&all).or_else(|| stats.candidate_critical_service())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;
    use telemetry::{
        per_service_stats, ChildCall, ReplicaId, RequestId, RequestTypeId, Span, SpanId, Trace,
    };

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// A two-hop chain front(0) → worker(1); worker time varies with `i`.
    fn chain_trace(i: u64, worker_ms: u64) -> Trace {
        let root = Span {
            id: SpanId(i * 2),
            request: RequestId(i),
            service: ServiceId(0),
            replica: ReplicaId(0),
            parent: None,
            arrival: t(0),
            service_start: t(0),
            departure: t(worker_ms + 10),
            children: vec![ChildCall {
                service: ServiceId(1),
                start: t(5),
                end: t(worker_ms + 5),
            }],
        };
        let child = Span {
            id: SpanId(i * 2 + 1),
            parent: Some(root.id),
            service: ServiceId(1),
            arrival: t(5),
            service_start: t(5),
            departure: t(worker_ms + 5),
            children: vec![],
            ..root.clone()
        };
        Trace {
            request: RequestId(i),
            request_type: RequestTypeId(0),
            spans: vec![root, child],
        }
    }

    fn stats() -> CriticalPathStats {
        let traces: Vec<Trace> = (0..40).map(|i| chain_trace(i, 20 + i * 3)).collect();
        per_service_stats(&traces)
    }

    #[test]
    fn utilization_screen_plus_pcc() {
        let stats = stats();
        let util = BTreeMap::from([(ServiceId(0), 0.9), (ServiceId(1), 0.95)]);
        let cfg = LocalizeConfig {
            min_on_path: 10,
            ..LocalizeConfig::default()
        };
        // Both are hot; worker's self time drives RT → worker wins.
        assert_eq!(
            localize_critical_service(&stats, &util, &cfg),
            Some(ServiceId(1))
        );
    }

    #[test]
    fn falls_back_to_pcc_when_cpu_looks_idle() {
        let stats = stats();
        let util = BTreeMap::from([(ServiceId(0), 0.2), (ServiceId(1), 0.3)]);
        let cfg = LocalizeConfig {
            min_on_path: 10,
            ..LocalizeConfig::default()
        };
        assert_eq!(
            localize_critical_service(&stats, &util, &cfg),
            Some(ServiceId(1))
        );
    }

    #[test]
    fn hot_but_uncorrelated_service_loses_to_correlated_one() {
        let stats = stats();
        // Only the (constant-time) front-end passes the screen, but its PCC
        // is undefined/low; the fallback ranking still finds the worker.
        let util = BTreeMap::from([(ServiceId(0), 0.99), (ServiceId(1), 0.1)]);
        let cfg = LocalizeConfig {
            min_on_path: 10,
            ..LocalizeConfig::default()
        };
        let got = localize_critical_service(&stats, &util, &cfg);
        assert_eq!(got, Some(ServiceId(1)));
    }

    #[test]
    fn empty_stats_yield_none() {
        let stats = per_service_stats(std::iter::empty::<&Trace>());
        let util = BTreeMap::new();
        assert_eq!(
            localize_critical_service(&stats, &util, &LocalizeConfig::default()),
            None
        );
    }
}
