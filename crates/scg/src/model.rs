//! The SCG estimator: scatter aggregation, smoothing, knee extraction.

use crate::{Kneedle, PolyFit};
use telemetry::ScatterPoint;

/// Tuning of the SCG estimation phase.
#[derive(Debug, Clone, Copy)]
pub struct ScgConfig {
    /// Smallest polynomial degree to try (the paper finds 5–8 fits well).
    pub min_degree: usize,
    /// Largest polynomial degree to try; higher overfits noise (§3.3).
    pub max_degree: usize,
    /// Accept the first degree whose RMSE is below this fraction of the
    /// goodput range (the paper's "minimum polynomial degree that matches
    /// the profiling data").
    pub rmse_tolerance: f64,
    /// Kneedle sensitivity `S`.
    pub sensitivity: f64,
    /// Minimum number of distinct concurrency bins required to estimate.
    pub min_bins: usize,
    /// Dense evaluation grid size for knee detection on the smoothed curve.
    pub grid_points: usize,
    /// Reject a knee whose smoothed goodput is below this fraction of the
    /// curve's maximum: such a "knee" means the service never saturated in
    /// the window (an under-allocated pool blurs the knee, §3.2), so the
    /// framework should keep exploring instead of trusting it.
    pub min_knee_rate_fraction: f64,
    /// Concurrency bins observed fewer than this many times are dropped:
    /// they are transient extremes with unreliable goodput averages.
    pub min_bin_samples: u64,
}

impl Default for ScgConfig {
    fn default() -> Self {
        ScgConfig {
            min_degree: 5,
            max_degree: 8,
            rmse_tolerance: 0.08,
            sensitivity: 1.0,
            min_bins: 5,
            grid_points: 200,
            min_knee_rate_fraction: 0.75,
            min_bin_samples: 3,
        }
    }
}

/// The model's output: the recommended concurrency setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrencyEstimate {
    /// The optimal concurrency (knee of the main-sequence curve), ≥ 1.
    pub optimal: usize,
    /// The smoothed goodput at the knee (requests/second).
    pub rate_at_optimal: f64,
    /// Distinct concurrency bins that informed the estimate.
    pub bins: usize,
    /// Polynomial degree selected by incremental tuning.
    pub degree: usize,
}

/// The Scatter-Concurrency-Goodput estimator.
///
/// Feed it the `<Q, GP>` scatter of the critical service (built by
/// [`telemetry::build_scatter`] with the propagated deadline as threshold)
/// and it returns the knee of the main-sequence curve. Feeding throughput
/// pairs instead (from [`telemetry::build_scatter_throughput`]) turns it
/// into ConScale's SCT model — the two models differ only in their input,
/// exactly as the paper describes.
///
/// # Example
///
/// ```
/// use scg::{ScgConfig, ScgModel};
/// use telemetry::ScatterPoint;
///
/// // Synthetic main-sequence curve: linear rise, flat after q = 10
/// // (three samples per concurrency bin, as the 100 ms sampler produces).
/// let pts: Vec<ScatterPoint> = (1..=30)
///     .flat_map(|q| {
///         (0..3).map(move |k| ScatterPoint {
///             q: q as f64,
///             rate: (q as f64).min(10.0) * 100.0 + k as f64,
///         })
///     })
///     .collect();
/// let est = ScgModel::new(ScgConfig::default()).estimate(&pts).unwrap();
/// assert!((8..=13).contains(&est.optimal), "knee near 10, got {}", est.optimal);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScgModel {
    config: ScgConfig,
}

impl ScgModel {
    /// Creates a model with the given tuning.
    pub fn new(config: ScgConfig) -> Self {
        ScgModel { config }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ScgConfig {
        &self.config
    }

    /// Aggregates raw scatter points into per-integer-concurrency bins:
    /// the paper's "for a specific server concurrency Qₙ we calculate the
    /// average goodput GPₙ". Returns sorted `(q, mean_rate)` pairs (bins
    /// below [`ScgConfig::min_bin_samples`] are dropped).
    pub fn aggregate(&self, points: &[ScatterPoint]) -> Vec<(f64, f64)> {
        self.aggregate_counted(points)
            .into_iter()
            .map(|(q, rate, _)| (q, rate))
            .collect()
    }

    /// Like [`ScgModel::aggregate`] but also returns each bin's sample
    /// count, used to weight the curve fit.
    pub fn aggregate_counted(&self, points: &[ScatterPoint]) -> Vec<(f64, f64, u64)> {
        let mut out = Vec::new();
        self.aggregate_counted_into(points, &mut out);
        out
    }

    /// [`ScgModel::aggregate_counted`] into a caller-owned buffer (cleared
    /// first). The buffer doubles as the dense accumulation table — keyed
    /// by rounded concurrency, compacted in place — so a caller that holds
    /// it across ticks rebuilds the bins with zero allocation instead of a
    /// fresh `BTreeMap` per estimate. Rates accumulate in point order
    /// within each bin, exactly as the map-based fold did.
    pub fn aggregate_counted_into(&self, points: &[ScatterPoint], out: &mut Vec<(f64, f64, u64)>) {
        out.clear();
        let valid = |p: &ScatterPoint| p.q.is_finite() && p.rate.is_finite() && p.q >= 0.5;
        let mut max_key = 0u64;
        let mut any = false;
        for p in points {
            if valid(p) {
                // Idle samples (q < 0.5) carry no concurrency signal.
                max_key = max_key.max(p.q.round() as u64);
                any = true;
            }
        }
        if !any {
            return;
        }
        out.resize((max_key + 1) as usize, (0.0, 0.0, 0));
        for p in points {
            if valid(p) {
                let e = &mut out[p.q.round() as usize];
                e.1 += p.rate;
                e.2 += 1;
            }
        }
        let min_samples = self.config.min_bin_samples;
        let mut w = 0;
        for key in 0..out.len() {
            let (_, sum, n) = out[key];
            if n > 0 && n >= min_samples {
                out[w] = (key as f64, sum / n as f64, n);
                w += 1;
            }
        }
        out.truncate(w);
    }

    /// Estimates the optimal concurrency from a scatter window.
    ///
    /// Returns `None` when the data is insufficient (too few distinct
    /// concurrency levels) or exhibits no knee — the signal for the
    /// framework to keep exploring by gradually raising the allocation
    /// (§3.2, Metrics Collection Phase).
    pub fn estimate(&self, points: &[ScatterPoint]) -> Option<ConcurrencyEstimate> {
        self.estimate_binned(&self.aggregate_counted(points))
    }

    /// Estimates from pre-aggregated `(q, mean_rate, samples)` bins — the
    /// entry point for callers that already hold the window's bins (built
    /// once via [`ScgModel::aggregate_counted_into`] from ring-served
    /// buckets) and skips re-binning the raw scatter per estimate.
    pub fn estimate_binned(&self, binned: &[(f64, f64, u64)]) -> Option<ConcurrencyEstimate> {
        if binned.len() < self.config.min_bins {
            return None;
        }
        let xs: Vec<f64> = binned.iter().map(|b| b.0).collect();
        let ys: Vec<f64> = binned.iter().map(|b| b.1).collect();
        let ws: Vec<f64> = binned.iter().map(|b| b.2 as f64).collect();
        let y_range = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - ys.iter().copied().fold(f64::INFINITY, f64::min);
        if y_range <= 0.0 {
            return None;
        }
        // Incremental degree tuning, exactly as §3.3 describes: find the
        // *minimum* polynomial degree that both fits the profiling data and
        // yields a valid knee — a too-low degree smooths the knee away, a
        // too-high one fits noise (and is never reached once a lower degree
        // works).
        let max_deg = self.config.max_degree.min(xs.len().saturating_sub(2));
        let (x0, x1) = (xs[0], *xs.last().expect("non-empty"));
        let n = self.config.grid_points.max(8);
        let detector = Kneedle {
            sensitivity: self.config.sensitivity,
            ..Kneedle::default()
        };
        for degree in self.config.min_degree.min(max_deg)..=max_deg {
            let Some(fit) = PolyFit::fit_weighted(&xs, &ys, Some(&ws), degree) else {
                continue;
            };
            if fit.rmse(&xs, &ys) > self.config.rmse_tolerance * y_range {
                continue; // does not match the profiling data
            }
            // Dense evaluation of the smoothed curve, clamped non-negative.
            let gx: Vec<f64> = (0..n)
                .map(|i| x0 + (x1 - x0) * i as f64 / (n - 1) as f64)
                .collect();
            let gy: Vec<f64> = gx.iter().map(|&x| fit.eval(x).max(0.0)).collect();
            let Some(knee) = detector.detect(&gx, &gy) else {
                continue; // this degree provides no valid knee point
            };
            let optimal = knee.round().max(1.0) as usize;
            let rate_at_optimal = fit.eval(optimal as f64).max(0.0);
            let grid_max = gy.iter().copied().fold(0.0f64, f64::max);
            if rate_at_optimal < self.config.min_knee_rate_fraction * grid_max {
                continue; // knee far below the peak: unsaturated window
            }
            return Some(ConcurrencyEstimate {
                optimal,
                rate_at_optimal,
                bins: xs.len(),
                degree,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;

    /// Scatter points along `rate = plateau·(1 − exp(−q/q0))` with noise —
    /// a realistic main-sequence curve whose knee sits a little past q0.
    fn saturating_scatter(q_max: u32, q0: f64, plateau: f64, noise: f64) -> Vec<ScatterPoint> {
        let mut rng = SimRng::seed_from(11);
        let mut pts = Vec::new();
        for q in 1..=q_max {
            for _ in 0..20 {
                let clean = plateau * (1.0 - (-(q as f64) / q0).exp());
                let jitter = (rng.f64() - 0.5) * 2.0 * noise * plateau;
                pts.push(ScatterPoint {
                    q: q as f64 + rng.f64() - 0.5,
                    rate: (clean + jitter).max(0.0),
                });
            }
        }
        pts
    }

    #[test]
    fn recovers_knee_of_saturating_curve() {
        let pts = saturating_scatter(30, 4.0, 1000.0, 0.03);
        let est = ScgModel::default().estimate(&pts).unwrap();
        assert!(
            (4..=12).contains(&est.optimal),
            "knee should sit a bit past q0 = 4, got {}",
            est.optimal
        );
        assert!(est.rate_at_optimal > 500.0);
        assert!((5..=8).contains(&est.degree), "degree tuning range");
    }

    #[test]
    fn rise_then_fall_curve_peaks() {
        // Over-allocation regime: goodput declines past the optimum.
        let pts: Vec<ScatterPoint> = (1..=40)
            .flat_map(|q| {
                let rate = if q <= 10 {
                    q as f64 * 100.0
                } else {
                    1000.0 - (q - 10) as f64 * 25.0
                };
                (0..5).map(move |k| ScatterPoint {
                    q: q as f64,
                    rate: rate + k as f64,
                })
            })
            .collect();
        let est = ScgModel::default().estimate(&pts).unwrap();
        assert!((8..=14).contains(&est.optimal), "got {}", est.optimal);
    }

    #[test]
    fn too_few_bins_yield_none() {
        let pts: Vec<ScatterPoint> = (1..=3)
            .map(|q| ScatterPoint {
                q: q as f64,
                rate: q as f64,
            })
            .collect();
        assert_eq!(ScgModel::default().estimate(&pts), None);
    }

    #[test]
    fn flat_scatter_yields_none() {
        let pts: Vec<ScatterPoint> = (1..=20)
            .map(|q| ScatterPoint {
                q: q as f64,
                rate: 100.0,
            })
            .collect();
        assert_eq!(ScgModel::default().estimate(&pts), None);
    }

    #[test]
    fn linear_unsaturated_scatter_yields_none() {
        // Concurrency never saturated the service: no knee → explore more.
        let pts = saturating_scatter(5, 50.0, 1000.0, 0.01);
        assert_eq!(ScgModel::default().estimate(&pts), None);
    }

    #[test]
    fn aggregation_averages_per_bin_and_drops_idle() {
        let pts = vec![
            ScatterPoint { q: 1.2, rate: 10.0 },
            ScatterPoint { q: 0.9, rate: 20.0 },
            ScatterPoint { q: 0.1, rate: 99.0 }, // idle-ish: dropped
            ScatterPoint { q: 2.0, rate: 30.0 },
        ];
        let model = ScgModel::new(ScgConfig {
            min_bin_samples: 1,
            ..Default::default()
        });
        assert_eq!(model.aggregate(&pts), vec![(1.0, 15.0), (2.0, 30.0)]);
        // The default config requires 3 samples per bin.
        let sparse = ScgModel::default().aggregate(&pts);
        assert!(sparse.is_empty(), "single-sample bins dropped: {sparse:?}");
    }

    #[test]
    fn threshold_changes_shift_the_knee() {
        // Emulate the paper's Fig. 7: with a tight threshold the goodput
        // peaks at lower concurrency and declines; with a loose one it
        // saturates later. The knee must move right as the threshold loosens.
        let tight: Vec<ScatterPoint> = (1..=30)
            .flat_map(|q| {
                let rate = if q <= 6 {
                    q as f64 * 150.0
                } else {
                    900.0 - (q - 6) as f64 * 40.0
                };
                (0..8).map(move |k| ScatterPoint {
                    q: q as f64,
                    rate: rate.max(0.0) + k as f64,
                })
            })
            .collect();
        let loose: Vec<ScatterPoint> = (1..=30)
            .flat_map(|q| {
                let rate = (q as f64).min(15.0) * 100.0;
                (0..8).map(move |k| ScatterPoint {
                    q: q as f64,
                    rate: rate + k as f64,
                })
            })
            .collect();
        let m = ScgModel::default();
        let k_tight = m.estimate(&tight).unwrap().optimal;
        let k_loose = m.estimate(&loose).unwrap().optimal;
        assert!(k_tight < k_loose, "tight {k_tight} vs loose {k_loose}");
    }
}
