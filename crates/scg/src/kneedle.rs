//! The Kneedle knee/elbow detector (Satopaa, Albrecht, Irwin, Raghavan:
//! "Finding a 'Kneedle' in a Haystack", ICDCS-W 2011) — the statistical
//! approach the paper applies to the concurrency–goodput curve (§3.3).

/// Which kind of inflection to look for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KneeDirection {
    /// A concave-increasing curve flattening out (the main-sequence curve's
    /// shape): detect where gains stop being worth the added concurrency.
    #[default]
    Knee,
    /// A convex-decreasing curve levelling off (an "elbow").
    Elbow,
}

/// Kneedle knee-point detection over a smoothed, sampled curve.
///
/// The algorithm: normalise the curve to the unit square, compute the
/// difference curve (`y − x` for knees, `x − y` for elbows), find its local
/// maxima, and confirm a maximum as the knee if the difference drops below
/// a sensitivity-dependent threshold before the next local maximum.
///
/// # Example
///
/// ```
/// use scg::Kneedle;
/// // y = min(x, 10): a sharp knee at x = 10.
/// let xs: Vec<f64> = (0..=30).map(f64::from).collect();
/// let ys: Vec<f64> = xs.iter().map(|&x| x.min(10.0)).collect();
/// let knee = Kneedle::default().detect(&xs, &ys).unwrap();
/// assert!((knee - 10.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Kneedle {
    /// Sensitivity `S`: how far the difference curve must fall below a
    /// local maximum before the knee is confirmed. Smaller is more eager.
    pub sensitivity: f64,
    /// Knee vs elbow.
    pub direction: KneeDirection,
}

impl Default for Kneedle {
    fn default() -> Self {
        Kneedle {
            sensitivity: 1.0,
            direction: KneeDirection::Knee,
        }
    }
}

impl Kneedle {
    /// Detects the knee x-coordinate of the curve `(xs, ys)`.
    ///
    /// Returns `None` for every degenerate input instead of panicking or
    /// propagating NaN from the normalisation divide: mismatched array
    /// lengths, fewer than three points, non-finite values, duplicate or
    /// unsorted `xs`, and flat curves. A returned knee is always finite and
    /// one of the supplied `xs`.
    pub fn detect(&self, xs: &[f64], ys: &[f64]) -> Option<f64> {
        if xs.len() != ys.len() {
            return None;
        }
        let n = xs.len();
        if n < 3 {
            return None;
        }
        if xs.iter().chain(ys).any(|v| !v.is_finite()) {
            return None;
        }
        if !xs.windows(2).all(|w| w[0] < w[1]) {
            return None; // duplicate or unsorted x: no well-defined curve
        }
        let (x_min, x_max) = (xs[0], xs[n - 1]);
        let y_min = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let y_max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if y_max - y_min <= 0.0 {
            return None; // flat curve: no knee
        }
        // Normalised difference curve.
        let diff: Vec<f64> = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let xn = (x - x_min) / (x_max - x_min);
                let yn = (y - y_min) / (y_max - y_min);
                match self.direction {
                    KneeDirection::Knee => yn - xn,
                    // Decreasing curves are handled by flipping y (the
                    // original paper's transform), turning the elbow into a
                    // knee of an increasing curve.
                    KneeDirection::Elbow => 1.0 - yn - xn,
                }
            })
            .collect();
        // Mean x-gap in normalised units (Kneedle's T term).
        let mean_gap = 1.0 / (n - 1) as f64;
        // Walk local maxima of the difference curve.
        let mut candidate: Option<(usize, f64)> = None; // (index, threshold)
        for i in 1..n - 1 {
            let is_lmx = diff[i] > diff[i - 1] && diff[i] >= diff[i + 1];
            if is_lmx && candidate.is_none_or(|(ci, _)| diff[i] > diff[ci]) {
                let threshold = diff[i] - self.sensitivity * mean_gap;
                candidate = Some((i, threshold));
            }
            if let Some((ci, threshold)) = candidate {
                if i > ci && diff[i] < threshold {
                    return Some(xs[ci]); // confirmed before reaching the end
                }
            }
        }
        // Confirm at the boundary: the difference curve ends below threshold.
        if let Some((ci, threshold)) = candidate {
            if diff[n - 1] < threshold || ci == n - 2 {
                return Some(xs[ci]);
            }
            // The global maximum is still a knee when it clearly dominates
            // the curve tail (e.g. goodput declines after the peak).
            if diff[ci] >= diff[n - 1] + self.sensitivity * mean_gap {
                return Some(xs[ci]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid(n: usize, f: impl Fn(f64) -> f64) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        (xs, ys)
    }

    #[test]
    fn sharp_knee_detected_exactly() {
        let (xs, ys) = grid(41, |x| x.min(15.0));
        let knee = Kneedle::default().detect(&xs, &ys).unwrap();
        assert!((knee - 15.0).abs() <= 1.0, "knee {knee}");
    }

    #[test]
    fn smooth_saturating_curve() {
        // y = 1 - exp(-x/5): Kneedle's canonical example has its knee
        // around x ≈ 5 (one time-constant).
        // Kneedle's knee is where the *normalised* slope crosses 1, which
        // for this domain (x up to 49) sits near x = 5·ln(49/5) ≈ 11.4.
        let (xs, ys) = grid(50, |x| 1.0 - (-x / 5.0).exp());
        let knee = Kneedle::default().detect(&xs, &ys).unwrap();
        assert!((8.0..15.0).contains(&knee), "knee {knee}");
    }

    #[test]
    fn rise_then_fall_peaks_near_maximum() {
        // Goodput-like: rises to x=20 then declines (over-allocation).
        let (xs, ys) = grid(50, |x| {
            if x <= 20.0 {
                x * 50.0
            } else {
                1000.0 - (x - 20.0) * 10.0
            }
        });
        let knee = Kneedle::default().detect(&xs, &ys).unwrap();
        assert!((15.0..=25.0).contains(&knee), "knee {knee}");
    }

    #[test]
    fn flat_and_linear_curves_have_no_knee() {
        let (xs, flat) = grid(20, |_| 5.0);
        assert_eq!(Kneedle::default().detect(&xs, &flat), None);
        let (xs, linear) = grid(20, |x| 2.0 * x);
        assert_eq!(Kneedle::default().detect(&xs, &linear), None);
    }

    #[test]
    fn elbow_direction_detects_decreasing_curves() {
        // Convex decreasing: fast drop then flat (e.g. error vs parameter).
        let (xs, ys) = grid(40, |x| (-x / 4.0).exp());
        let det = Kneedle {
            direction: KneeDirection::Elbow,
            ..Kneedle::default()
        };
        let elbow = det.detect(&xs, &ys).unwrap();
        // Mirror of the knee case: normalised slope magnitude crosses 1
        // near x = 4·ln(39/4) ≈ 9.1.
        assert!((6.0..12.0).contains(&elbow), "elbow {elbow}");
    }

    #[test]
    fn too_few_points_yield_none() {
        assert_eq!(Kneedle::default().detect(&[1.0, 2.0], &[1.0, 2.0]), None);
    }

    /// Regression: duplicate/unsorted `xs` and mismatched lengths used to
    /// panic via asserts, and non-finite samples flowed NaN through the
    /// normalisation divide. All degenerate inputs now return `None`.
    #[test]
    fn degenerate_inputs_yield_none() {
        let det = Kneedle::default();
        // Duplicate and unsorted x values.
        assert_eq!(det.detect(&[1.0, 1.0, 2.0], &[0.0, 1.0, 2.0]), None);
        assert_eq!(det.detect(&[3.0, 2.0, 1.0], &[0.0, 1.0, 2.0]), None);
        // Mismatched lengths.
        assert_eq!(det.detect(&[1.0, 2.0, 3.0], &[0.0, 1.0]), None);
        // Non-finite samples.
        assert_eq!(det.detect(&[1.0, 2.0, 3.0], &[0.0, f64::NAN, 2.0]), None);
        assert_eq!(
            det.detect(&[1.0, f64::INFINITY, 3.0], &[0.0, 1.0, 2.0]),
            None
        );
        // An all-NaN x axis is "flat" in no meaningful sense; still None.
        assert_eq!(det.detect(&[f64::NAN; 3], &[0.0, 1.0, 2.0]), None);
    }

    #[test]
    fn higher_sensitivity_is_more_conservative() {
        // Gentle curve with a mild knee: S=1 finds it, S=25 does not.
        let (xs, ys) = grid(30, |x| (x / 30.0).powf(0.6));
        let eager = Kneedle {
            sensitivity: 1.0,
            ..Kneedle::default()
        };
        let strict = Kneedle {
            sensitivity: 25.0,
            ..Kneedle::default()
        };
        assert!(eager.detect(&xs, &ys).is_some());
        assert_eq!(strict.detect(&xs, &ys), None);
    }

    proptest! {
        /// Any detected knee lies inside the sampled domain.
        #[test]
        fn prop_knee_in_domain(
            seed_ys in proptest::collection::vec(0.0f64..100.0, 5..60)
        ) {
            let xs: Vec<f64> = (0..seed_ys.len()).map(|i| i as f64).collect();
            if let Some(k) = Kneedle::default().detect(&xs, &seed_ys) {
                prop_assert!(k >= xs[0] && k <= *xs.last().unwrap());
            }
        }

        /// `detect` never returns a non-finite knee (and never panics), even
        /// when the samples include NaN/±∞ or the x axis is unsorted.
        #[test]
        fn prop_knee_is_always_finite(
            raw in proptest::collection::vec((-1e6f64..1e6, 0u8..10), 0..40),
            shuffle in 0u8..2,
        ) {
            // Tag 0 (one case in ten) poisons the sample with NaN.
            let ys: Vec<f64> = raw
                .iter()
                .map(|&(v, tag)| if tag == 0 { f64::NAN } else { v })
                .collect();
            let mut xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
            if shuffle == 1 {
                xs.reverse();
            }
            for det in [
                Kneedle::default(),
                Kneedle { direction: KneeDirection::Elbow, ..Kneedle::default() },
            ] {
                if let Some(k) = det.detect(&xs, &ys) {
                    prop_assert!(k.is_finite(), "non-finite knee {k}");
                }
            }
        }
    }
}
