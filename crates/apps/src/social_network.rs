//! The DeathStarBench Social Network topology (36 microservices, Fig. 2ii).

use cluster::Millicores;
use microsim::{Behavior, ServiceSpec, Stage, World, WorldConfig};
use sim_core::{Dist, SimRng};
use telemetry::{RequestTypeId, ServiceId};

/// Tunables of the Social Network build.
#[derive(Debug, Clone, Copy)]
pub struct SocialNetworkParams {
    /// Post Storage pod CPU limit in cores.
    pub post_storage_cores: u32,
    /// Home-Timeline → Post Storage Thrift `ClientPool` size — the tunable
    /// request-connection pool of Figs. 3(e–f), 9(c) and 12.
    pub home_timeline_conns: usize,
    /// Post Storage thread gate (Thrift worker threads; generous — the
    /// binding constraint is the upstream client pool).
    pub post_storage_threads: usize,
    /// Post Storage context-switch penalty.
    pub post_storage_csw: f64,
}

impl Default for SocialNetworkParams {
    fn default() -> Self {
        SocialNetworkParams {
            post_storage_cores: 2,
            home_timeline_conns: 10,
            post_storage_threads: 64,
            post_storage_csw: 0.04,
        }
    }
}

/// The built Social Network world.
///
/// Only the handles the experiments touch are exposed individually; the
/// full 36-service roster (logic services plus their Memcached / MongoDB /
/// Redis sidecars, as in Fig. 2ii) is reachable through
/// [`World::service_name`].
///
/// # Example
///
/// ```
/// use apps::SocialNetwork;
/// use sim_core::{SimRng, SimTime};
///
/// let mut sn = SocialNetwork::build(Default::default(), SimRng::seed_from(1));
/// sn.world.inject_at(SimTime::from_millis(1), sn.read_home_timeline_light);
/// assert_eq!(sn.world.run_until(SimTime::from_secs(2)).len(), 1);
/// ```
pub struct SocialNetwork {
    /// The simulated cluster.
    pub world: World,
    /// `nginx-web-server` (the edge).
    pub nginx: ServiceId,
    /// `home-timeline-service` (holds the tunable client pool).
    pub home_timeline: ServiceId,
    /// `post-storage-service` (the §5.3 critical service).
    pub post_storage: ServiceId,
    /// `compose-post-service`.
    pub compose_post: ServiceId,
    /// `user-timeline-service`.
    pub user_timeline: ServiceId,
    /// `social-graph-service`.
    pub social_graph: ServiceId,
    /// "GET /home-timeline" retrieving 2 posts (light computation).
    pub read_home_timeline_light: RequestTypeId,
    /// "GET /home-timeline" retrieving 10 posts (heavy computation — the
    /// post-drift request weight of Fig. 3f).
    pub read_home_timeline_heavy: RequestTypeId,
    /// "POST /compose".
    pub compose: RequestTypeId,
    /// "GET /user-timeline".
    pub read_user_timeline: RequestTypeId,
}

impl SocialNetwork {
    /// Builds the topology with one ready replica per service.
    pub fn build(params: SocialNetworkParams, rng: SimRng) -> SocialNetwork {
        Self::build_with_config(params, WorldConfig::default(), rng)
    }

    /// Builds with a custom world configuration.
    pub fn build_with_config(
        params: SocialNetworkParams,
        config: WorldConfig,
        rng: SimRng,
    ) -> SocialNetwork {
        let mut world = World::new(config, rng);
        // Fixed id layout (ids assigned in add_service order).
        let nginx = ServiceId(0);
        let home_timeline = ServiceId(1);
        let post_storage = ServiceId(2);
        let compose_post = ServiceId(3);
        let user_timeline = ServiceId(4);
        let social_graph = ServiceId(5);
        let user_svc = ServiceId(6);
        let url_shorten = ServiceId(7);
        let text_svc = ServiceId(8);
        let media_svc = ServiceId(9);
        let unique_id = ServiceId(10);
        let user_mention = ServiceId(11);
        let write_home_timeline = ServiceId(12);
        // Storage sidecars 13..
        let ht_redis = ServiceId(13);
        let ps_memcached = ServiceId(14);
        let ps_mongodb = ServiceId(15);
        let ut_redis = ServiceId(16);
        let ut_mongodb = ServiceId(17);
        let sg_redis = ServiceId(18);
        let sg_mongodb = ServiceId(19);

        let light = RequestTypeId(0);
        let heavy = RequestTypeId(1);
        let compose = RequestTypeId(2);
        let read_ut = RequestTypeId(3);
        let all_reads = [light, heavy, read_ut];

        // --- edge ---
        let s = world.add_service(
            ServiceSpec::new("nginx-web-server")
                .cpu(Millicores::from_cores(4))
                .threads(1024)
                .csw(0.005)
                .on(
                    light,
                    Behavior::tier(
                        Dist::lognormal_ms(0.3, 0.3),
                        home_timeline,
                        Dist::lognormal_ms(0.2, 0.3),
                    ),
                )
                .on(
                    heavy,
                    Behavior::tier(
                        Dist::lognormal_ms(0.3, 0.3),
                        home_timeline,
                        Dist::lognormal_ms(0.2, 0.3),
                    ),
                )
                .on(
                    compose,
                    Behavior::tier(
                        Dist::lognormal_ms(0.4, 0.3),
                        compose_post,
                        Dist::lognormal_ms(0.2, 0.3),
                    ),
                )
                .on(
                    read_ut,
                    Behavior::tier(
                        Dist::lognormal_ms(0.3, 0.3),
                        user_timeline,
                        Dist::lognormal_ms(0.2, 0.3),
                    ),
                ),
        );
        debug_assert_eq!(s, nginx);

        // --- home-timeline: checks its Redis, consults the social graph and
        // fetches posts from Post Storage through the bounded ClientPool ---
        let mut ht = ServiceSpec::new("home-timeline-service")
            .cpu(Millicores::from_cores(2))
            .threads(256)
            .csw(0.01)
            .conns(post_storage, params.home_timeline_conns);
        for rt in [light, heavy] {
            ht = ht.on(
                rt,
                Behavior::new(vec![
                    Stage::compute(Dist::lognormal_ms(0.5, 0.4)),
                    Stage::call(ht_redis),
                    Stage::fanout(vec![social_graph, post_storage]),
                    Stage::compute(Dist::lognormal_ms(0.4, 0.4)),
                ]),
            );
        }
        let s = world.add_service(ht);
        debug_assert_eq!(s, home_timeline);

        // --- post-storage: light vs heavy request weight; consults its
        // cache and database. A "heavy" read retrieves 10 posts instead of
        // 2: more local deserialisation CPU *and* more MongoDB round trips
        // per request, so each upstream connection is held far longer while
        // using proportionally less Post-Storage CPU — which is why the
        // optimal connection allocation grows after the drift (§2.3, §5.3).
        let ps_read = |work_ms: f64, mongo_trips: usize| {
            let mut stages = vec![
                Stage::compute(Dist::lognormal_ms(work_ms * 0.5, 0.4)),
                Stage::call(ps_memcached),
            ];
            for _ in 0..mongo_trips {
                stages.push(Stage::call(ps_mongodb));
            }
            stages.push(Stage::compute(Dist::lognormal_ms(work_ms * 0.5, 0.4)));
            Behavior::new(stages)
        };
        let s = world.add_service(
            ServiceSpec::new("post-storage-service")
                .cpu(Millicores::from_cores(params.post_storage_cores))
                .threads(params.post_storage_threads)
                .csw(params.post_storage_csw)
                .on(light, ps_read(1.0, 2)) // retrieve 2 posts
                .on(heavy, ps_read(2.0, 5)) // retrieve 10 posts
                .on(read_ut, ps_read(1.0, 2))
                .on(
                    compose,
                    Behavior::new(vec![
                        Stage::compute(Dist::lognormal_ms(0.8, 0.4)),
                        Stage::call(ps_mongodb),
                        Stage::compute(Dist::lognormal_ms(0.4, 0.4)),
                    ]),
                ),
        );
        debug_assert_eq!(s, post_storage);

        // --- compose-post: the write path's orchestrator ---
        let s = world.add_service(
            ServiceSpec::new("compose-post-service")
                .cpu(Millicores::from_cores(2))
                .threads(128)
                .csw(0.02)
                .on(
                    compose,
                    Behavior::new(vec![
                        Stage::compute(Dist::lognormal_ms(0.6, 0.4)),
                        Stage::fanout(vec![unique_id, text_svc, media_svc, user_svc]),
                        Stage::fanout(vec![post_storage, user_timeline, write_home_timeline]),
                        Stage::compute(Dist::lognormal_ms(0.4, 0.4)),
                    ]),
                ),
        );
        debug_assert_eq!(s, compose_post);

        // --- user-timeline ---
        let s = world.add_service(
            ServiceSpec::new("user-timeline-service")
                .cpu(Millicores::from_cores(2))
                .threads(128)
                .csw(0.02)
                .on(
                    read_ut,
                    Behavior::new(vec![
                        Stage::compute(Dist::lognormal_ms(0.5, 0.4)),
                        Stage::call(ut_redis),
                        Stage::call(ut_mongodb),
                        Stage::call(post_storage),
                        Stage::compute(Dist::lognormal_ms(0.3, 0.4)),
                    ]),
                )
                .on(
                    compose,
                    Behavior::new(vec![
                        Stage::compute(Dist::lognormal_ms(0.4, 0.4)),
                        Stage::call(ut_redis),
                        Stage::call(ut_mongodb),
                    ]),
                ),
        );
        debug_assert_eq!(s, user_timeline);

        // --- social-graph ---
        let mut sg = ServiceSpec::new("social-graph-service")
            .cpu(Millicores::from_cores(2))
            .threads(128)
            .csw(0.02);
        for rt in [light, heavy, compose] {
            sg = sg.on(
                rt,
                Behavior::new(vec![
                    Stage::compute(Dist::lognormal_ms(0.4, 0.4)),
                    Stage::call(sg_redis),
                    Stage::call(sg_mongodb),
                ]),
            );
        }
        let s = world.add_service(sg);
        debug_assert_eq!(s, social_graph);

        // --- compose-path helpers ---
        let mut helper = |name: &str, median_ms: f64, extra: Option<Vec<ServiceId>>| {
            let behavior = match extra {
                Some(targets) => Behavior::new(vec![
                    Stage::compute(Dist::lognormal_ms(median_ms, 0.4)),
                    Stage::fanout(targets),
                ]),
                None => Behavior::leaf(Dist::lognormal_ms(median_ms, 0.4)),
            };
            world.add_service(
                ServiceSpec::new(name)
                    .cpu(Millicores::from_cores(2))
                    .threads(128)
                    .csw(0.02)
                    .on(compose, behavior),
            )
        };
        let s = helper("user-service", 0.5, None);
        debug_assert_eq!(s, user_svc);
        let s = helper("url-shorten-service", 0.4, None);
        debug_assert_eq!(s, url_shorten);
        let s = helper("text-service", 0.8, Some(vec![url_shorten, user_mention]));
        debug_assert_eq!(s, text_svc);
        let s = helper("media-service", 0.6, None);
        debug_assert_eq!(s, media_svc);
        let s = helper("unique-id-service", 0.2, None);
        debug_assert_eq!(s, unique_id);
        let s = helper("user-mention-service", 0.4, None);
        debug_assert_eq!(s, user_mention);
        let s = helper(
            "write-home-timeline-service",
            0.6,
            Some(vec![social_graph, ht_redis]),
        );
        debug_assert_eq!(s, write_home_timeline);

        // --- storage sidecars (Memcached / MongoDB / Redis boxes of
        // Fig. 2ii). Each answers every request type that can reach it. ---
        let make_store = |name: &str, median_ms: f64, cores: u32, rtypes: &[RequestTypeId]| {
            let mut spec = ServiceSpec::new(name)
                .cpu(Millicores::from_cores(cores))
                .threads(256)
                .csw(0.01);
            for &rt in rtypes {
                spec = spec.on(rt, Behavior::leaf(Dist::lognormal_ms(median_ms, 0.35)));
            }
            spec
        };
        let everything = [light, heavy, compose, read_ut];
        // Post-storage's MongoDB gets 4 cores and answers the *per-post*
        // queries of a heavy read in cheap batched form (0.3 ms each vs a
        // 0.6 ms cold lookup): the drift experiments need Post Storage
        // itself (not its database) to stay the critical service when heavy
        // reads multiply the query count — in the paper, too, Post Storage
        // "routes more requests to downstream services" without the
        // database becoming the bottleneck.
        let ps_mongo_spec = make_store("post-storage-mongodb", 0.6, 4, &[light, compose, read_ut])
            .on(heavy, Behavior::leaf(Dist::lognormal_ms(0.3, 0.35)));
        for (expected, spec) in [
            (
                ht_redis,
                make_store("home-timeline-redis", 0.3, 2, &everything),
            ),
            (
                ps_memcached,
                make_store("post-storage-memcached", 0.25, 2, &all_reads),
            ),
            (ps_mongodb, ps_mongo_spec),
            (
                ut_redis,
                make_store("user-timeline-redis", 0.3, 2, &[compose, read_ut]),
            ),
            (
                ut_mongodb,
                make_store("user-timeline-mongodb", 0.8, 2, &[compose, read_ut]),
            ),
            (
                sg_redis,
                make_store("social-graph-redis", 0.3, 2, &everything),
            ),
            (
                sg_mongodb,
                make_store("social-graph-mongodb", 0.8, 2, &everything),
            ),
        ] {
            let s = world.add_service(spec);
            debug_assert_eq!(s, expected);
        }

        // --- remaining roster of Fig. 2ii (caches/stores of the helper
        // services, media pipeline, indexes) — present so the monitoring
        // plane sees the full 36-service deployment, lightly exercised via
        // the compose path. ---
        let mut aux = |name: &str, median_ms: f64| {
            world.add_service(
                ServiceSpec::new(name)
                    .cpu(Millicores::from_cores(1))
                    .threads(128)
                    .csw(0.01)
                    .on(compose, Behavior::leaf(Dist::lognormal_ms(median_ms, 0.3))),
            )
        };
        for (name, ms) in [
            ("user-memcached", 0.2),
            ("user-mongodb", 0.7),
            ("url-shorten-memcached", 0.2),
            ("url-shorten-mongodb", 0.7),
            ("media-memcached", 0.2),
            ("media-mongodb", 0.8),
            ("media-frontend", 0.4),
            ("compose-post-redis", 0.2),
            ("write-home-timeline-rabbitmq", 0.3),
            ("user-mention-memcached", 0.2),
            ("search-index-0", 0.5),
            ("search-index-1", 0.5),
            ("search-index-n", 0.5),
            ("search-service", 0.6),
            ("recommender-service", 0.7),
            ("ads-service", 0.5),
        ] {
            aux(name, ms);
        }

        let rt0 = world.add_request_type("GET /home-timeline (2 posts)", nginx);
        let rt1 = world.add_request_type("GET /home-timeline (10 posts)", nginx);
        let rt2 = world.add_request_type("POST /compose", nginx);
        let rt3 = world.add_request_type("GET /user-timeline", nginx);
        debug_assert_eq!((rt0, rt1, rt2, rt3), (light, heavy, compose, read_ut));

        for idx in 0..world.service_count() {
            let pod = world
                .add_replica(ServiceId(idx as u32))
                .expect("default node fits the base topology");
            world.make_ready(pod);
        }

        SocialNetwork {
            world,
            nginx,
            home_timeline,
            post_storage,
            compose_post,
            user_timeline,
            social_graph,
            read_home_timeline_light: light,
            read_home_timeline_heavy: heavy,
            compose,
            read_user_timeline: read_ut,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sn() -> SocialNetwork {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(100),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        SocialNetwork::build_with_config(Default::default(), cfg, SimRng::seed_from(3))
    }

    #[test]
    fn roster_has_thirty_six_services() {
        let s = sn();
        assert_eq!(s.world.service_count(), 36);
    }

    #[test]
    fn read_home_timeline_touches_post_storage() {
        let mut s = sn();
        s.world.inject_at(t(1), s.read_home_timeline_light);
        let done = s.world.run_until(t(1_000));
        assert_eq!(done.len(), 1);
        let trace = s.world.warehouse().iter().next().unwrap();
        let names: Vec<&str> = trace
            .spans
            .iter()
            .map(|sp| s.world.service_name(sp.service))
            .collect();
        for expected in [
            "nginx-web-server",
            "home-timeline-service",
            "post-storage-service",
            "social-graph-service",
            "post-storage-memcached",
            "post-storage-mongodb",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn heavy_requests_are_slower_than_light() {
        let rt_of = |rt_pick: fn(&SocialNetwork) -> RequestTypeId| {
            let mut s = sn();
            let rt = rt_pick(&s);
            let mut total = 0u64;
            for i in 0..50 {
                s.world.inject_at(t(1 + i * 40), rt);
            }
            for c in s.world.run_until(t(10_000)) {
                total += c.response_time.as_millis();
            }
            total / 50
        };
        let light = rt_of(|s| s.read_home_timeline_light);
        let heavy = rt_of(|s| s.read_home_timeline_heavy);
        assert!(
            heavy as f64 > light as f64 * 1.25,
            "heavy ({heavy} ms) must dominate light ({light} ms)"
        );
    }

    #[test]
    fn compose_fans_out_across_the_write_path() {
        let mut s = sn();
        s.world.inject_at(t(1), s.compose);
        let done = s.world.run_until(t(1_000));
        assert_eq!(done.len(), 1);
        let trace = s.world.warehouse().iter().next().unwrap();
        let names: Vec<&str> = trace
            .spans
            .iter()
            .map(|sp| s.world.service_name(sp.service))
            .collect();
        for expected in [
            "compose-post-service",
            "unique-id-service",
            "text-service",
            "url-shorten-service",
            "user-mention-service",
            "media-service",
            "user-service",
            "post-storage-service",
            "user-timeline-service",
            "write-home-timeline-service",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn client_pool_limits_post_storage_concurrency() {
        let mut s = sn();
        // Flood read traffic: Post Storage in-flight never exceeds the
        // Home-Timeline client pool (10) + user-timeline path traffic (0
        // here, only light reads injected).
        for _ in 0..400 {
            s.world.inject_at(t(1), s.read_home_timeline_light);
        }
        let mut peak = 0usize;
        for step in 0..500 {
            s.world.run_until(t(2 + step * 2));
            peak = peak.max(s.world.conns_in_use(s.home_timeline, s.post_storage));
        }
        assert!(peak <= 10, "client pool must cap outstanding calls: {peak}");
        assert!(peak >= 9, "flood should saturate the pool: {peak}");
    }

    #[test]
    fn user_timeline_read_works() {
        let mut s = sn();
        s.world.inject_at(t(1), s.read_user_timeline);
        assert_eq!(s.world.run_until(t(1_000)).len(), 1);
    }
}
