//! The Sock Shop topology (11 microservices, Fig. 2i of the paper).

use cluster::Millicores;
use microsim::{Behavior, ServiceSpec, Stage, World, WorldConfig};
use sim_core::{Dist, SimRng};
use telemetry::{RequestTypeId, ServiceId};

/// Tunables of the Sock Shop build — the knobs the paper's experiments
/// vary.
#[derive(Debug, Clone, Copy)]
pub struct SockShopParams {
    /// Cart pod CPU limit in cores (the paper scales 2 ↔ 4).
    pub cart_cores: u32,
    /// Cart thread-pool size (the SpringBoot embedded pool).
    pub cart_threads: usize,
    /// Cart context-switch penalty κ.
    pub cart_csw: f64,
    /// Catalogue → Catalogue-db connection-pool size (the Golang
    /// `database/sql` pool).
    pub catalogue_db_conns: usize,
    /// Catalogue pod CPU limit in cores.
    pub catalogue_cores: u32,
    /// Catalogue-db pod CPU limit in cores. Defaults to 4 so that the
    /// *connection pool* (not the database's CPU) is the experimental
    /// variable, as in the paper's Fig. 1 / Fig. 9(b) setups.
    pub catalogue_db_cores: u32,
    /// Catalogue-db concurrency penalty κ. Databases degrade markedly
    /// under many concurrent sessions (buffer-pool and latch contention in
    /// InnoDB-style engines), which is what makes connection-pool
    /// over-allocation harmful in the paper's Fig. 1.
    pub catalogue_db_csw: f64,
}

impl Default for SockShopParams {
    fn default() -> Self {
        SockShopParams {
            cart_cores: 2,
            cart_threads: 5,
            cart_csw: 0.04,
            catalogue_db_conns: 10,
            catalogue_cores: 2,
            catalogue_db_cores: 4,
            catalogue_db_csw: 0.02,
        }
    }
}

/// The built Sock Shop world: service and request-type handles.
///
/// # Example
///
/// ```
/// use apps::SockShop;
/// use sim_core::{SimRng, SimTime};
///
/// let mut shop = SockShop::build(Default::default(), SimRng::seed_from(1));
/// shop.world.inject_at(SimTime::from_millis(1), shop.get_cart);
/// let done = shop.world.run_until(SimTime::from_secs(2));
/// assert_eq!(done.len(), 1);
/// ```
pub struct SockShop {
    /// The simulated cluster.
    pub world: World,
    /// `front-end` (the edge router).
    pub front_end: ServiceId,
    /// `cart` (SpringBoot; tunable thread pool).
    pub cart: ServiceId,
    /// `cart-db`.
    pub cart_db: ServiceId,
    /// `catalogue` (Golang; tunable DB connection pool).
    pub catalogue: ServiceId,
    /// `catalogue-db`.
    pub catalogue_db: ServiceId,
    /// `user`.
    pub user: ServiceId,
    /// `user-db`.
    pub user_db: ServiceId,
    /// `order`.
    pub order: ServiceId,
    /// `order-db`.
    pub order_db: ServiceId,
    /// `payment`.
    pub payment: ServiceId,
    /// `shipping`.
    pub shipping: ServiceId,
    /// `queue-master`.
    pub queue_master: ServiceId,
    /// "GET /cart" — the Cart-path request (critical path 1 of Fig. 5).
    pub get_cart: RequestTypeId,
    /// "GET /catalogue" — the Catalogue-path request with the parallel
    /// Cart/Catalogue fan-out of Fig. 5.
    pub get_catalogue: RequestTypeId,
    /// "POST /orders" — the order-placement chain.
    pub place_order: RequestTypeId,
}

impl SockShop {
    /// Builds the topology with one ready replica per service.
    pub fn build(params: SockShopParams, rng: SimRng) -> SockShop {
        Self::build_with_config(params, WorldConfig::default(), rng)
    }

    /// Builds with a custom world configuration (tests use zero network
    /// delay for exact timing).
    pub fn build_with_config(params: SockShopParams, config: WorldConfig, rng: SimRng) -> SockShop {
        let mut world = World::new(config, rng);
        // Service ids are assigned in declaration order; request behaviours
        // reference downstream ids, so fix the layout first.
        let front_end = ServiceId(0);
        let cart = ServiceId(1);
        let cart_db = ServiceId(2);
        let catalogue = ServiceId(3);
        let catalogue_db = ServiceId(4);
        let user = ServiceId(5);
        let user_db = ServiceId(6);
        let order = ServiceId(7);
        let order_db = ServiceId(8);
        let payment = ServiceId(9);
        let shipping = ServiceId(10);
        let queue_master = ServiceId(11);
        let get_cart = RequestTypeId(0);
        let get_catalogue = RequestTypeId(1);
        let place_order = RequestTypeId(2);

        // front-end: NodeJS edge router, CPU-light, effectively unbounded
        // concurrency (async I/O).
        let fe = world.add_service(
            ServiceSpec::new("front-end")
                .cpu(Millicores::from_cores(4))
                .threads(512)
                .csw(0.005)
                .on(
                    get_cart,
                    Behavior::tier(
                        Dist::lognormal_ms(0.4, 0.3),
                        cart,
                        Dist::lognormal_ms(0.3, 0.3),
                    ),
                )
                .on(
                    get_catalogue,
                    Behavior::new(vec![
                        Stage::compute(Dist::lognormal_ms(0.4, 0.3)),
                        Stage::fanout(vec![cart, catalogue]),
                        Stage::compute(Dist::lognormal_ms(0.3, 0.3)),
                    ]),
                )
                .on(
                    place_order,
                    Behavior::tier(
                        Dist::lognormal_ms(0.5, 0.3),
                        order,
                        Dist::lognormal_ms(0.3, 0.3),
                    ),
                ),
        );
        debug_assert_eq!(fe, front_end);

        // cart: SpringBoot, synchronous servlet threads — THE tunable
        // thread pool of Figs. 3, 9(a), 10, 11.
        let c = world.add_service(
            ServiceSpec::new("cart")
                .cpu(Millicores::from_cores(params.cart_cores))
                .threads(params.cart_threads)
                .csw(params.cart_csw)
                .on(
                    get_cart,
                    Behavior::tier(
                        Dist::lognormal_ms(1.5, 0.4),
                        cart_db,
                        Dist::lognormal_ms(1.0, 0.4),
                    ),
                )
                .on(
                    get_catalogue,
                    Behavior::tier(
                        Dist::lognormal_ms(0.8, 0.4),
                        cart_db,
                        Dist::lognormal_ms(0.4, 0.4),
                    ),
                )
                .on(
                    place_order,
                    Behavior::tier(
                        Dist::lognormal_ms(0.6, 0.4),
                        cart_db,
                        Dist::lognormal_ms(0.4, 0.4),
                    ),
                ),
        );
        debug_assert_eq!(c, cart);

        let leaf = |name: &str, median_ms: f64, rtypes: &[RequestTypeId]| {
            let mut spec = ServiceSpec::new(name)
                .cpu(Millicores::from_cores(2))
                .threads(64)
                .csw(0.02);
            for &rt in rtypes {
                spec = spec.on(rt, Behavior::leaf(Dist::lognormal_ms(median_ms, 0.4)));
            }
            spec
        };

        let cdb = world.add_service(leaf(
            "cart-db",
            0.8,
            &[get_cart, get_catalogue, place_order],
        ));
        debug_assert_eq!(cdb, cart_db);

        // catalogue: Golang — async goroutines (huge thread gate), but a
        // bounded SQL connection pool toward catalogue-db: THE tunable
        // connection pool of Figs. 1 and 9(b).
        let cat = world.add_service(
            ServiceSpec::new("catalogue")
                .cpu(Millicores::from_cores(params.catalogue_cores))
                .threads(512)
                .csw(0.01)
                .conns(catalogue_db, params.catalogue_db_conns)
                .on(
                    get_catalogue,
                    Behavior::tier(
                        Dist::lognormal_ms(1.0, 0.4),
                        catalogue_db,
                        Dist::lognormal_ms(0.8, 0.4),
                    ),
                ),
        );
        debug_assert_eq!(cat, catalogue);

        let catdb = world.add_service(
            leaf("catalogue-db", 2.5, &[get_catalogue])
                .cpu(Millicores::from_cores(params.catalogue_db_cores))
                .csw(params.catalogue_db_csw),
        );
        debug_assert_eq!(catdb, catalogue_db);

        let u = world.add_service(
            ServiceSpec::new("user")
                .cpu(Millicores::from_cores(2))
                .threads(64)
                .csw(0.02)
                .on(
                    place_order,
                    Behavior::tier(
                        Dist::lognormal_ms(0.6, 0.4),
                        user_db,
                        Dist::lognormal_ms(0.3, 0.4),
                    ),
                ),
        );
        debug_assert_eq!(u, user);
        let udb = world.add_service(leaf("user-db", 0.7, &[place_order]));
        debug_assert_eq!(udb, user_db);

        // order: orchestrates user+payment (parallel), then cart, then
        // shipping.
        let o = world.add_service(
            ServiceSpec::new("order")
                .cpu(Millicores::from_cores(2))
                .threads(64)
                .csw(0.02)
                .on(
                    place_order,
                    Behavior::new(vec![
                        Stage::compute(Dist::lognormal_ms(0.8, 0.4)),
                        // The order service pulls the cart and checks the
                        // user/payment in parallel before persisting.
                        Stage::fanout(vec![user, payment, cart]),
                        Stage::call(order_db),
                        Stage::call(shipping),
                        Stage::compute(Dist::lognormal_ms(0.5, 0.4)),
                    ]),
                ),
        );
        debug_assert_eq!(o, order);
        let odb = world.add_service(leaf("order-db", 0.9, &[place_order]));
        debug_assert_eq!(odb, order_db);
        let pay = world.add_service(leaf("payment", 0.5, &[place_order]));
        debug_assert_eq!(pay, payment);

        let ship = world.add_service(
            ServiceSpec::new("shipping")
                .cpu(Millicores::from_cores(2))
                .threads(64)
                .csw(0.02)
                .on(
                    place_order,
                    Behavior::tier(
                        Dist::lognormal_ms(0.5, 0.4),
                        queue_master,
                        Dist::lognormal_ms(0.2, 0.4),
                    ),
                ),
        );
        debug_assert_eq!(ship, shipping);
        let qm = world.add_service(leaf("queue-master", 0.4, &[place_order]));
        debug_assert_eq!(qm, queue_master);

        let rt0 = world.add_request_type("GET /cart", front_end);
        let rt1 = world.add_request_type("GET /catalogue", front_end);
        let rt2 = world.add_request_type("POST /orders", front_end);
        debug_assert_eq!((rt0, rt1, rt2), (get_cart, get_catalogue, place_order));

        for idx in 0..world.service_count() {
            let pod = world
                .add_replica(ServiceId(idx as u32))
                .expect("default node fits the base topology");
            world.make_ready(pod);
        }

        SockShop {
            world,
            front_end,
            cart,
            cart_db,
            catalogue,
            catalogue_db,
            user,
            user_db,
            order,
            order_db,
            payment,
            shipping,
            queue_master,
            get_cart,
            get_catalogue,
            place_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn shop() -> SockShop {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(100),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        SockShop::build_with_config(Default::default(), cfg, SimRng::seed_from(1))
    }

    #[test]
    fn all_eleven_plus_edge_services_exist() {
        let s = shop();
        assert_eq!(s.world.service_count(), 12);
        assert_eq!(s.world.service_name(s.cart), "cart");
        assert_eq!(s.world.service_name(s.queue_master), "queue-master");
    }

    #[test]
    fn cart_request_traverses_front_cart_db() {
        let mut s = shop();
        s.world.inject_at(t(1), s.get_cart);
        let done = s.world.run_until(t(1_000));
        assert_eq!(done.len(), 1);
        let trace = s.world.warehouse().iter().next().unwrap();
        let services: Vec<&str> = trace
            .spans
            .iter()
            .map(|sp| s.world.service_name(sp.service))
            .collect();
        assert_eq!(services, ["front-end", "cart", "cart-db"]);
        // A light request completes in single-digit milliseconds.
        assert!(done[0].response_time.as_millis() < 20);
    }

    #[test]
    fn catalogue_request_fans_out_like_figure_5() {
        let mut s = shop();
        s.world.inject_at(t(1), s.get_catalogue);
        s.world.run_until(t(1_000));
        let trace = s.world.warehouse().iter().next().unwrap();
        let names: Vec<&str> = trace
            .spans
            .iter()
            .map(|sp| s.world.service_name(sp.service))
            .collect();
        assert!(names.contains(&"cart"));
        assert!(names.contains(&"catalogue"));
        assert!(names.contains(&"catalogue-db"));
        // The critical path follows the slower catalogue branch.
        let path = telemetry::critical_path(trace);
        let path_names: Vec<&str> = path
            .iter()
            .map(|h| s.world.service_name(h.service))
            .collect();
        assert_eq!(path_names, ["front-end", "catalogue", "catalogue-db"]);
    }

    #[test]
    fn order_request_reaches_the_whole_chain() {
        let mut s = shop();
        s.world.inject_at(t(1), s.place_order);
        let done = s.world.run_until(t(1_000));
        assert_eq!(done.len(), 1);
        let trace = s.world.warehouse().iter().next().unwrap();
        let mut names: Vec<&str> = trace
            .spans
            .iter()
            .map(|sp| s.world.service_name(sp.service))
            .collect();
        names.sort_unstable();
        for expected in [
            "front-end",
            "order",
            "user",
            "user-db",
            "payment",
            "order-db",
            "shipping",
            "queue-master",
            "cart",
            "cart-db",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn cart_thread_pool_is_the_configured_knob() {
        let s = shop();
        assert_eq!(s.world.thread_limit(s.cart), 5);
        assert_eq!(s.world.conn_limit(s.catalogue, s.catalogue_db), Some(10));
        assert_eq!(s.world.cpu_limit(s.cart), Millicores::from_cores(2));
    }

    #[test]
    fn sustained_cart_load_is_served() {
        let mut s = shop();
        for i in 0..2_000 {
            s.world.inject_at(t(1 + i * 2), s.get_cart); // 500 rps for 4 s
        }
        let done = s.world.run_until(t(20_000));
        assert_eq!(done.len(), 2_000);
        assert_eq!(s.world.dropped(), 0);
    }
}
