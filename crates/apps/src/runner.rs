//! The scenario runner: closed-loop workload × controller × gauge sampling.

use microsim::World;
use serde::Serialize;
use sim_core::{SimDuration, SimTime};
use sora_core::{Controller, UtilizationProbe};
use std::collections::HashMap;
use telemetry::{RequestId, ServiceId};
use workload::{Mix, UserAction, UserPool};

/// What to record each sample period (the panels of Figs. 10–12).
#[derive(Debug, Clone, Copy)]
pub struct Watch {
    /// The service whose CPU utilisation / limit / replica count and
    /// running threads are recorded.
    pub service: ServiceId,
    /// Optionally, a connection pool (`caller → target`) whose in-use and
    /// established counts are recorded.
    pub conns: Option<(ServiceId, ServiceId)>,
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Controller invocation period (Kubernetes' default control grid is
    /// 15 s, which the paper adopts).
    pub control_period: SimDuration,
    /// Gauge sampling period (1 s in the paper's timeline figures).
    pub sample_period: SimDuration,
    /// Goodput threshold used in reports (e.g. 400 ms in Table 2).
    pub report_rtt: SimDuration,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            control_period: SimDuration::from_secs(15),
            sample_period: SimDuration::from_secs(1),
            report_rtt: SimDuration::from_millis(400),
        }
    }
}

/// One gauge sample (a row of the timeline panels).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SampleRow {
    /// Sample time in seconds.
    pub t_secs: f64,
    /// Watched service CPU utilisation (0..1 of its limit).
    pub utilization: f64,
    /// Watched service CPU limit in millicores.
    pub cpu_limit_mc: u32,
    /// Ready replicas of the watched service.
    pub replicas: usize,
    /// Threads in service across replicas ("Running Threads").
    pub running_threads: usize,
    /// Per-replica thread-pool limit.
    pub thread_limit: usize,
    /// Connections in use (0 when no pool watched).
    pub conns_in_use: usize,
    /// Established connections = pool size × caller replicas (0 when no
    /// pool watched).
    pub conns_established: usize,
}

/// End-of-run summary (the rows of Tables 2 and 3).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Summary {
    /// Completed requests.
    pub completed: u64,
    /// Requests dropped without a response.
    pub dropped: u64,
    /// Drops broken down by cause.
    pub drop_breakdown: microsim::DropBreakdown,
    /// Mean response time in milliseconds.
    pub mean_rt_ms: f64,
    /// 95th percentile response time in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile response time in milliseconds.
    pub p99_ms: f64,
    /// Average goodput (completions within the report threshold) in
    /// requests/second over the run.
    pub goodput_rps: f64,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunResult {
    /// Gauge samples, one per sample period.
    pub timeline: Vec<SampleRow>,
    /// Per-second goodput (requests/second within the report threshold).
    pub goodput_timeline: Vec<(f64, f64)>,
    /// Per-second mean response time (milliseconds).
    pub rt_timeline: Vec<(f64, f64)>,
    /// Client retry counters (all zero unless the pool has a
    /// [`workload::RetryPolicy`]).
    pub retry: workload::RetryStats,
    /// The run summary.
    pub summary: Summary,
}

/// Drives a closed-loop [`UserPool`] against a world, invoking `controller`
/// on the control grid and sampling gauges on the sample grid.
///
/// The request mix can change mid-run (`mix_schedule`: `(from, mix)` pairs,
/// later entries override earlier ones) — the §5.3 request-type drift.
pub struct Scenario {
    config: ScenarioConfig,
    pool: UserPool,
    mix_schedule: Vec<(SimTime, Mix)>,
    watch: Watch,
    probe: UtilizationProbe,
}

impl Scenario {
    /// Creates a scenario with a single, constant request mix.
    pub fn new(config: ScenarioConfig, pool: UserPool, mix: Mix, watch: Watch) -> Self {
        Scenario {
            config,
            pool,
            mix_schedule: vec![(SimTime::ZERO, mix)],
            watch,
            probe: UtilizationProbe::new(),
        }
    }

    /// Adds a mix switch at `from` (used for state-drift experiments).
    pub fn with_mix_change(mut self, from: SimTime, mix: Mix) -> Self {
        self.mix_schedule.push((from, mix));
        self.mix_schedule.sort_by_key(|&(t, _)| t);
        self
    }

    /// Converts the scenario into a [`ScenarioStepper`], the incremental
    /// driver behind live `sora-server` sessions. Stepping to
    /// [`SimTime::MAX`] and finishing is operation-for-operation identical
    /// to [`Scenario::run`].
    pub fn into_stepper(self) -> ScenarioStepper {
        let next_sample = self.config.sample_period;
        let next_control = self.config.control_period;
        ScenarioStepper {
            config: self.config,
            pool: self.pool,
            mix_schedule: self.mix_schedule,
            watch: self.watch,
            probe: self.probe,
            rng: sim_core::SimRng::seed_from(0xC0FFEE),
            user_of: HashMap::new(),
            timeline: Vec::new(),
            next_sample,
            next_control,
            now: SimTime::ZERO,
            workload_done: false,
            done_scratch: Vec::new(),
        }
    }

    /// Runs the scenario to the end of the user pool's trace.
    pub fn run(self, world: &mut World, controller: &mut dyn Controller) -> RunResult {
        self.into_stepper().finish(world, controller)
    }
}

/// Selects the mix active at `t`. A free function (not a method) so the
/// stepper can sample it while holding a mutable borrow of its own RNG.
fn mix_at(schedule: &[(SimTime, Mix)], t: SimTime) -> &Mix {
    schedule
        .iter()
        .rev()
        .find(|&&(from, _)| from <= t)
        .map(|(_, m)| m)
        .expect("schedule starts at time zero")
}

/// An incrementally-driven [`Scenario`]: the same closed-loop run, pausable
/// at simulated-time targets. `sora-server` live sessions use this to
/// interleave wire requests (telemetry snapshots, controller status) with
/// simulation progress.
///
/// Pauses happen only *between* fully-executed pool actions — the pool's
/// destructive `next_action` is never polled until the previous action
/// completed — so any sequence of [`step_until`] calls followed by
/// [`finish`] performs exactly the operations `Scenario::run` performs, and
/// produces byte-identical results.
///
/// [`step_until`]: ScenarioStepper::step_until
/// [`finish`]: ScenarioStepper::finish
pub struct ScenarioStepper {
    config: ScenarioConfig,
    pool: UserPool,
    mix_schedule: Vec<(SimTime, Mix)>,
    watch: Watch,
    probe: UtilizationProbe,
    rng: sim_core::SimRng,
    user_of: HashMap<RequestId, u64>,
    timeline: Vec<SampleRow>,
    next_sample: SimDuration,
    next_control: SimDuration,
    now: SimTime,
    workload_done: bool,
    /// Reusable completion buffer for `World::run_until_into`, so the
    /// per-action simulation steps never allocate a fresh `Vec`.
    done_scratch: Vec<microsim::Completion>,
}

impl ScenarioStepper {
    /// The workload clock: how far the closed loop has driven the run.
    /// (The world clock can trail this slightly between actions.)
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether the user pool has finished its trace (only [`finish`] remains).
    ///
    /// [`finish`]: ScenarioStepper::finish
    pub fn workload_done(&self) -> bool {
        self.workload_done
    }

    /// Gauge samples recorded so far.
    pub fn samples(&self) -> &[SampleRow] {
        &self.timeline
    }

    /// The goodput threshold the scenario reports against.
    pub fn report_rtt(&self) -> SimDuration {
        self.config.report_rtt
    }

    /// Advances the run until the workload clock reaches `target` (or the
    /// trace ends). Returns `true` once the workload is finished.
    ///
    /// Pauses only between fully-executed actions, so the clock may
    /// overshoot `target` by up to one action; re-invoking with the same
    /// target is then a no-op.
    pub fn step_until(
        &mut self,
        world: &mut World,
        controller: &mut dyn Controller,
        target: SimTime,
    ) -> bool {
        if self.workload_done {
            return true;
        }
        loop {
            // Fire any control/sample ticks we have reached.
            let tick = SimTime::ZERO + self.next_sample.min(self.next_control);
            if tick <= self.now {
                world.run_until_into(tick, &mut self.done_scratch);
                self.handle_done(world);
                if SimTime::ZERO + self.next_control == tick {
                    controller.control(world, tick);
                    self.next_control += self.config.control_period;
                }
                if SimTime::ZERO + self.next_sample == tick {
                    let row = self.sample(world, tick);
                    self.timeline.push(row);
                    self.next_sample += self.config.sample_period;
                }
                continue;
            }
            // Pause point: every tick at or before `now` has fired and no
            // action is half-done, so resuming later continues the exact
            // operation sequence of an uninterrupted run.
            if self.now >= target {
                return false;
            }
            match self.pool.next_action(self.now) {
                UserAction::Send { at, user } => {
                    let bounded = at.min(tick);
                    if bounded < at {
                        // A grid tick falls before the send: process it first.
                        self.now = bounded;
                        continue;
                    }
                    world.run_until_into(at, &mut self.done_scratch);
                    self.handle_done(world);
                    let rtype = mix_at(&self.mix_schedule, at).sample(&mut self.rng);
                    let id = world.inject_at(at, rtype);
                    self.user_of.insert(id, user);
                    self.now = at;
                }
                UserAction::Idle { until } => {
                    let until = until.min(tick);
                    world.run_until_into(until, &mut self.done_scratch);
                    self.handle_done(world);
                    self.now = until;
                }
                UserAction::Finished => {
                    self.workload_done = true;
                    return true;
                }
            }
        }
    }

    /// Runs the remaining trace (if any), drains in-flight requests, and
    /// builds the [`RunResult`].
    pub fn finish(mut self, world: &mut World, controller: &mut dyn Controller) -> RunResult {
        self.step_until(world, controller, SimTime::MAX);
        // Drain whatever is still in flight.
        let end = self.now + SimDuration::from_secs(30);
        world.run_until_into(end, &mut self.done_scratch);
        self.handle_done(world);

        // Under auditing every scenario must finish with a clean ledger on
        // both sides of the client/world seam. Audit state never enters
        // RunResult: the serialized outputs stay byte-identical to
        // audit-off builds.
        #[cfg(feature = "audit")]
        {
            assert_eq!(
                world.audit().total(),
                0,
                "world invariant violations: {}",
                world.audit().summary()
            );
            assert_eq!(
                self.pool.audit().total(),
                0,
                "retry-budget violations: {}",
                self.pool.audit().summary()
            );
        }

        let client = world.client();
        let run_end = self.now;
        let goodput_timeline: Vec<(f64, f64)> = client
            .goodput_timeline(self.config.report_rtt)
            .into_iter()
            .filter(|&(t, _)| t < run_end)
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect();
        let rt_timeline: Vec<(f64, f64)> = client
            .response_time_timeline()
            .into_iter()
            .filter(|&(t, _)| t < run_end)
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect();
        let summary = Summary {
            completed: client.total(),
            dropped: world.dropped(),
            drop_breakdown: world.drop_breakdown(),
            mean_rt_ms: client
                .mean_response_time()
                .map_or(0.0, |d| d.as_millis_f64()),
            p95_ms: client.percentile(95.0).map_or(0.0, |d| d.as_millis_f64()),
            p99_ms: client.percentile(99.0).map_or(0.0, |d| d.as_millis_f64()),
            goodput_rps: if run_end > SimTime::ZERO {
                client.goodput_rate(SimTime::ZERO, run_end, self.config.report_rtt)
            } else {
                0.0
            },
        };
        RunResult {
            timeline: self.timeline,
            goodput_timeline,
            rt_timeline,
            retry: self.pool.retry_stats(),
            summary,
        }
    }

    /// Routes drained completions and drops back to the user pool.
    fn handle_done(&mut self, world: &mut World) {
        for c in self.done_scratch.drain(..) {
            if let Some(user) = self.user_of.remove(&c.request) {
                self.pool.on_completion(c.completed, user);
            }
        }
        for (dropped, _reason) in world.drain_dropped() {
            if let Some(user) = self.user_of.remove(&dropped) {
                // The client sees an error "now"; approximate with the
                // world clock.
                self.pool.on_drop(world.now(), user);
            }
        }
    }

    fn sample(&mut self, world: &mut World, now: SimTime) -> SampleRow {
        let svc = self.watch.service;
        let (conns_in_use, conns_established) = match self.watch.conns {
            Some((caller, target)) => (
                world.conns_in_use(caller, target),
                world.conns_established(caller, target),
            ),
            None => (0, 0),
        };
        SampleRow {
            t_secs: now.as_secs_f64(),
            utilization: self.probe.read(world, svc, now),
            cpu_limit_mc: world.cpu_limit(svc).get(),
            replicas: world.ready_replicas(svc).len(),
            running_threads: world.running_threads(svc),
            thread_limit: world.thread_limit(svc),
            conns_in_use,
            conns_established,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SockShop, SockShopParams};
    use sim_core::{Dist, SimRng};
    use sora_core::NullController;
    use workload::{RateCurve, TraceShape};

    fn scenario(secs: u64, users: f64) -> (SockShop, Scenario) {
        let shop = SockShop::build(SockShopParams::default(), SimRng::seed_from(5));
        let curve = RateCurve::new(TraceShape::DualPhase, users, SimDuration::from_secs(secs));
        let pool = UserPool::new(curve, Dist::exponential_ms(1_000.0), SimRng::seed_from(9));
        let watch = Watch {
            service: shop.cart,
            conns: None,
        };
        let mix = Mix::single(shop.get_cart);
        let sc = Scenario::new(
            ScenarioConfig {
                report_rtt: SimDuration::from_millis(400),
                ..Default::default()
            },
            pool,
            mix,
            watch,
        );
        (shop, sc)
    }

    #[test]
    fn runs_a_short_trace_end_to_end() {
        let (mut shop, sc) = scenario(60, 200.0);
        let mut ctl = NullController;
        let res = sc.run(&mut shop.world, &mut ctl);
        // 60 one-second samples (the sample at t=60 may or may not land).
        assert!(
            (59..=61).contains(&res.timeline.len()),
            "{}",
            res.timeline.len()
        );
        assert!(
            res.summary.completed > 2_000,
            "closed loop cycles: {:?}",
            res.summary
        );
        assert_eq!(res.summary.dropped, 0);
        assert!(res.summary.p99_ms >= res.summary.p95_ms);
        assert!(res.summary.goodput_rps > 0.0);
        // Dual phase: second-half goodput exceeds first half.
        let half = res.goodput_timeline.len() / 2;
        let first: f64 = res.goodput_timeline[..half].iter().map(|p| p.1).sum();
        let second: f64 = res.goodput_timeline[half..].iter().map(|p| p.1).sum();
        assert!(
            second > first * 1.3,
            "dual-phase load shape: {first} vs {second}"
        );
    }

    #[test]
    fn mix_changes_take_effect_mid_run() {
        let (mut shop, sc) = scenario(40, 100.0);
        let sc = sc.with_mix_change(SimTime::from_secs(20), Mix::single(shop.get_catalogue));
        let mut ctl = NullController;
        let res = sc.run(&mut shop.world, &mut ctl);
        assert!(res.summary.completed > 500);
        // After the switch the catalogue path must have seen traffic.
        let pod = shop.world.ready_replicas(shop.catalogue)[0];
        assert!(
            shop.world.completions_of(pod).unwrap().len() > 100,
            "catalogue traffic after the mix switch"
        );
    }

    /// The headline stepping invariant: driving the run through many
    /// arbitrary pause points produces the same samples, summary and
    /// timelines as an uninterrupted run — down to the last bit.
    #[test]
    fn stepped_run_is_identical_to_uninterrupted_run() {
        let (mut shop, sc) = scenario(60, 400.0);
        let mut ctl = NullController;
        let base = sc.run(&mut shop.world, &mut ctl);

        let (mut shop2, sc2) = scenario(60, 400.0);
        let mut ctl2 = NullController;
        let mut stepper = sc2.into_stepper();
        // Uneven pause grid, deliberately misaligned with both the sample
        // grid (1 s) and the control grid (15 s).
        let mut t_ms = 700;
        while !stepper.step_until(&mut shop2.world, &mut ctl2, SimTime::from_millis(t_ms)) {
            let snap = shop2
                .world
                .telemetry_snapshot(SimTime::ZERO, SimDuration::from_millis(400));
            assert_eq!(snap.completed + snap.dropped + snap.in_flight, {
                let s2 = shop2
                    .world
                    .telemetry_snapshot(SimTime::ZERO, SimDuration::from_millis(400));
                s2.completed + s2.dropped + s2.in_flight
            });
            t_ms += 1300;
        }
        let stepped = stepper.finish(&mut shop2.world, &mut ctl2);

        assert_eq!(base.summary.completed, stepped.summary.completed);
        assert_eq!(base.summary.dropped, stepped.summary.dropped);
        assert_eq!(
            base.summary.mean_rt_ms.to_bits(),
            stepped.summary.mean_rt_ms.to_bits()
        );
        assert_eq!(
            base.summary.p95_ms.to_bits(),
            stepped.summary.p95_ms.to_bits()
        );
        assert_eq!(
            base.summary.p99_ms.to_bits(),
            stepped.summary.p99_ms.to_bits()
        );
        assert_eq!(
            base.summary.goodput_rps.to_bits(),
            stepped.summary.goodput_rps.to_bits()
        );
        assert_eq!(base.timeline.len(), stepped.timeline.len());
        for (a, b) in base.timeline.iter().zip(&stepped.timeline) {
            assert_eq!(a.t_secs.to_bits(), b.t_secs.to_bits());
            assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
            assert_eq!(a.running_threads, b.running_threads);
        }
        assert_eq!(base.goodput_timeline, stepped.goodput_timeline);
        assert_eq!(base.rt_timeline, stepped.rt_timeline);
    }

    #[test]
    fn watch_with_conns_records_pool_gauges() {
        let shop = SockShop::build(SockShopParams::default(), SimRng::seed_from(5));
        let curve = RateCurve::new(TraceShape::SlowlyVarying, 150.0, SimDuration::from_secs(30));
        let pool = UserPool::new(curve, Dist::exponential_ms(500.0), SimRng::seed_from(9));
        let watch = Watch {
            service: shop.catalogue,
            conns: Some((shop.catalogue, shop.catalogue_db)),
        };
        let sc = Scenario::new(
            ScenarioConfig::default(),
            pool,
            Mix::single(shop.get_catalogue),
            watch,
        );
        let mut shop = shop;
        let mut ctl = NullController;
        let res = sc.run(&mut shop.world, &mut ctl);
        assert!(res.timeline.iter().all(|r| r.conns_established == 10));
        assert!(res.timeline.iter().any(|r| r.conns_in_use > 0));
    }
}
