//! Benchmark application topologies and the scenario runner.
//!
//! Reproduces the paper's two testbeds as simulated topologies:
//!
//! * [`SockShop`] — the 11-service e-commerce demo (§2.2, Fig. 2i), with
//!   the SpringBoot Cart thread pool and the Golang Catalogue DB-connection
//!   pool as the tunable soft resources;
//! * [`SocialNetwork`] — DeathStarBench's 36-service broadcast network
//!   (Fig. 2ii), with the Thrift client pool from Home-Timeline to Post
//!   Storage as the tunable soft resource and a light/heavy request-weight
//!   switch for the §5.3 state-drift experiment.
//!
//! [`Scenario`] drives a topology with a closed-loop user pool following
//! one of the six bursty traces, invokes a controller on the Kubernetes
//! control grid (15 s), samples gauges every second, and returns the
//! timelines and summary statistics the paper's figures and tables report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runner;
mod social_network;
mod sock_shop;

pub use runner::{RunResult, SampleRow, Scenario, ScenarioConfig, ScenarioStepper, Summary, Watch};
pub use social_network::{SocialNetwork, SocialNetworkParams};
pub use sock_shop::{SockShop, SockShopParams};
