//! The campaign driver: fan a seed range over the sweep harness and fold
//! the verdicts into one deterministic, serialisable report.
//!
//! Determinism contract: [`campaign`] over the same seed range produces an
//! identical [`FuzzReport`] at any worker count. The harness guarantees
//! submission-order results, every per-seed step (generate → check →
//! shrink) is itself deterministic, and nothing wall-clock-shaped enters
//! the report — perf metrics live in the separate [`SweepOutcome`] the
//! binary archives alongside.

use serde::Serialize;
use sora_bench::config::ScenarioSpec;
use sora_bench::{job, PerfMetrics, Sweep};

use crate::gen::generate;
use crate::oracle::{check, FuzzOptions};
use crate::shrink::shrink;

/// One confirmed oracle violation, with its shrunken reproducer.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzFinding {
    /// The generator seed that produced the violating scenario.
    pub seed: u64,
    /// Which oracle fired.
    pub oracle: String,
    /// The oracle's diagnosis (deterministic text).
    pub detail: String,
    /// Emitted size of the original spec, in bytes.
    pub spec_bytes: usize,
    /// Emitted size of the shrunken reproducer, in bytes.
    pub shrunk_bytes: usize,
    /// The original generated spec.
    pub spec: ScenarioSpec,
    /// The 1-minimal reproducer that still trips the same oracle.
    pub shrunk: ScenarioSpec,
}

/// The deterministic outcome of a fuzz campaign over `seed_start..seed_end`.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzReport {
    /// First seed fuzzed (inclusive).
    pub seed_start: u64,
    /// One past the last seed fuzzed.
    pub seed_end: u64,
    /// Seeds actually run (`seed_end - seed_start`).
    pub seeds_run: u64,
    /// Seeds whose scenario passed every oracle.
    pub clean: u64,
    /// Whether the test-only seeded defect was armed.
    pub injected: bool,
    /// Whether the conservation-law audit oracle was compiled in.
    pub audited: bool,
    /// The engine fingerprint the campaign ran against (a finding is only
    /// meaningful relative to the engine revision that produced it).
    pub engine_fingerprint: String,
    /// Violations, in seed order.
    pub findings: Vec<FuzzFinding>,
}

/// Fuzzes every seed in `seed_start..seed_end` with `jobs` workers,
/// shrinking each violation to its minimal reproducer. Returns the report
/// and the harness perf record (the only wall-clock-bearing piece).
pub fn campaign(
    seed_start: u64,
    seed_end: u64,
    jobs: usize,
    opts: FuzzOptions,
) -> (FuzzReport, PerfMetrics) {
    let work: Vec<_> = (seed_start..seed_end)
        .map(|seed| {
            job(format!("fuzz seed {seed}"), move || {
                let spec = generate(seed);
                check(&spec, &opts).map(|violation| {
                    let shrunk = shrink(&spec, &violation, &opts);
                    FuzzFinding {
                        seed,
                        oracle: violation.oracle.to_string(),
                        detail: violation.detail,
                        spec_bytes: spec.emit().len(),
                        shrunk_bytes: shrunk.emit().len(),
                        spec,
                        shrunk,
                    }
                })
            })
        })
        .collect();
    let outcome = Sweep::with_jobs(jobs).run(work);
    let findings: Vec<FuzzFinding> = outcome.results.into_iter().flatten().collect();
    let seeds_run = seed_end.saturating_sub(seed_start);
    let report = FuzzReport {
        seed_start,
        seed_end,
        seeds_run,
        clean: seeds_run - findings.len() as u64,
        injected: opts.inject_bad,
        audited: cfg!(feature = "audit"),
        engine_fingerprint: sora_server::canon::ENGINE_FINGERPRINT.to_string(),
        findings,
    };
    (report, outcome.perf)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline determinism claim: the same seed range yields an
    /// identical report at one worker and at four.
    #[test]
    fn campaign_reports_are_identical_at_any_job_count() {
        let opts = FuzzOptions::default();
        let (seq, _) = campaign(0, 12, 1, opts);
        let (par, _) = campaign(0, 12, 4, opts);
        let render = |r: &FuzzReport| serde_json::to_string_pretty(r).expect("report serialises");
        assert_eq!(render(&seq), render(&par));
        assert_eq!(seq.seeds_run, 12);
        assert_eq!(seq.clean + seq.findings.len() as u64, seq.seeds_run);
    }
}
