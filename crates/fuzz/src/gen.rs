//! The scenario generator: one seed in, one *valid* [`ScenarioSpec`] out.
//!
//! The generator is deliberately ignorant of the validity rules: it draws
//! candidate features (faults, retry, network, shards, drift) and keeps
//! each one only if [`ScenarioSpec::validate`] accepts the composed spec.
//! Anything `validate` admits must then survive the oracles — a spec that
//! passes the gate but panics or trips the audit is itself a bug, which is
//! exactly what the fuzzer exists to find.

use sim_core::SimRng;
use sora_bench::config::{
    App, FaultSpec, Hardware, NetSpec, RetrySpec, ScenarioSpec, SoftAdaptation,
};
use workload::TraceShape;

/// Draws one element of a slice.
fn pick<T: Copy>(rng: &mut SimRng, options: &[T]) -> T {
    options[rng.index(options.len())]
}

/// A uniform integer in `lo..=hi`.
fn int(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    lo + rng.index((hi - lo + 1) as usize) as u64
}

/// Applies `mutate` to a copy of `spec` and keeps the result only when
/// [`ScenarioSpec::validate`] admits it — the generator's single gate.
fn accept(spec: &mut ScenarioSpec, mutate: impl FnOnce(&mut ScenarioSpec)) -> bool {
    let mut candidate = spec.clone();
    mutate(&mut candidate);
    if candidate.validate().is_ok() {
        *spec = candidate;
        true
    } else {
        false
    }
}

/// One random fault whose window sits inside `horizon_ms`.
fn random_fault(rng: &mut SimRng, services: u32, horizon_ms: u64) -> FaultSpec {
    // Windows start in the first two-thirds of the run and stay well
    // inside the horizon; validate re-checks, so this is a heuristic for
    // acceptance rate, not a correctness requirement.
    let at_ms = int(rng, 100, (horizon_ms * 2 / 3).max(200));
    let span = |rng: &mut SimRng| int(rng, 50, (horizon_ms / 4).max(100));
    match rng.index(5) {
        0 => FaultSpec::Crash {
            service: int(rng, 0, (services - 1) as u64) as u32,
            at_ms,
            restart_after_ms: if rng.chance(0.7) {
                Some(span(rng))
            } else {
                None
            },
        },
        1 => FaultSpec::CpuPressure {
            node: 0,
            at_ms,
            duration_ms: span(rng),
            factor: rng.range_f64(0.2, 1.0),
        },
        2 => FaultSpec::TelemetryBlackout {
            at_ms,
            duration_ms: span(rng),
            lag: rng.chance(0.5),
        },
        3 => FaultSpec::Partition {
            a: int(rng, 0, (services - 1) as u64) as u32,
            b: int(rng, 0, (services - 1) as u64) as u32,
            at_ms,
            duration_ms: span(rng),
        },
        _ => FaultSpec::LinkSlow {
            a: int(rng, 0, (services - 1) as u64) as u32,
            b: int(rng, 0, (services - 1) as u64) as u32,
            at_ms,
            duration_ms: span(rng),
            factor: rng.range_f64(1.5, 8.0),
        },
    }
}

/// Generates the scenario for `seed`. The result always satisfies
/// [`ScenarioSpec::validate`]; the draw sequence is fixed, so the same
/// seed yields the same spec on every host.
pub fn generate(seed: u64) -> ScenarioSpec {
    let mut rng = SimRng::seed_from(seed).split("fuzz-gen");

    // Half the corpus uses generated topologies: that is where scale,
    // shard plans and the world-level metamorphic oracles live.
    let app = match rng.index(4) {
        0 => App::SockShop,
        1 => App::SocialNetwork,
        _ => App::Generated,
    };
    let duration_secs = int(&mut rng, 8, 24);
    let mut spec = ScenarioSpec {
        app,
        trace: pick(
            &mut rng,
            &[
                TraceShape::Steady,
                TraceShape::LargeVariation,
                TraceShape::QuickVarying,
                TraceShape::SlowlyVarying,
                TraceShape::BigSpike,
                TraceShape::DualPhase,
                TraceShape::SteepTriPhase,
            ],
        ),
        max_users: int(&mut rng, 20, 200) as f64,
        duration_secs,
        sla_ms: int(&mut rng, 100, 800),
        hardware: pick(
            &mut rng,
            &[
                Hardware::None,
                Hardware::None,
                Hardware::Hpa,
                Hardware::Vpa,
                Hardware::Firm,
            ],
        ),
        soft: pick(
            &mut rng,
            &[
                SoftAdaptation::None,
                SoftAdaptation::None,
                SoftAdaptation::Sora,
                SoftAdaptation::Conscale,
            ],
        ),
        seed: rng.next_u64(),
        cart_threads: None,
        cart_cores: None,
        home_timeline_conns: None,
        drift_at_secs: None,
        shards: None,
        services: match app {
            App::Generated => Some(int(&mut rng, 6, 60) as usize),
            _ => None,
        },
        topo_seed: match app {
            App::Generated => Some(rng.next_u64()),
            _ => None,
        },
        retry: None,
        net: None,
        faults: Vec::new(),
    };

    // App-specific knobs, each through the validate gate.
    if app == App::SockShop && rng.chance(0.4) {
        let threads = int(&mut rng, 2, 24) as usize;
        accept(&mut spec, |s| s.cart_threads = Some(threads));
    }
    if app == App::SockShop && rng.chance(0.3) {
        let cores = int(&mut rng, 1, 4) as u32;
        accept(&mut spec, |s| s.cart_cores = Some(cores));
    }
    if app == App::SocialNetwork && rng.chance(0.4) {
        let conns = int(&mut rng, 2, 32) as usize;
        accept(&mut spec, |s| s.home_timeline_conns = Some(conns));
    }
    if app != App::SockShop && rng.chance(0.3) {
        let at = int(&mut rng, 1, duration_secs.saturating_sub(1).max(1));
        accept(&mut spec, |s| s.drift_at_secs = Some(at));
    }

    // Retry policy.
    if rng.chance(0.4) {
        let retry = RetrySpec {
            max_retries: Some(int(&mut rng, 1, 5) as u32),
            base_backoff_ms: Some(int(&mut rng, 10, 500)),
            max_backoff_ms: Some(int(&mut rng, 500, 5_000)),
            jitter_frac: Some(rng.range_f64(0.0, 0.5)),
            budget_ratio: Some(rng.range_f64(0.05, 0.5)),
            budget_cap: Some(int(&mut rng, 5, 100) as f64),
        };
        accept(&mut spec, |s| s.retry = Some(retry));
    }

    // Network XOR shards: the message-passing substrate is incompatible
    // with the sharded engine, and validate enforces it — the generator
    // just draws both and lets the gate arbitrate the order it tried.
    if rng.chance(0.35) {
        let net = NetSpec {
            latency_us: Some(int(&mut rng, 50, 2_000)),
            loss: if rng.chance(0.5) {
                Some(rng.range_f64(0.0, 0.05))
            } else {
                None
            },
            duplicate: if rng.chance(0.3) {
                Some(rng.range_f64(0.0, 0.05))
            } else {
                None
            },
            call_timeout_ms: if rng.chance(0.4) {
                Some(int(&mut rng, 200, 3_000))
            } else {
                None
            },
            max_call_retries: None,
        };
        let retries = int(&mut rng, 0, 2) as u32;
        accept(&mut spec, |s| {
            s.net = Some(NetSpec {
                max_call_retries: net.call_timeout_ms.map(|_| retries),
                ..net
            });
        });
    }
    if rng.chance(0.4) {
        let shards = int(&mut rng, 1, 6) as usize;
        accept(&mut spec, |s| s.shards = Some(shards));
    }

    // Faults: draw up to four, keeping each only if the composed schedule
    // still passes FaultSchedule::validate_within (overlaps, horizon).
    let services = spec.service_count() as u32;
    let horizon_ms = duration_secs * 1_000;
    for _ in 0..rng.index(5) {
        let fault = random_fault(&mut rng, services, horizon_ms);
        accept(&mut spec, |s| s.faults.push(fault));
    }

    debug_assert!(spec.validate().is_ok(), "generator produced invalid spec");
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_are_valid_and_deterministic() {
        for seed in 0..200u64 {
            let spec = generate(seed);
            spec.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: invalid spec: {e}"));
            assert_eq!(spec, generate(seed), "seed {seed}: non-deterministic");
        }
    }

    #[test]
    fn corpus_covers_the_feature_space() {
        let specs: Vec<ScenarioSpec> = (0..300).map(generate).collect();
        assert!(specs.iter().any(|s| s.app == App::SockShop));
        assert!(specs.iter().any(|s| s.app == App::SocialNetwork));
        assert!(specs.iter().any(|s| s.app == App::Generated));
        assert!(specs.iter().any(|s| !s.faults.is_empty()));
        assert!(specs.iter().any(|s| s.retry.is_some()));
        assert!(specs.iter().any(|s| s.net.is_some()));
        assert!(specs.iter().any(|s| s.shards.is_some()));
        assert!(specs.iter().any(|s| s.drift_at_secs.is_some()));
        // The net-XOR-shards rule holds corpus-wide.
        assert!(specs.iter().all(|s| s.net.is_none() || s.shards.is_none()));
        // Network faults only appear alongside a network.
        use sora_bench::config::FaultSpec;
        assert!(specs.iter().all(|s| {
            s.faults.iter().all(|f| {
                !matches!(f, FaultSpec::Partition { .. } | FaultSpec::LinkSlow { .. })
                    || s.net.is_some()
            })
        }));
    }
}
