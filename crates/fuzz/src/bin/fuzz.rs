//! Deterministic scenario-fuzzing campaign over a seed range.
//!
//! ```text
//! fuzz --seeds A..B [--jobs N] [--inject-bad] [--no-save]
//! ```
//!
//! Generates one valid `ScenarioSpec` per seed, runs the oracle stack
//! (round-trip/canon-key, panic-free audited execution, shard-count
//! invariance, time translation, replica permutation), shrinks every
//! violation to a 1-minimal reproducer, prints the canonical report to
//! stdout and archives it (plus harness perf) as
//! `results/BENCH_fuzz.json`. The stdout bytes are identical at any
//! `--jobs` count; build with `--features audit` to arm the
//! conservation-law oracle.
//!
//! Exits 2 when a real (non-injected) violation is found, so CI lanes can
//! gate on a clean corpus.

use sora_fuzz::{campaign, FuzzOptions};

fn usage() -> ! {
    eprintln!("usage: fuzz --seeds A..B [--jobs N] [--inject-bad] [--no-save]");
    std::process::exit(64);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds: Option<(u64, u64)> = None;
    let mut inject_bad = false;
    let mut save = true;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let Some(range) = it.next() else { usage() };
                let Some((a, b)) = range.split_once("..") else {
                    usage()
                };
                match (a.parse(), b.parse()) {
                    (Ok(a), Ok(b)) if a < b => seeds = Some((a, b)),
                    _ => usage(),
                }
            }
            "--inject-bad" => inject_bad = true,
            "--no-save" => save = false,
            // Consumed by Sweep::from_env; tolerated here.
            "--jobs" => {
                it.next();
            }
            s if s.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    let Some((start, end)) = seeds else { usage() };

    let jobs = sora_bench::Sweep::from_env().jobs();
    let opts = FuzzOptions { inject_bad };
    let (report, perf) = campaign(start, end, jobs, opts);

    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serialises")
    );
    if save {
        sora_bench::save_json_with_perf("BENCH_fuzz", &report, &perf);
    }

    let real_findings = report.findings.iter().filter(|f| f.oracle != "injected");
    if real_findings.count() > 0 {
        eprintln!(
            "fuzz: {} violation(s) in seeds {start}..{end}",
            report.findings.len()
        );
        std::process::exit(2);
    }
}
