//! The oracle stack: every cross-run check a fuzzed scenario must pass.
//!
//! Ordering is cheapest-first and the first failure wins, so a shrink
//! pass chasing one oracle's violation re-runs as little as possible:
//!
//! 1. **injected** — the test-only seeded defect ([`FuzzOptions::inject_bad`]);
//! 2. **round_trip** — `ScenarioSpec::parse(emit(spec))` must yield the
//!    same spec, and its canon cache key must be stable across respellings;
//! 3. **panic** — building and running the scenario must not panic
//!    (observed via `catch_unwind`, surfaced as a violation);
//! 4. **audit** — with `--features audit`, the run's conservation-law
//!    verdict must be clean;
//! 5. **shard_invariance** — `shards = 1` (the sequential oracle) and
//!    `shards = 4` must produce byte-identical result payloads;
//! 6. **time_translation** / **replica_permutation** — for generated
//!    topologies, the world-level metamorphic invariances of
//!    `tests/metamorphic.rs`, with the spec's own fault schedule riding
//!    along (shifted by the same Δ for translation).

use std::panic::{catch_unwind, AssertUnwindSafe};

use sim_core::{SimDuration, SimRng, SimTime};
use sora_bench::config::{App, FaultSpec, ScenarioSpec};
use topo::TopoParams;

/// One observed oracle failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired (`"audit"`, `"shard_invariance"`, …).
    pub oracle: &'static str,
    /// Deterministic human-readable diagnosis.
    pub detail: String,
}

/// Fuzzer knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzOptions {
    /// Test-only seeded defect: report a synthetic violation for any spec
    /// carrying a telemetry-blackout fault at an odd millisecond. Exists
    /// so the detector → shrinker → reproducer pipeline can be exercised
    /// end to end without a real simulator bug.
    pub inject_bad: bool,
}

/// Runs `f`, converting a panic into a [`Violation`] with a deterministic
/// payload rendering.
fn run_panic_free<T>(stage: &str, f: impl FnOnce() -> T) -> Result<T, Violation> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Violation {
            oracle: "panic",
            detail: format!("{stage}: {msg}"),
        }
    })
}

/// The comparable payload of a run: everything `scenario_result_data`
/// reports except the spec itself (which legitimately differs when the
/// oracle overrides `shards`).
fn comparable_text(spec: &ScenarioSpec) -> Result<String, Violation> {
    run_panic_free(&format!("run (shards = {:?})", spec.shards), || {
        let outcome = spec.run();
        serde_json::to_string_pretty(&serde_json::json!({
            "summary": outcome.summary,
            "timeline": outcome.result.timeline,
            "rt": outcome.result.rt_timeline,
            "goodput": outcome.result.goodput_timeline,
        }))
        .expect("result serialises")
    })
}

/// First line on which two multi-line texts differ, for compact diffs.
fn first_divergence(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: `{la}` vs `{lb}`", i + 1);
        }
    }
    format!(
        "lengths differ: {} vs {} lines",
        a.lines().count(),
        b.lines().count()
    )
}

/// The spec's `parse(emit(..))` round-trip and canon-key stability.
fn check_round_trip(spec: &ScenarioSpec) -> Option<Violation> {
    let violation = |detail: String| {
        Some(Violation {
            oracle: "round_trip",
            detail,
        })
    };
    let pretty = spec.emit();
    let back = match ScenarioSpec::parse(&pretty) {
        Ok(s) => s,
        Err(e) => return violation(format!("emitted spec fails to parse: {e}")),
    };
    if back != *spec {
        return violation("parse(emit(spec)) != spec".to_string());
    }
    // A compact respelling of the same spec must parse back equal and
    // land on the same content-addressed cache key.
    let compact = serde_json::to_string(spec).expect("spec serialises");
    let back_compact = match ScenarioSpec::parse(&compact) {
        Ok(s) => s,
        Err(e) => return violation(format!("compact respelling fails to parse: {e}")),
    };
    if back_compact != *spec {
        return violation("compact respelling parses to a different spec".to_string());
    }
    let key = sora_server::canon::cache_key(spec);
    for respelled in [&back, &back_compact] {
        if sora_server::canon::cache_key(respelled) != key {
            return violation("canon cache key differs across respellings".to_string());
        }
    }
    None
}

/// The audited scenario run: panics surface as violations; with
/// `--features audit` the conservation-law verdict must be clean.
fn check_run(spec: &ScenarioSpec) -> Option<Violation> {
    let outcome = match run_panic_free("run", || spec.run()) {
        Ok(o) => o,
        Err(v) => return Some(v),
    };
    #[cfg(feature = "audit")]
    {
        let report = outcome.world.audit().report();
        if !report.clean {
            return Some(Violation {
                oracle: "audit",
                detail: format!(
                    "{} violation(s): {}",
                    report.total,
                    report
                        .counts
                        .iter()
                        .map(|(name, n)| format!("{name}={n}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ),
            });
        }
    }
    let _ = outcome;
    None
}

/// Shard-count invariance: `shards = 1` is the engine family's sequential
/// oracle; the same spec at 4 shards must reproduce its payload exactly.
fn check_shard_invariance(spec: &ScenarioSpec) -> Option<Violation> {
    if spec.net.is_some() {
        return None; // the network requires the classic engine
    }
    let with_shards = |n: usize| ScenarioSpec {
        shards: Some(n),
        ..spec.clone()
    };
    let oracle = match comparable_text(&with_shards(1)) {
        Ok(t) => t,
        Err(v) => return Some(v),
    };
    let sharded = match comparable_text(&with_shards(4)) {
        Ok(t) => t,
        Err(v) => return Some(v),
    };
    if oracle != sharded {
        return Some(Violation {
            oracle: "shard_invariance",
            detail: format!(
                "shards=1 vs shards=4 diverged: {}",
                first_divergence(&oracle, &sharded)
            ),
        });
    }
    None
}

/// What the world-level runners observe — enough to detect any
/// translation- or permutation-dependence without hauling full payloads.
#[derive(Debug, PartialEq)]
struct WorldObs {
    completions: Vec<(u64, u64, u64)>,
    dropped: u64,
    client_total: u64,
    mean_rt_nanos: u64,
}

/// The generated-topology world of `spec`, driven with a fixed injection
/// pattern translated by `shift_ms` (faults included).
fn run_topo(spec: &ScenarioSpec, shift_ms: u64, extra_replicas: &[u32]) -> WorldObs {
    let services = spec.services.expect("generated app has services");
    let mut params = TopoParams::sock_shop_like(services);
    if let Some(seed) = spec.topo_seed {
        params.seed = seed;
    }
    let t = topo::build(
        &params,
        microsim::WorldConfig::default(),
        SimRng::seed_from(spec.seed),
    );
    let mut w = t.world;
    for &svc in extra_replicas {
        let pod = w
            .add_replica(telemetry::ServiceId(svc))
            .expect("replica fits");
        w.make_ready(pod);
    }
    if !spec.faults.is_empty() {
        let shifted = ScenarioSpec {
            faults: spec.faults.iter().map(|f| f.shifted_ms(shift_ms)).collect(),
            ..spec.clone()
        };
        w.install_faults(shifted.fault_schedule())
            .expect("validated schedule stays valid under translation");
    }
    for i in 0..150u64 {
        let rt = t.request_types[(i % t.request_types.len() as u64) as usize];
        w.inject_at(SimTime::from_millis(shift_ms + 1 + i * 3), rt);
    }
    let done = w.run_until(SimTime::from_millis(shift_ms) + SimDuration::from_secs(3_600));
    WorldObs {
        completions: done
            .iter()
            .map(|c| {
                (
                    c.issued
                        .as_nanos()
                        .saturating_sub(SimTime::from_millis(shift_ms).as_nanos()),
                    c.completed
                        .as_nanos()
                        .saturating_sub(SimTime::from_millis(shift_ms).as_nanos()),
                    c.response_time.as_nanos(),
                )
            })
            .collect(),
        dropped: w.dropped(),
        client_total: w.client().total(),
        mean_rt_nanos: w.client().mean_response_time().map_or(0, |d| d.as_nanos()),
    }
}

/// Time translation: shifting every input (injections and fault instants)
/// by Δ must shift completions by exactly Δ and change no duration.
fn check_time_translation(spec: &ScenarioSpec) -> Option<Violation> {
    if spec.app != App::Generated || spec.net.is_some() {
        return None;
    }
    let base = match run_panic_free("translation base", || run_topo(spec, 0, &[])) {
        Ok(o) => o,
        Err(v) => return Some(v),
    };
    let shifted = match run_panic_free("translation shifted", || run_topo(spec, 500_000, &[])) {
        Ok(o) => o,
        Err(v) => return Some(v),
    };
    if base != shifted {
        return Some(Violation {
            oracle: "time_translation",
            detail: format!(
                "translated run diverged: {} vs {} completions, dropped {} vs {}, mean rt {} vs {}",
                base.completions.len(),
                shifted.completions.len(),
                base.dropped,
                shifted.dropped,
                base.mean_rt_nanos,
                shifted.mean_rt_nanos,
            ),
        });
    }
    None
}

/// Replica-spawn permutation: scaling out the same per-service replica
/// sets in a different global order must leave every aggregate unchanged.
/// Not applicable with crash faults: the crash victim is the longest-lived
/// ready replica, so the *within-service* multiset is no longer the only
/// thing that matters.
fn check_replica_permutation(spec: &ScenarioSpec) -> Option<Violation> {
    if spec.app != App::Generated || spec.net.is_some() {
        return None;
    }
    if spec
        .faults
        .iter()
        .any(|f| matches!(f, FaultSpec::Crash { .. }))
    {
        return None;
    }
    let services = spec.services.expect("generated app has services") as u32;
    // Four deterministic scale-out targets drawn from the spec seed.
    let mut rng = SimRng::seed_from(spec.seed).split("fuzz-permute");
    let targets: Vec<u32> = (0..4)
        .map(|_| rng.index(services as usize) as u32)
        .collect();
    let reversed: Vec<u32> = targets.iter().rev().copied().collect();
    let base = match run_panic_free("permutation base", || run_topo(spec, 0, &targets)) {
        Ok(o) => o,
        Err(v) => return Some(v),
    };
    let permuted = match run_panic_free("permutation reversed", || run_topo(spec, 0, &reversed)) {
        Ok(o) => o,
        Err(v) => return Some(v),
    };
    // Pod ids differ, so compare aggregates only.
    let agg = |o: &WorldObs| {
        (
            o.completions.len(),
            o.dropped,
            o.client_total,
            o.mean_rt_nanos,
        )
    };
    if agg(&base) != agg(&permuted) {
        return Some(Violation {
            oracle: "replica_permutation",
            detail: format!(
                "spawn order changed aggregates: {:?} vs {:?}",
                agg(&base),
                agg(&permuted)
            ),
        });
    }
    None
}

/// The test-only seeded defect: pretends any spec with a telemetry
/// blackout at an odd millisecond trips an invariant. Keyed to a spec
/// property (not the seed) so the shrinker must preserve the trigger while
/// stripping everything else.
fn check_injected(spec: &ScenarioSpec) -> Option<Violation> {
    let trigger = spec
        .faults
        .iter()
        .any(|f| matches!(f, FaultSpec::TelemetryBlackout { at_ms, .. } if at_ms % 2 == 1));
    trigger.then(|| Violation {
        oracle: "injected",
        detail: "seeded defect: telemetry blackout at an odd millisecond".to_string(),
    })
}

/// Runs the full oracle stack over a valid spec, returning the first
/// violation (or `None` for a clean scenario).
pub fn check(spec: &ScenarioSpec, opts: &FuzzOptions) -> Option<Violation> {
    if opts.inject_bad {
        if let Some(v) = check_injected(spec) {
            return Some(v);
        }
    }
    check_round_trip(spec)
        .or_else(|| check_run(spec))
        .or_else(|| check_shard_invariance(spec))
        .or_else(|| check_time_translation(spec))
        .or_else(|| check_replica_permutation(spec))
}
