//! Seed-driven scenario fuzzer with the audit layer as its oracle.
//!
//! PRs 4–9 stacked up exactly the machinery property-based testing needs:
//! a conservation-law audit (`--features audit`) that renders a verdict on
//! any finished run, a shard-count equivalence family (`shards = 1` is the
//! sequential oracle), and the metamorphic invariances of
//! `tests/metamorphic.rs` (time translation, replica-spawn permutation).
//! This crate composes them into a standing search:
//!
//! 1. [`generate`] turns a seed into a *valid* [`ScenarioSpec`] — random
//!    app (hand-built or `crates/topo`-generated), workload shape, retry
//!    policy, shard plan, network config and fault schedule. Validity is
//!    enforced by construction: every optional feature is accepted only if
//!    [`ScenarioSpec::validate`] (and through it
//!    `FaultSchedule::validate_within`) admits the composed spec, so the
//!    generator trusts the production gate rather than private knowledge.
//! 2. [`check`] runs the spec through the oracle stack: panic-free
//!    execution, `parse(emit(spec))` round-trip plus canon-key stability,
//!    a clean audit verdict, shard-count invariance (1 vs 4), and — for
//!    generated topologies — time translation and replica-permutation at
//!    the world level.
//! 3. On a violation, [`shrink`] delta-debugs the spec (drop faults, halve
//!    users / duration / services, strip features) to a minimal reproducer
//!    that still trips the *same* oracle; reproducers are committed under
//!    `scenarios/regressions/` with a regression test each.
//!
//! Every step is deterministic: the same seed range produces a
//! byte-identical [`FuzzReport`] at any `--jobs` count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod oracle;
mod report;
mod shrink;

pub use gen::generate;
pub use oracle::{check, FuzzOptions, Violation};
pub use report::{campaign, FuzzFinding, FuzzReport};
pub use shrink::shrink;

pub use sora_bench::config::{FaultSpec, ScenarioSpec};
