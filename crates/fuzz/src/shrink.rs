//! Delta-debugging shrinker: reduce a violating spec to a minimal
//! reproducer that still trips the *same* oracle.
//!
//! The algorithm is greedy fixpoint iteration over a fixed candidate
//! order: each pass proposes every single-step simplification (drop one
//! fault, strip one optional feature, halve one magnitude), keeps the
//! first candidate that (a) still satisfies [`ScenarioSpec::validate`] and
//! (b) still fails [`check`] with the original oracle, then restarts.
//! When a full pass accepts nothing, the spec is 1-minimal with respect to
//! the candidate set. Everything is deterministic — candidate order is
//! fixed and no clocks or entropy are involved — so the same violation
//! always shrinks to the same reproducer.

use sora_bench::config::ScenarioSpec;

use crate::oracle::{check, FuzzOptions, Violation};

/// All single-step simplifications of `spec`, cheapest-payoff first:
/// feature strips come before magnitude halvings so the reproducer loses
/// whole subsystems early.
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    let mut push = |mutate: &dyn Fn(&mut ScenarioSpec)| {
        let mut c = spec.clone();
        mutate(&mut c);
        if c != *spec {
            out.push(c);
        }
    };

    // Drop each fault individually.
    for i in 0..spec.faults.len() {
        push(&move |s: &mut ScenarioSpec| {
            s.faults.remove(i);
        });
    }
    // Collapse to the smallest hand-built app: drops the generated
    // topology and every knob tied to the original app in one step.
    push(&|s| {
        s.app = sora_bench::config::App::SockShop;
        s.services = None;
        s.topo_seed = None;
        s.drift_at_secs = None;
        s.home_timeline_conns = None;
    });
    // Strip optional features.
    push(&|s| s.retry = None);
    push(&|s| s.net = None);
    push(&|s| s.shards = None);
    push(&|s| s.drift_at_secs = None);
    push(&|s| s.cart_threads = None);
    push(&|s| s.cart_cores = None);
    push(&|s| s.home_timeline_conns = None);
    push(&|s| s.topo_seed = None);
    push(&|s| s.hardware = sora_bench::config::Hardware::None);
    push(&|s| s.soft = sora_bench::config::SoftAdaptation::None);
    push(&|s| s.trace = workload::TraceShape::Steady);
    push(&|s| s.seed = 0);
    // Halve magnitudes (floors keep the candidates inside validate's
    // bounds most of the time; validate re-checks regardless).
    push(&|s| s.duration_secs = (s.duration_secs / 2).max(2));
    push(&|s| s.max_users = (s.max_users / 2.0).max(5.0));
    push(&|s| s.sla_ms = (s.sla_ms / 2).max(50));
    if let Some(n) = spec.services {
        push(&|s| s.services = Some((n / 2).max(5)));
    }
    if spec.shards.is_some() {
        push(&|s| s.shards = Some(2));
    }
    // Shrink each fault's window in place.
    for i in 0..spec.faults.len() {
        push(&move |s: &mut ScenarioSpec| shrink_fault(&mut s.faults[i]));
    }

    out
}

/// One halving step on a fault's window fields.
fn shrink_fault(f: &mut sora_bench::config::FaultSpec) {
    use sora_bench::config::FaultSpec;
    match f {
        FaultSpec::Crash {
            restart_after_ms, ..
        } => *restart_after_ms = None,
        FaultSpec::CpuPressure { duration_ms, .. }
        | FaultSpec::TelemetryBlackout { duration_ms, .. }
        | FaultSpec::Partition { duration_ms, .. }
        | FaultSpec::LinkSlow { duration_ms, .. } => {
            *duration_ms = (*duration_ms / 2).max(10);
        }
    }
}

/// `true` when `candidate` is a valid spec that still trips the same
/// oracle as the original violation.
fn still_fails(candidate: &ScenarioSpec, violation: &Violation, opts: &FuzzOptions) -> bool {
    candidate.validate().is_ok()
        && check(candidate, opts).is_some_and(|v| v.oracle == violation.oracle)
}

/// Shrinks `spec` — known to fail with `violation` under `opts` — to a
/// 1-minimal reproducer that fails the same oracle. Returns the shrunk
/// spec (possibly `spec` itself if nothing simplifies).
pub fn shrink(spec: &ScenarioSpec, violation: &Violation, opts: &FuzzOptions) -> ScenarioSpec {
    let mut current = spec.clone();
    loop {
        let mut progressed = false;
        for candidate in candidates(&current) {
            if still_fails(&candidate, violation, opts) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sora_bench::config::{App, FaultSpec, Hardware, RetrySpec, SoftAdaptation};
    use workload::TraceShape;

    /// A deliberately feature-rich scenario: the "known-bad" input for the
    /// seeded-defect pipeline test, carrying every subsystem the shrinker
    /// should be able to discard.
    fn rich_spec_with_trigger() -> ScenarioSpec {
        let spec = ScenarioSpec {
            app: App::Generated,
            trace: TraceShape::SteepTriPhase,
            max_users: 180.0,
            duration_secs: 20,
            sla_ms: 450,
            hardware: Hardware::Hpa,
            soft: SoftAdaptation::Sora,
            seed: 14_857_223_931_550_411_203,
            cart_threads: None,
            cart_cores: None,
            home_timeline_conns: None,
            drift_at_secs: Some(12),
            shards: None,
            services: Some(48),
            topo_seed: Some(9_444_906_213_773_011_807),
            retry: Some(RetrySpec {
                max_retries: Some(4),
                base_backoff_ms: Some(35),
                max_backoff_ms: Some(2_600),
                jitter_frac: Some(0.318_276_415_112_903),
                budget_ratio: Some(0.204_119_850_276_331),
                budget_cap: Some(62.0),
            }),
            net: Some(sora_bench::config::NetSpec {
                latency_us: Some(750),
                loss: Some(0.012_640_418_332_705),
                duplicate: Some(0.004_118_220_965_387),
                call_timeout_ms: Some(1_800),
                max_call_retries: Some(2),
            }),
            faults: vec![
                FaultSpec::Crash {
                    service: 7,
                    at_ms: 2_500,
                    restart_after_ms: Some(1_200),
                },
                FaultSpec::Partition {
                    a: 3,
                    b: 21,
                    at_ms: 3_500,
                    duration_ms: 900,
                },
                FaultSpec::LinkSlow {
                    a: 11,
                    b: 40,
                    at_ms: 17_000,
                    duration_ms: 1_000,
                    factor: 5.271_908_334_442_618,
                },
                FaultSpec::Crash {
                    service: 19,
                    at_ms: 6_000,
                    restart_after_ms: None,
                },
                FaultSpec::CpuPressure {
                    node: 0,
                    at_ms: 9_000,
                    duration_ms: 1_500,
                    factor: 0.611_224_793_580_114,
                },
                FaultSpec::TelemetryBlackout {
                    at_ms: 12_000,
                    duration_ms: 800,
                    lag: true,
                },
                // The seeded trigger: blackout at an odd millisecond.
                FaultSpec::TelemetryBlackout {
                    at_ms: 15_001,
                    duration_ms: 400,
                    lag: false,
                },
            ],
        };
        spec.validate().expect("rich spec is valid");
        spec
    }

    /// Seeded-defect pipeline: inject a violation keyed to "telemetry
    /// blackout at an odd millisecond", then require the shrinker to strip
    /// everything else while preserving the trigger — and to land at no
    /// more than a quarter of the original spec's emitted size.
    #[test]
    fn seeded_defect_shrinks_to_a_quarter_of_the_spec() {
        let opts = FuzzOptions { inject_bad: true };
        let spec = rich_spec_with_trigger();

        let violation = check(&spec, &opts).expect("seeded defect detected");
        assert_eq!(violation.oracle, "injected");

        let shrunk = shrink(&spec, &violation, &opts);
        shrunk.validate().expect("shrunk spec is valid");
        let v = check(&shrunk, &opts).expect("shrunk spec still fails");
        assert_eq!(v.oracle, "injected");
        // The trigger survived and everything incidental went away.
        assert_eq!(shrunk.faults.len(), 1);
        assert!(matches!(
            shrunk.faults[0],
            FaultSpec::TelemetryBlackout { at_ms, .. } if at_ms % 2 == 1
        ));
        assert!(shrunk.retry.is_none());
        assert!(shrunk.net.is_none());
        assert_eq!(shrunk.app, App::SockShop, "topology collapsed away");
        let (before, after) = (spec.emit().len(), shrunk.emit().len());
        assert!(
            after * 4 <= before,
            "shrunk reproducer is {after} bytes; expected <= 25% of {before}"
        );
        // Shrinking is deterministic.
        assert_eq!(shrunk, shrink(&spec, &violation, &opts));
    }
}
