//! Thread-aware allocation metering.
//!
//! The `scale` bench counts heap allocations per simulated request through a
//! counting [`std::alloc::GlobalAlloc`]. With a single-threaded engine a pair
//! of thread-local counters was enough; once a world may fan event execution
//! across worker threads, allocations made *by those workers* have to be
//! credited back to the measurement that spawned them — without letting two
//! concurrent measurements (e.g. sweep jobs at `--jobs 4`) bleed into each
//! other.
//!
//! The design is a scope ledger:
//!
//! * Every thread owns lock-free thread-local counters, bumped by
//!   [`note_alloc`] from the global allocator hook. The hot path is two
//!   `Cell` increments — no atomics, no branches on shared state.
//! * A measurement opens a [`Scope`], which grabs one of a fixed pool of
//!   atomic fold slots and remembers the thread-local baseline.
//! * Worker threads spawned on behalf of that measurement call [`adopt`]
//!   with the scope's [`ScopeToken`]; when the returned [`Adoption`] guard
//!   drops (at worker exit, before the spawning `thread::scope` joins), the
//!   worker's thread-local delta is folded into the scope's slot.
//! * [`Scope::finish`] reports the opening thread's delta plus everything
//!   folded in by adopted workers.
//!
//! Because each scope folds into its own slot and each thread's counters are
//! private until folded, concurrent scopes on different threads stay fully
//! isolated: a job measured alone and the same job measured next to three
//! neighbours report identical numbers.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of concurrently open scopes supported. Sweep jobs cap out far
/// below this; exceeding it panics rather than silently mis-attributing.
const SLOTS: usize = 64;

static SLOT_BYTES: [AtomicU64; SLOTS] = [const { AtomicU64::new(0) }; SLOTS];
static SLOT_COUNT: [AtomicU64; SLOTS] = [const { AtomicU64::new(0) }; SLOTS];
/// Bitmap of slots currently owned by a live [`Scope`].
static IN_USE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_COUNT: Cell<u64> = const { Cell::new(0) };
    /// The scope this thread currently contributes to, if any.
    static TL_SCOPE: Cell<Option<u16>> = const { Cell::new(None) };
}

/// Records one allocation of `bytes` bytes on the calling thread.
///
/// Safe to call from inside a `GlobalAlloc` implementation: it never
/// allocates (`try_with` tolerates thread-local storage being torn down
/// during thread exit) and touches no shared state.
#[inline]
pub fn note_alloc(bytes: u64) {
    let _ = TL_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes)));
    let _ = TL_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// Allocation totals observed by a [`Scope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Total bytes requested from the allocator.
    pub bytes: u64,
    /// Number of allocation calls.
    pub count: u64,
}

/// A copyable handle naming an open scope, passed to worker threads so they
/// can [`adopt`] it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeToken(u16);

/// The scope token the calling thread currently contributes to, if any.
///
/// Code that spawns worker threads on behalf of an ongoing measurement
/// captures this before spawning and hands it to each worker.
#[inline]
pub fn current_scope() -> Option<ScopeToken> {
    TL_SCOPE.try_with(Cell::get).ok().flatten().map(ScopeToken)
}

fn tl_snapshot() -> (u64, u64) {
    (
        TL_BYTES.try_with(Cell::get).unwrap_or(0),
        TL_COUNT.try_with(Cell::get).unwrap_or(0),
    )
}

/// An open measurement region on the current thread.
pub struct Scope {
    slot: u16,
    base_bytes: u64,
    base_count: u64,
    prev: Option<u16>,
}

impl Scope {
    /// Opens a scope: acquires a fold slot and snapshots the calling
    /// thread's counters. Panics if more than [`SLOTS`] scopes are open.
    pub fn begin() -> Scope {
        let slot = loop {
            let used = IN_USE.load(Ordering::Acquire);
            let free = (!used).trailing_zeros() as usize;
            assert!(free < SLOTS, "allocmeter: too many concurrent scopes");
            let bit = 1u64 << free;
            if IN_USE
                .compare_exchange(used, used | bit, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break free as u16;
            }
        };
        SLOT_BYTES[slot as usize].store(0, Ordering::Relaxed);
        SLOT_COUNT[slot as usize].store(0, Ordering::Relaxed);
        let (base_bytes, base_count) = tl_snapshot();
        let prev = TL_SCOPE.try_with(|c| c.replace(Some(slot))).ok().flatten();
        Scope {
            slot,
            base_bytes,
            base_count,
            prev,
        }
    }

    /// The token worker threads use to [`adopt`] this scope.
    pub fn token(&self) -> ScopeToken {
        ScopeToken(self.slot)
    }

    /// Closes the scope and returns the totals: the opening thread's delta
    /// plus everything adopted workers folded in. All workers must have
    /// exited (dropped their [`Adoption`]) before this is called — scoped
    /// threads guarantee that by construction.
    pub fn finish(self) -> AllocStats {
        let (now_bytes, now_count) = tl_snapshot();
        let folded_bytes = SLOT_BYTES[self.slot as usize].load(Ordering::Acquire);
        let folded_count = SLOT_COUNT[self.slot as usize].load(Ordering::Acquire);
        let _ = TL_SCOPE.try_with(|c| c.set(self.prev));
        IN_USE.fetch_and(!(1u64 << self.slot), Ordering::AcqRel);
        AllocStats {
            bytes: now_bytes
                .wrapping_sub(self.base_bytes)
                .wrapping_add(folded_bytes),
            count: now_count
                .wrapping_sub(self.base_count)
                .wrapping_add(folded_count),
        }
    }
}

/// A worker thread's membership in a scope; folding happens on drop.
pub struct Adoption {
    slot: Option<u16>,
    base_bytes: u64,
    base_count: u64,
    prev: Option<u16>,
}

/// Joins the calling (worker) thread to `token`'s scope. When the returned
/// guard drops, the thread's allocation delta since adoption is folded into
/// the scope. Passing `None` returns an inert guard, so spawners can simply
/// forward [`current_scope`]'s result.
pub fn adopt(token: Option<ScopeToken>) -> Adoption {
    match token {
        None => Adoption {
            slot: None,
            base_bytes: 0,
            base_count: 0,
            prev: None,
        },
        Some(ScopeToken(slot)) => {
            let (base_bytes, base_count) = tl_snapshot();
            let prev = TL_SCOPE.try_with(|c| c.replace(Some(slot))).ok().flatten();
            Adoption {
                slot: Some(slot),
                base_bytes,
                base_count,
                prev,
            }
        }
    }
}

impl Drop for Adoption {
    fn drop(&mut self) {
        let Some(slot) = self.slot else { return };
        let (now_bytes, now_count) = tl_snapshot();
        SLOT_BYTES[slot as usize]
            .fetch_add(now_bytes.wrapping_sub(self.base_bytes), Ordering::AcqRel);
        SLOT_COUNT[slot as usize]
            .fetch_add(now_count.wrapping_sub(self.base_count), Ordering::AcqRel);
        let _ = TL_SCOPE.try_with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_counts_own_thread_delta() {
        let scope = Scope::begin();
        note_alloc(100);
        note_alloc(28);
        let stats = scope.finish();
        assert_eq!(
            stats,
            AllocStats {
                bytes: 128,
                count: 2
            }
        );
    }

    #[test]
    fn workers_fold_into_adopting_scope() {
        let scope = Scope::begin();
        note_alloc(10);
        let token = scope.token();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    let _guard = adopt(Some(token));
                    note_alloc(5);
                });
            }
        });
        let stats = scope.finish();
        assert_eq!(
            stats,
            AllocStats {
                bytes: 30,
                count: 5
            }
        );
    }

    #[test]
    fn unadopted_threads_do_not_leak_into_scope() {
        let scope = Scope::begin();
        std::thread::scope(|s| {
            s.spawn(|| {
                // No adopt(): this thread's allocations are invisible.
                note_alloc(1_000_000);
            });
        });
        let stats = scope.finish();
        assert_eq!(stats, AllocStats::default());
    }

    #[test]
    fn concurrent_scopes_are_isolated() {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    s.spawn(move || {
                        let scope = Scope::begin();
                        for _ in 0..=i {
                            note_alloc(7);
                        }
                        scope.finish()
                    })
                })
                .collect();
            let results: Vec<AllocStats> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for (i, stats) in results.into_iter().enumerate() {
                let n = i as u64 + 1;
                assert_eq!(
                    stats,
                    AllocStats {
                        bytes: 7 * n,
                        count: n
                    }
                );
            }
        });
    }

    #[test]
    fn none_adoption_is_inert() {
        let _guard = adopt(None);
        note_alloc(3);
    }

    #[test]
    fn current_scope_propagates_and_restores() {
        let before = current_scope();
        let scope = Scope::begin();
        let token = scope.token();
        assert_eq!(current_scope(), Some(token));
        scope.finish();
        assert_eq!(current_scope(), before);
    }
}
