//! Sampling distributions for service demands and inter-arrival times.

use crate::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// A duration-valued sampling distribution.
///
/// These are the workhorse distributions for microservice models: CPU
/// demands are typically log-normal (right-skewed service times), arrivals
/// exponential (Poisson process), and bounded-Pareto captures heavy-tailed
/// outliers.
///
/// All variants sample via [`Dist::sample`] from a [`SimRng`], keeping runs
/// deterministic. Values are clamped to be non-negative.
///
/// # Example
///
/// ```
/// use sim_core::{Dist, SimRng, SimDuration};
///
/// let d = Dist::lognormal_ms(4.0, 0.4); // median ≈ 4 ms CPU demand
/// let mut rng = SimRng::seed_from(1);
/// let x = d.sample(&mut rng);
/// assert!(x > SimDuration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always the same duration.
    Constant {
        /// The fixed value, in nanoseconds.
        nanos: u64,
    },
    /// Uniform in `[low, high]` nanoseconds.
    Uniform {
        /// Lower bound in nanoseconds.
        low: u64,
        /// Upper bound in nanoseconds.
        high: u64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean in nanoseconds.
        mean_nanos: u64,
    },
    /// Log-normal parameterised by the *median* (`exp(mu)`) and shape sigma.
    LogNormal {
        /// Median in nanoseconds (`exp(mu)` of the underlying normal).
        median_nanos: u64,
        /// Shape parameter sigma of the underlying normal.
        sigma: f64,
    },
    /// Bounded Pareto on `[low, high]` with tail index `alpha`.
    BoundedPareto {
        /// Lower bound in nanoseconds.
        low: u64,
        /// Upper bound in nanoseconds.
        high: u64,
        /// Tail index; smaller is heavier-tailed.
        alpha: f64,
    },
    /// Erlang-k: the sum of `k` exponentials with total mean `mean_nanos`.
    Erlang {
        /// Number of exponential stages.
        k: u32,
        /// Mean of the *sum*, in nanoseconds.
        mean_nanos: u64,
    },
}

impl Dist {
    /// A constant duration of `ms` milliseconds.
    pub const fn constant_ms(ms: u64) -> Dist {
        Dist::Constant {
            nanos: ms * 1_000_000,
        }
    }

    /// A constant duration of `us` microseconds.
    pub const fn constant_us(us: u64) -> Dist {
        Dist::Constant { nanos: us * 1_000 }
    }

    /// An exponential distribution with mean `ms` milliseconds.
    pub fn exponential_ms(ms: f64) -> Dist {
        assert!(ms > 0.0 && ms.is_finite(), "mean must be positive");
        Dist::Exponential {
            mean_nanos: (ms * 1e6) as u64,
        }
    }

    /// A log-normal distribution with the given median (milliseconds) and sigma.
    pub fn lognormal_ms(median_ms: f64, sigma: f64) -> Dist {
        assert!(
            median_ms > 0.0 && median_ms.is_finite(),
            "median must be positive"
        );
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be non-negative"
        );
        Dist::LogNormal {
            median_nanos: (median_ms * 1e6) as u64,
            sigma,
        }
    }

    /// A uniform distribution on `[low_ms, high_ms]` milliseconds.
    pub fn uniform_ms(low_ms: u64, high_ms: u64) -> Dist {
        assert!(low_ms <= high_ms, "low > high");
        Dist::Uniform {
            low: low_ms * 1_000_000,
            high: high_ms * 1_000_000,
        }
    }

    /// The distribution mean, as a duration.
    pub fn mean(&self) -> SimDuration {
        let nanos = match *self {
            Dist::Constant { nanos } => nanos as f64,
            Dist::Uniform { low, high } => (low + high) as f64 / 2.0,
            Dist::Exponential { mean_nanos } => mean_nanos as f64,
            Dist::LogNormal {
                median_nanos,
                sigma,
            } => median_nanos as f64 * (sigma * sigma / 2.0).exp(),
            Dist::BoundedPareto { low, high, alpha } => {
                let (l, h) = (low as f64, high as f64);
                if (alpha - 1.0).abs() < 1e-9 {
                    let ratio: f64 = h / l;
                    l * ratio.ln() / (1.0 - l / h)
                } else {
                    (l.powf(alpha) / (1.0 - (l / h).powf(alpha)))
                        * (alpha / (alpha - 1.0))
                        * (1.0 / l.powf(alpha - 1.0) - 1.0 / h.powf(alpha - 1.0))
                }
            }
            Dist::Erlang { mean_nanos, .. } => mean_nanos as f64,
        };
        SimDuration::from_nanos(nanos.round() as u64)
    }

    /// The smallest duration this distribution can produce.
    ///
    /// Used as the conservative cross-shard lookahead by the parallel
    /// engine: no message drawn from this distribution can arrive sooner
    /// than `lower_bound()` after it was sent. Unbounded-below variants
    /// (exponential, Erlang, log-normal with positive sigma) report zero.
    pub fn lower_bound(&self) -> SimDuration {
        let nanos = match *self {
            Dist::Constant { nanos } => nanos,
            Dist::Uniform { low, .. } => low,
            Dist::BoundedPareto { low, .. } => low,
            Dist::Exponential { .. } | Dist::Erlang { .. } => 0,
            Dist::LogNormal {
                median_nanos,
                sigma,
            } => {
                if sigma == 0.0 {
                    median_nanos
                } else {
                    0
                }
            }
        };
        SimDuration::from_nanos(nanos)
    }

    /// Draws one duration.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let nanos = match *self {
            Dist::Constant { nanos } => nanos as f64,
            Dist::Uniform { low, high } => {
                if low == high {
                    low as f64
                } else {
                    rng.u64_inclusive(low, high) as f64
                }
            }
            Dist::Exponential { mean_nanos } => sample_exp(rng, mean_nanos as f64),
            Dist::LogNormal {
                median_nanos,
                sigma,
            } => {
                if sigma == 0.0 {
                    median_nanos as f64
                } else {
                    ((median_nanos as f64).ln() + sigma * sample_std_normal(rng)).exp()
                }
            }
            Dist::BoundedPareto { low, high, alpha } => {
                let (l, h) = (low as f64, high as f64);
                let u: f64 = rng.f64();
                // Inverse CDF of the bounded Pareto.
                let num = u * h.powf(alpha) - u * l.powf(alpha) - h.powf(alpha);
                (-(num / (h.powf(alpha) * l.powf(alpha)))).powf(-1.0 / alpha)
            }
            Dist::Erlang { k, mean_nanos } => {
                let stage_mean = mean_nanos as f64 / f64::from(k.max(1));
                (0..k.max(1)).map(|_| sample_exp(rng, stage_mean)).sum()
            }
        };
        SimDuration::from_nanos(nanos.max(0.0).round() as u64)
    }
}

/// Exponential draw by inverse CDF: `-mean · ln(1 - U)` with `U ∈ [0, 1)`.
fn sample_exp(rng: &mut SimRng, mean: f64) -> f64 {
    -mean * (1.0 - rng.f64()).ln()
}

/// Standard-normal draw via the Box–Muller transform.
///
/// Consumes exactly two uniforms per call, keeping the stream deterministic
/// regardless of the value drawn (no rejection loop).
fn sample_std_normal(rng: &mut SimRng) -> f64 {
    let u1 = 1.0 - rng.f64(); // (0, 1] so ln() is finite
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: Dist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        (0..n)
            .map(|_| d.sample(&mut rng).as_nanos() as f64)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::constant_ms(5);
        let mut rng = SimRng::seed_from(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng).as_millis(), 5);
        }
        assert_eq!(d.mean().as_millis(), 5);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::exponential_ms(4.0);
        let m = empirical_mean(d, 200_000, 1);
        let expected = d.mean().as_nanos() as f64;
        assert!(
            (m - expected).abs() / expected < 0.02,
            "mean {m} vs {expected}"
        );
    }

    #[test]
    fn lognormal_mean_converges() {
        let d = Dist::lognormal_ms(4.0, 0.5);
        let m = empirical_mean(d, 300_000, 2);
        let expected = d.mean().as_nanos() as f64;
        assert!(
            (m - expected).abs() / expected < 0.03,
            "mean {m} vs {expected}"
        );
    }

    #[test]
    fn erlang_mean_converges_and_has_lower_variance() {
        let e1 = Dist::Exponential {
            mean_nanos: 1_000_000,
        };
        let e4 = Dist::Erlang {
            k: 4,
            mean_nanos: 1_000_000,
        };
        let m = empirical_mean(e4, 100_000, 3);
        assert!((m - 1e6).abs() / 1e6 < 0.02);
        // variance of Erlang-k is mean^2/k < mean^2 for exponential
        let mut rng = SimRng::seed_from(4);
        let var = |d: &Dist, rng: &mut SimRng| {
            let xs: Vec<f64> = (0..50_000)
                .map(|_| d.sample(rng).as_nanos() as f64)
                .collect();
            let mu = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(var(&e4, &mut rng) < var(&e1, &mut rng));
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = Dist::BoundedPareto {
            low: 1_000,
            high: 1_000_000,
            alpha: 1.5,
        };
        let mut rng = SimRng::seed_from(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng).as_nanos();
            assert!((1_000..=1_000_001).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::uniform_ms(2, 6);
        let mut rng = SimRng::seed_from(6);
        for _ in 0..1_000 {
            let ms = d.sample(&mut rng).as_millis();
            assert!((2..=6).contains(&ms));
        }
        assert_eq!(d.mean().as_millis(), 4);
    }

    #[test]
    fn lower_bound_is_never_exceeded_downward() {
        let dists = [
            Dist::constant_us(200),
            Dist::uniform_ms(2, 6),
            Dist::exponential_ms(4.0),
            Dist::lognormal_ms(4.0, 0.4),
            Dist::lognormal_ms(3.0, 0.0),
            Dist::BoundedPareto {
                low: 1_000,
                high: 1_000_000,
                alpha: 1.5,
            },
            Dist::Erlang {
                k: 4,
                mean_nanos: 1_000_000,
            },
        ];
        let mut rng = SimRng::seed_from(11);
        for d in dists {
            let lb = d.lower_bound();
            for _ in 0..2_000 {
                assert!(d.sample(&mut rng) >= lb, "{d:?} sampled below {lb:?}");
            }
        }
        assert_eq!(Dist::constant_us(200).lower_bound().as_nanos(), 200_000);
        assert_eq!(Dist::exponential_ms(1.0).lower_bound().as_nanos(), 0);
        assert_eq!(
            Dist::lognormal_ms(3.0, 0.0).lower_bound().as_millis(),
            3,
            "zero-sigma lognormal is a constant"
        );
    }

    #[test]
    fn zero_sigma_lognormal_is_constant() {
        let d = Dist::lognormal_ms(3.0, 0.0);
        let mut rng = SimRng::seed_from(7);
        assert_eq!(d.sample(&mut rng).as_millis(), 3);
    }
}
