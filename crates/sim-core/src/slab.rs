//! Generational slab storage for hot simulation objects.
//!
//! The simulator used to heap-allocate every in-flight request behind a
//! `HashMap` entry; at million-user scale the allocator and the hash probes
//! dominate the event loop. A [`Slab`] keeps values in one dense `Vec`,
//! recycles vacated slots through a free list (so steady-state churn is
//! allocation-free once the high-water mark is reached), and tags each slot
//! with a **generation** that is bumped on removal. A [`SlabKey`] captures
//! the slot index *and* the generation it was issued for, so a stale key —
//! one that outlived its value and whose slot has since been reused — can
//! never alias the new occupant (the classic ABA hazard of index reuse).
//! Lookups with stale keys simply return `None`, which is exactly the
//! "request already finished" semantics the event loop wants for late
//! timeouts and superseded events.

use std::fmt;

/// A generational handle into a [`Slab`].
///
/// Keys are `Copy`, 8 bytes, and safe to embed in queued events: if the
/// value they referred to has been removed (even if the slot has been
/// reused), every lookup returns `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlabKey {
    index: u32,
    generation: u32,
}

impl SlabKey {
    /// The slot index (useful only for diagnostics; never dereference it
    /// without the generation check a [`Slab`] lookup performs).
    pub const fn index(self) -> u32 {
        self.index
    }

    /// The generation this key was issued for.
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

impl fmt::Display for SlabKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot-{}v{}", self.index, self.generation)
    }
}

enum Slot<T> {
    /// Live value; `generation` matches the keys issued for this occupancy.
    Occupied { generation: u32, value: T },
    /// Empty slot; `generation` is the value the *next* occupancy will use
    /// (already bumped past every key issued for previous occupants).
    Vacant { generation: u32 },
}

/// A dense, generational object store with O(1) insert/remove/lookup.
///
/// # Example
///
/// ```
/// use sim_core::Slab;
///
/// let mut slab: Slab<&'static str> = Slab::new();
/// let a = slab.insert("alpha");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// slab.remove(a);
/// let b = slab.insert("beta"); // reuses the slot...
/// assert_eq!(a.index(), b.index());
/// assert_eq!(slab.get(a), None, "...but the stale key cannot see it");
/// assert_eq!(slab.get(b), Some(&"beta"));
/// ```
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Indices of vacant slots, reused LIFO (the most recently vacated slot
    /// is the most likely to be cache-hot).
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab. Allocates nothing until the first insert.
    pub const fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates a slab with room for `capacity` values before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            len: 0,
        }
    }

    /// Reserves room for at least `additional` more values.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (the high-water mark of concurrent
    /// occupancy).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Stores `value`, returning a generational key for it.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                let generation = match *slot {
                    Slot::Vacant { generation } => generation,
                    Slot::Occupied { .. } => unreachable!("free list points at an occupied slot"),
                };
                *slot = Slot::Occupied { generation, value };
                SlabKey { index, generation }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("slab exceeds u32::MAX slots");
                self.slots.push(Slot::Occupied {
                    generation: 0,
                    value,
                });
                SlabKey {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Removes and returns the value behind `key`, or `None` if the key is
    /// stale (already removed, possibly with the slot since reused).
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == key.generation => {
                // Bump the generation as the slot is vacated, so every key
                // issued for the old occupant goes stale immediately.
                let next = key.generation.wrapping_add(1);
                let old = std::mem::replace(slot, Slot::Vacant { generation: next });
                self.free.push(key.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!("matched occupied above"),
                }
            }
            _ => None,
        }
    }

    /// The value behind `key`, or `None` for stale keys.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        match self.slots.get(key.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value behind `key`, or `None` for stale keys.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        match self.slots.get_mut(key.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// True when `key` still refers to a live value.
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// Iterates live `(key, &value)` pairs in slot order (deterministic:
    /// independent of hash state or insertion history beyond slot reuse).
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| match slot {
                Slot::Occupied { generation, value } => Some((
                    SlabKey {
                        index: index as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Vacant { .. } => None,
            })
    }

    /// Iterates live values mutably in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SlabKey, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(index, slot)| match slot {
                Slot::Occupied { generation, value } => Some((
                    SlabKey {
                        index: index as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Vacant { .. } => None,
            })
    }
}

/// `Debug` shows occupancy, not contents (slabs hold thousands of values).
impl<T> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("slots", &self.slots.len())
            .field("free", &self.free.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab.get_mut(b).map(|v| std::mem::replace(v, 21)), Some(20));
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.remove(a), None, "double remove is a no-op");
        assert_eq!(slab.get(b), Some(&21));
        assert_eq!(slab.len(), 1);
    }

    /// The ABA regression: a key issued for a previous occupant of a reused
    /// slot must not read, write, or remove the new occupant. This is the
    /// exact hazard of a late `Timeout` event racing a recycled request id.
    #[test]
    fn stale_key_cannot_alias_a_reused_slot() {
        let mut slab = Slab::new();
        let old = slab.insert("first");
        assert_eq!(slab.remove(old), Some("first"));
        let new = slab.insert("second");
        assert_eq!(old.index(), new.index(), "slot is reused");
        assert_ne!(old.generation(), new.generation());
        assert_eq!(slab.get(old), None);
        assert!(!slab.contains(old));
        assert_eq!(slab.remove(old), None, "stale remove must not evict");
        assert_eq!(slab.get(new), Some(&"second"));
    }

    #[test]
    fn slots_are_reused_lifo_and_high_water_mark_holds() {
        let mut slab = Slab::new();
        let keys: Vec<SlabKey> = (0..8).map(|i| slab.insert(i)).collect();
        assert_eq!(slab.slot_count(), 8);
        for k in &keys {
            slab.remove(*k);
        }
        // Refill: no new slots are allocated, and the most recently vacated
        // slot comes back first.
        let first = slab.insert(100);
        assert_eq!(first.index(), keys[7].index());
        for i in 0..7 {
            slab.insert(i);
        }
        assert_eq!(slab.slot_count(), 8, "steady-state churn adds no slots");
        assert_eq!(slab.len(), 8);
    }

    #[test]
    fn generations_survive_many_reuse_cycles() {
        let mut slab = Slab::new();
        let mut key = slab.insert(0u64);
        for round in 1..100u64 {
            slab.remove(key);
            let fresh = slab.insert(round);
            assert_eq!(fresh.index(), key.index());
            assert_eq!(slab.get(key), None, "round {round}: stale key resolved");
            key = fresh;
        }
        assert_eq!(slab.get(key), Some(&99));
    }

    #[test]
    fn iteration_is_in_slot_order_and_skips_vacancies() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        slab.remove(b);
        let seen: Vec<&str> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, ["a", "c"]);
        let keys: Vec<SlabKey> = slab.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, [a, c]);
        for (_, v) in slab.iter_mut() {
            *v = "z";
        }
        assert_eq!(slab.get(a), Some(&"z"));
    }

    #[test]
    fn empty_and_default() {
        let slab: Slab<u8> = Slab::default();
        assert!(slab.is_empty());
        assert_eq!(slab.len(), 0);
        assert_eq!(slab.iter().count(), 0);
    }
}
