//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is an absolute number of nanoseconds since the start of a
//! run ([`SimTime`]); intervals are [`SimDuration`]. Both are thin `u64`
//! newtypes so that event ordering is exact (no floating-point time) and a
//! 12-minute experiment (the paper's trace length) fits with enormous
//! headroom (`u64` nanoseconds cover ~584 years).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in nanoseconds since run start.
///
/// # Example
///
/// ```
/// use sim_core::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_millis(), 250);
/// assert!((t.as_secs_f64() - 0.25).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use sim_core::SimDuration;
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis(), 1);
/// assert_eq!(d * 4, SimDuration::from_micros(6000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole nanoseconds since run start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds an instant from whole milliseconds since run start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Builds an instant from whole seconds since run start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds since run start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid simulation time {secs}"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since run start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since run start (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since run start (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since run start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The interval from `earlier` to `self`, saturating to zero when
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Rounds down to a multiple of `bucket`, e.g. for 100 ms sampling bins.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn floor_to(self, bucket: SimDuration) -> SimTime {
        assert!(bucket.0 > 0, "bucket must be non-zero");
        SimTime(self.0 - self.0 % bucket.0)
    }
}

impl SimDuration {
    /// The empty interval.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable interval.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds an interval from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds an interval from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds an interval from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Builds an interval from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds an interval from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Length in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the interval is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero.
    pub const fn saturating_sub_or_zero(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the interval by a non-negative float, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative simulation interval"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t.as_millis(), 150);
        assert_eq!((t - SimTime::from_millis(100)).as_millis(), 50);
        assert_eq!(t - SimDuration::from_millis(150), SimTime::ZERO);
        assert_eq!(SimDuration::from_millis(6) / 2, SimDuration::from_millis(3));
        assert_eq!(
            SimDuration::from_millis(6) * 2,
            SimDuration::from_millis(12)
        );
    }

    #[test]
    fn saturating_since_is_zero_for_future_origin() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(5);
        assert_eq!(late.saturating_since(early).as_millis(), 4);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn floor_to_bucket() {
        let t = SimTime::from_millis(257);
        assert_eq!(t.floor_to(SimDuration::from_millis(100)).as_millis(), 200);
        assert_eq!(
            SimTime::ZERO.floor_to(SimDuration::from_millis(100)),
            SimTime::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "negative simulation interval")]
    fn negative_interval_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_nanos(10).mul_f64(1.26).as_nanos(), 13);
        assert_eq!(
            SimDuration::from_millis(100).mul_f64(0.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
