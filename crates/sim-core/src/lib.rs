//! Deterministic discrete-event simulation (DES) core.
//!
//! This crate is the bottom layer of the Sora reproduction workspace. It
//! provides the machinery every other crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time;
//! * [`EventQueue`] — a stable-ordered future event list;
//! * [`SimRng`] — a seeded, splittable random-number generator so whole
//!   cluster simulations are reproducible bit-for-bit;
//! * [`Dist`] — the service-time / inter-arrival distributions used by the
//!   microservice models;
//! * [`stats`] — streaming statistics (mean/variance, histograms, exact
//!   percentiles, Pearson correlation, MAPE) used both by the simulated
//!   telemetry pipeline and by the experiment harness;
//! * [`audit`] — the conservation-law audit seam ([`audit::AuditSink`])
//!   through which components report invariant violations when the
//!   workspace-wide `audit` feature is enabled.
//!
//! # Example
//!
//! ```
//! use sim_core::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.as_millis(), ev), (1, "a"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocmeter;
pub mod audit;
mod dist;
mod queue;
mod rng;
mod slab;
pub mod stats;
mod time;

pub use dist::Dist;
pub use queue::{EventQueue, QueueBackend, TimerWheel};
pub use rng::SimRng;
pub use slab::{Slab, SlabKey};
pub use time::{SimDuration, SimTime};
