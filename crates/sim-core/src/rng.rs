//! Seeded, splittable randomness for reproducible simulations.
//!
//! Self-contained implementation (no external crates): a xoshiro256++
//! generator seeded through splitmix64, the standard construction from
//! Blackman & Vigna. Streams are derived by hashing a label into the root
//! seed, so components can be wired up in any order without perturbing each
//! other's draws.

/// A deterministic random-number generator for simulation runs.
///
/// Every run is driven from one root seed; independent model components
/// (arrival process, each service's demand sampler, the load balancer, …)
/// take their own *stream* via [`SimRng::split`] so that adding a sampler to
/// one component does not perturb the random sequence seen by another.
///
/// # Example
///
/// ```
/// use sim_core::SimRng;
///
/// let mut root = SimRng::seed_from(42);
/// let mut arrivals = root.split("arrivals");
/// let mut demands = root.split("demands");
/// let a1 = arrivals.f64();
/// let d1 = demands.f64();
/// // Re-deriving the same stream replays it.
/// let mut root2 = SimRng::seed_from(42);
/// assert_eq!(root2.split("arrivals").f64(), a1);
/// root2.split("ignored-in-between"); // splits are order-independent
/// assert_eq!(root2.split("demands").f64(), d1);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a root seed.
    pub fn seed_from(seed: u64) -> Self {
        // Expand the seed into xoshiro state via splitmix64, per the
        // generator authors' recommendation.
        let mut x = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *s = mix(x);
        }
        SimRng { seed, state }
    }

    /// The root seed this generator (or its parent) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent named stream.
    ///
    /// The derived stream depends only on the root seed and `label`, not on
    /// how much randomness has been consumed from `self`, so components can
    /// be wired up in any order without changing each other's draws.
    pub fn split(&self, label: &str) -> SimRng {
        let sub = splitmix64(self.seed ^ fnv1a(label.as_bytes()));
        SimRng::seed_from(sub)
    }

    /// Derives an independent stream indexed by an integer (e.g. a replica id).
    pub fn split_index(&self, label: &str, index: u64) -> SimRng {
        let sub = splitmix64(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix64(index));
        SimRng::seed_from(sub)
    }

    /// Next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit draw (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "empty range [{low}, {high})");
        low + self.f64() * (high - low)
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        // Lemire-style multiply-shift keeps the draw unbiased without
        // division in the common case.
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// A uniform integer draw in `[low, high]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn u64_inclusive(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "empty range [{low}, {high}]");
        let span = high - low;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        low + (m >> 64) as u64
    }

    /// A Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.f64() < p
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The splitmix64 output mix (finalisation only).
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn splitmix64(x: u64) -> u64 {
    mix(x.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially disjoint");
    }

    #[test]
    fn splits_are_independent_of_consumption() {
        let mut a = SimRng::seed_from(1);
        let _ = a.next_u64(); // consume some
        let mut s1 = a.split("x");
        let b = SimRng::seed_from(1);
        let mut s2 = b.split("x");
        assert_eq!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn split_labels_distinguish_streams() {
        let root = SimRng::seed_from(3);
        let mut x = root.split("x");
        let mut y = root.split("y");
        assert_ne!(x.next_u64(), y.next_u64());
        let mut i0 = root.split_index("svc", 0);
        let mut i1 = root.split_index("svc", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn draws_respect_ranges() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..1_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            let u = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&u));
            let i = r.index(5);
            assert!(i < 5);
            let k = r.u64_inclusive(10, 20);
            assert!((10..=20).contains(&k));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut r = SimRng::seed_from(17);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.index(5)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from(0).range_f64(1.0, 1.0);
    }
}
