//! Runtime conservation-law auditing.
//!
//! The simulator's telemetry is built from hand-rolled incremental data
//! structures (bucket rings, token buckets, per-pod service accumulators).
//! Each maintains a quantity that is *conserved* by construction: requests
//! are injected exactly once and leave exactly once, CPU service delivered
//! can never exceed capacity × elapsed, a concurrency ring must equal the
//! integral of its enter/leave ledger. This module defines those laws as
//! checkable [`Invariant`]s and a tiny [`AuditSink`] seam through which
//! components report [`Violation`]s at runtime.
//!
//! The module itself is always compiled (it is a few dozen lines and has no
//! dependencies); the *call sites* in downstream crates are gated behind
//! their `audit` cargo feature so that production builds carry zero audit
//! state and zero per-event checks. Auditing is strictly observational: it
//! never mutates simulation state, draws randomness, or reorders events, so
//! a run with auditing enabled is byte-identical to one without.

use std::fmt;

/// A conservation law checked by the audit layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Every injected request is either completed, dropped (with a recorded
    /// reason), or still in flight: `injected = completed + dropped + in_flight`.
    RequestConservation,
    /// Busy CPU time delivered by a pod never exceeds its capacity integral
    /// (`limit × elapsed`, pressure-adjusted), and useful work never exceeds
    /// busy time.
    CpuTimeConservation,
    /// The concurrency bucket ring equals the integral of the live
    /// enter/leave ledger over every retained bucket.
    ConcurrencyIntegral,
    /// Retry-budget tokens obey the earn/spend ledger exactly:
    /// `tokens = cap + earned - clipped - spent` and never exceed the cap.
    RetryBudget,
    /// Events are dispatched in non-decreasing timestamp order.
    EventMonotonicity,
    /// Telemetry ingest is idempotent: the trace warehouse never stores two
    /// traces with the same root span id (network retransmits must be
    /// deduplicated, not double-counted).
    TelemetryIdempotence,
}

impl Invariant {
    /// All invariants, in reporting order.
    pub const ALL: [Invariant; 6] = [
        Invariant::RequestConservation,
        Invariant::CpuTimeConservation,
        Invariant::ConcurrencyIntegral,
        Invariant::RetryBudget,
        Invariant::EventMonotonicity,
        Invariant::TelemetryIdempotence,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::RequestConservation => "request_conservation",
            Invariant::CpuTimeConservation => "cpu_time_conservation",
            Invariant::ConcurrencyIntegral => "concurrency_integral",
            Invariant::RetryBudget => "retry_budget",
            Invariant::EventMonotonicity => "event_monotonicity",
            Invariant::TelemetryIdempotence => "telemetry_idempotence",
        }
    }

    fn index(self) -> usize {
        match self {
            Invariant::RequestConservation => 0,
            Invariant::CpuTimeConservation => 1,
            Invariant::ConcurrencyIntegral => 2,
            Invariant::RetryBudget => 3,
            Invariant::EventMonotonicity => 4,
            Invariant::TelemetryIdempotence => 5,
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single observed breach of an [`Invariant`].
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which law was broken.
    pub invariant: Invariant,
    /// Simulated time (nanoseconds since run start) at which the check fired.
    pub at_nanos: u64,
    /// Human-readable description with the offending quantities.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] t={}ns: {}",
            self.invariant.name(),
            self.at_nanos,
            self.detail
        )
    }
}

/// Receiver for audit violations.
///
/// Components that check invariants take `&mut dyn AuditSink` so callers
/// decide the policy (count, log, panic). Checks must only *report* through
/// the sink — never alter simulation state based on what they find.
pub trait AuditSink {
    /// Record one violation.
    fn record(&mut self, violation: Violation);
}

/// An [`AuditSink`] that counts violations per invariant and keeps the first
/// few full [`Violation`] records for diagnostics.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    counts: [u64; 6],
    first: Vec<Violation>,
}

impl CountingSink {
    /// How many full violation records are retained (counts are unbounded).
    pub const MAX_DETAILS: usize = 8;

    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total violations recorded across all invariants.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Violations recorded for one invariant.
    pub fn count(&self, invariant: Invariant) -> u64 {
        self.counts[invariant.index()]
    }

    /// The first [`Self::MAX_DETAILS`] violations, in arrival order.
    pub fn violations(&self) -> &[Violation] {
        &self.first
    }

    /// One-line per-invariant report, e.g. for asserting zero violations.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for inv in Invariant::ALL {
            let c = self.count(inv);
            if c > 0 {
                out.push_str(&format!("{}={} ", inv.name(), c));
            }
        }
        if out.is_empty() {
            out.push_str("clean");
        }
        for v in &self.first {
            out.push('\n');
            out.push_str(&format!("  {v}"));
        }
        out
    }
}

impl AuditSink for CountingSink {
    fn record(&mut self, violation: Violation) {
        self.counts[violation.invariant.index()] += 1;
        if self.first.len() < Self::MAX_DETAILS {
            self.first.push(violation);
        }
    }
}

/// A queryable, serializable snapshot of a [`CountingSink`] — the audit
/// layer's *verdict* on a finished run. Where [`CountingSink::summary`]
/// renders for humans, `AuditReport` is for machinery: the scenario fuzzer
/// treats it as an oracle, diffing `clean` and the per-invariant counts
/// across runs and embedding the whole report in shrunken reproducers.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AuditReport {
    /// True iff no invariant fired.
    pub clean: bool,
    /// Total violations across all invariants.
    pub total: u64,
    /// `(invariant name, count)` for every invariant with a non-zero
    /// count, in [`Invariant::ALL`] order.
    pub counts: Vec<(String, u64)>,
    /// The first few violations, rendered (`[name] t=...ns: detail`).
    pub details: Vec<String>,
}

impl CountingSink {
    /// The sink's verdict as a structured [`AuditReport`].
    pub fn report(&self) -> AuditReport {
        AuditReport {
            clean: self.total() == 0,
            total: self.total(),
            counts: Invariant::ALL
                .iter()
                .filter(|&&inv| self.count(inv) > 0)
                .map(|&inv| (inv.name().to_string(), self.count(inv)))
                .collect(),
            details: self.first.iter().map(|v| v.to_string()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts_and_caps_details() {
        let mut sink = CountingSink::new();
        assert_eq!(sink.total(), 0);
        assert_eq!(sink.summary(), "clean");
        for i in 0..20 {
            sink.record(Violation {
                invariant: Invariant::RequestConservation,
                at_nanos: i,
                detail: format!("v{i}"),
            });
        }
        sink.record(Violation {
            invariant: Invariant::EventMonotonicity,
            at_nanos: 99,
            detail: "clock ran backwards".into(),
        });
        assert_eq!(sink.total(), 21);
        assert_eq!(sink.count(Invariant::RequestConservation), 20);
        assert_eq!(sink.count(Invariant::EventMonotonicity), 1);
        assert_eq!(sink.count(Invariant::RetryBudget), 0);
        assert_eq!(sink.violations().len(), CountingSink::MAX_DETAILS);
        let s = sink.summary();
        assert!(s.contains("request_conservation=20"), "{s}");
        assert!(s.contains("event_monotonicity=1"), "{s}");
    }

    #[test]
    fn report_is_queryable_and_round_trips() {
        let mut sink = CountingSink::new();
        assert!(sink.report().clean);
        assert_eq!(sink.report().total, 0);
        sink.record(Violation {
            invariant: Invariant::RetryBudget,
            at_nanos: 5,
            detail: "tokens 51 > cap 50".into(),
        });
        sink.record(Violation {
            invariant: Invariant::RetryBudget,
            at_nanos: 9,
            detail: "tokens 52 > cap 50".into(),
        });
        let report = sink.report();
        assert!(!report.clean);
        assert_eq!(report.total, 2);
        assert_eq!(report.counts, vec![("retry_budget".to_string(), 2)]);
        assert_eq!(report.details.len(), 2);
        assert!(report.details[0].contains("tokens 51"), "{report:?}");
        let json = serde_json::to_string(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation {
            invariant: Invariant::CpuTimeConservation,
            at_nanos: 1_000,
            detail: "busy 2.0 > cap 1.0".into(),
        };
        let s = format!("{v}");
        assert!(s.contains("cpu_time_conservation"), "{s}");
        assert!(s.contains("t=1000ns"), "{s}");
        assert!(s.contains("busy 2.0"), "{s}");
    }
}
