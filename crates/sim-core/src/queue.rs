//! The future event list.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: ordered by time, then by insertion sequence so that
/// simultaneous events dequeue in the order they were scheduled (stable,
/// deterministic tie-breaking — essential for reproducible runs).
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future event list for discrete-event simulation.
///
/// Events scheduled for the same instant are delivered in scheduling order.
/// The queue never reorders equal-time events, so a simulation driven from a
/// single seeded RNG replays identically.
///
/// # Example
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "late");
/// q.schedule(SimTime::from_millis(10), "later"); // same instant: FIFO
/// q.schedule(SimTime::from_millis(1), "early");
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["early", "late", "later"]);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated instant: the timestamp of the last popped event
    /// (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Self::now); the simulator never
    /// travels backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Scheduled { at, event, .. } = self.heap.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// The timestamp of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), 5u32);
        q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(3), 3u32);
        let out: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, [1, 3, 5]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_millis(7), i);
        }
        let out: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(2), ());
        q.schedule(SimTime::from_millis(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(2));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(9));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::from_millis(9));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(4), ());
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(2));
    }

    proptest! {
        /// Any batch of scheduled events pops in non-decreasing time order,
        /// and equal-time events preserve their scheduling order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated for equal times");
                    }
                }
                last = Some((t, idx));
            }
        }

        /// len() counts scheduled-minus-popped events.
        #[test]
        fn prop_len(n in 0usize..64) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_nanos(i as u64), ());
            }
            prop_assert_eq!(q.len(), n);
            let mut remaining = n;
            while q.pop().is_some() {
                remaining -= 1;
                prop_assert_eq!(q.len(), remaining);
            }
            prop_assert!(q.is_empty());
        }
    }
}
