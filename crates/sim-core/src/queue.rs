//! The future event list.
//!
//! Two interchangeable engines implement the same deterministic contract
//! (earliest timestamp first; equal timestamps dequeue in scheduling
//! order):
//!
//! * [`TimerWheel`] — a hierarchical timing wheel with a calendar-style
//!   overflow list for far-future events. Schedule and pop are O(1)
//!   amortized, independent of how many events are pending, which is what
//!   keeps million-user worlds from spending their time in `sift_down`.
//!   This is the default backend.
//! * A plain `BinaryHeap` — O(log n) per operation. Kept both as the
//!   reference oracle for the wheel's equivalence proptests and as the
//!   baseline the `scale` bench measures speedups against.
//!
//! [`EventQueue`] wraps either backend behind the API the simulator uses;
//! the two produce **byte-identical pop sequences** for any schedule/pop
//! interleaving (proven by `prop_wheel_matches_heap_oracle` below), so
//! switching backends never changes simulation output.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: ordered by time, then by a caller-supplied sequence key
/// so that simultaneous events dequeue in a stable, deterministic order.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E: Clone> Clone for Scheduled<E> {
    fn clone(&self) -> Self {
        Scheduled {
            at: self.at,
            seq: self.seq,
            event: self.event.clone(),
        }
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// ---------------------------------------------------------------------
// Hierarchical timing wheel
// ---------------------------------------------------------------------

/// Granularity of the finest wheel level: 2^10 ns ≈ 1 µs per tick. Events
/// inside one tick are ordered exactly (by nanosecond, then sequence key)
/// when the tick's bucket is drained, so the coarse tick costs no fidelity.
const TICK_BITS: u32 = 10;
/// log2(slots per level): 64 slots.
const LEVEL_BITS: u32 = 6;
/// Wheel levels. Level `k` spans 2^(10+6k) ns per slot; six levels cover a
/// relative window of 2^46 ns ≈ 19.5 hours — far beyond any simulated
/// trace. Events beyond the window go to the calendar overflow list.
const LEVELS: usize = 6;
/// Bits covered by the whole wheel; events whose timestamp differs from the
/// horizon above this bit live in the overflow list.
const FAR_SHIFT: u32 = TICK_BITS + LEVEL_BITS * LEVELS as u32;

const fn shift(level: usize) -> u32 {
    TICK_BITS + LEVEL_BITS * level as u32
}

#[derive(Clone)]
struct WheelLevel<E> {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    slots: [Vec<Scheduled<E>>; 64],
}

impl<E> WheelLevel<E> {
    fn new() -> Self {
        WheelLevel {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// A hierarchical timing wheel: the O(1) future event list.
///
/// Entries are `(time, key, payload)`; pops come back ordered by
/// `(time, key)`. [`EventQueue`] uses an insertion counter as the key
/// (FIFO for equal times); the closed-loop user pool uses the user id
/// (matching its historical heap ordering). Keys must be unique per
/// timestamp for the order to be total.
///
/// # Layout and invariants
///
/// A `horizon` cursor (nanoseconds) separates three stores:
///
/// * `ready` + `stragglers` — every pending entry with `at < horizon`:
///   the most recently drained tick-bucket (sorted once, served from the
///   back) plus a tiny side heap of late arrivals scheduled behind the
///   horizon;
/// * the wheel — entries with `at ≥ horizon` within 2^46 ns of the
///   horizon, filed at the highest level where `at`'s slot path differs
///   from the horizon's;
/// * `far` — the calendar overflow for entries beyond the wheel's window,
///   migrated into the wheel when the horizon catches up.
///
/// Popping sorts the earliest non-empty bucket in place and serves it as
/// `ready` (cascading coarser levels down as the horizon advances), then
/// takes the minimum of `ready`'s tail and `stragglers`' top, so the
/// global `(time, key)` order is exact.
pub struct TimerWheel<E> {
    levels: Vec<WheelLevel<E>>,
    /// The drained bucket currently being served: entries with
    /// `at < horizon`, sorted descending by `(at, key)` so pops come off
    /// the back. Refilled by swapping in a whole level-0 bucket and
    /// sorting it once — cheaper than sifting every fat entry through a
    /// binary heap twice.
    ready: Vec<Scheduled<E>>,
    /// Entries scheduled *behind* the horizon after their tick was already
    /// drained (heap-semantics scheduling into the past). Rare, so they
    /// live in a small side heap merged with `ready` at pop time.
    stragglers: BinaryHeap<Scheduled<E>>,
    /// Calendar overflow: entries beyond the wheel window, unordered.
    far: Vec<Scheduled<E>>,
    /// Minimum timestamp in `far` (u64::MAX when empty).
    far_min: u64,
    /// Every pending entry not in `ready` has `at ≥ horizon` (ns).
    horizon: u64,
    now: SimTime,
    len: usize,
    /// Recycled bucket buffers. Slot indices at coarse levels advance
    /// monotonically with absolute time, so a freshly-entered slot has
    /// never been touched before; handing drained buffers to a pool (and
    /// filling empty slots from it) lets capacity follow the *workload*
    /// instead of the slot index, keeping steady-state churn
    /// allocation-free.
    spare: Vec<Vec<Scheduled<E>>>,
}

/// Max recycled buffers retained; beyond this, drained buffers are freed.
const SPARE_CAP: usize = 64;

impl<E: Clone> Clone for TimerWheel<E> {
    fn clone(&self) -> Self {
        TimerWheel {
            levels: self.levels.clone(),
            ready: self.ready.clone(),
            stragglers: self.stragglers.clone(),
            far: self.far.clone(),
            far_min: self.far_min,
            horizon: self.horizon,
            now: self.now,
            len: self.len,
            spare: Vec::new(),
        }
    }
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| WheelLevel::new()).collect(),
            ready: Vec::new(),
            stragglers: BinaryHeap::new(),
            far: Vec::new(),
            far_min: u64::MAX,
            horizon: 0,
            now: SimTime::ZERO,
            len: 0,
            spare: Vec::new(),
        }
    }

    /// The high-water mark of popped timestamps (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot index of `nanos` at `level`, relative to the wheel layout.
    fn slot_of(nanos: u64, level: usize) -> usize {
        ((nanos >> shift(level)) & 63) as usize
    }

    /// Files an entry with `at ≥ horizon` into the wheel or overflow.
    fn place(&mut self, entry: Scheduled<E>) {
        let at = entry.at.as_nanos();
        debug_assert!(at >= self.horizon);
        let diff = at ^ self.horizon;
        if diff >> FAR_SHIFT != 0 {
            self.far_min = self.far_min.min(at);
            self.far.push(entry);
            return;
        }
        let ticks = diff >> TICK_BITS;
        let level = if ticks == 0 {
            0
        } else {
            (63 - ticks.leading_zeros() as usize) / LEVEL_BITS as usize
        };
        let slot = Self::slot_of(at, level);
        if self.levels[level].slots[slot].capacity() == 0 {
            if let Some(buf) = self.spare.pop() {
                self.levels[level].slots[slot] = buf;
            }
        }
        self.levels[level].slots[slot].push(entry);
        self.levels[level].occupied |= 1 << slot;
    }

    /// Returns a drained bucket buffer to the spare pool (or frees it).
    fn recycle(&mut self, buf: Vec<Scheduled<E>>) {
        debug_assert!(buf.is_empty());
        if buf.capacity() > 0 && self.spare.len() < SPARE_CAP {
            self.spare.push(buf);
        }
    }

    /// Entries already drained past the horizon (served before the wheel).
    fn ready_len(&self) -> usize {
        self.ready.len() + self.stragglers.len()
    }

    /// The `(time, key)` of the earliest drained entry, if any.
    fn ready_peek(&self) -> Option<(SimTime, u64)> {
        let r = self.ready.last().map(|e| (e.at, e.seq));
        let s = self.stragglers.peek().map(|e| (e.at, e.seq));
        match (r, s) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pops the earliest drained entry. Caller guarantees one exists.
    fn ready_pop(&mut self) -> Scheduled<E> {
        let take_straggler = match (self.ready.last(), self.stragglers.peek()) {
            (Some(r), Some(s)) => (s.at, s.seq) < (r.at, r.seq),
            (None, _) => true,
            (_, None) => false,
        };
        if take_straggler {
            self.stragglers.pop().expect("caller checked ready_len")
        } else {
            self.ready.pop().expect("caller checked ready_len")
        }
    }

    /// Schedules `event` with ordering key `key` at absolute time `at`.
    ///
    /// `at` may be earlier than [`now`](Self::now): the wheel then behaves
    /// exactly like a binary heap — the entry joins the `ready` heap and
    /// pops before everything later. Callers that need strict time
    /// monotonicity (like [`EventQueue`]) assert it themselves.
    pub fn schedule(&mut self, at: SimTime, key: u64, event: E) {
        self.len += 1;
        let entry = Scheduled {
            at,
            seq: key,
            event,
        };
        if at.as_nanos() < self.horizon {
            // The tick containing `at` has already been drained; join the
            // straggler heap, which still orders exactly by (time, key).
            self.stragglers.push(entry);
        } else {
            self.place(entry);
        }
    }

    /// Moves overflow entries that fell inside the wheel window back into
    /// the wheel (the "calendar page turn").
    fn migrate_far(&mut self) {
        let mut far = std::mem::take(&mut self.far);
        self.far_min = u64::MAX;
        for entry in far.drain(..) {
            // `place` re-files against the current horizon: entries still
            // beyond the window land back in `far` and refresh `far_min`.
            self.place(entry);
        }
        if self.far.is_empty() {
            self.far = far; // keep the warmed buffer
        } else {
            self.recycle(far);
        }
    }

    /// Refills `ready` with the earliest pending bucket. Returns `false`
    /// when nothing is pending outside `ready`.
    fn refill_ready(&mut self) -> bool {
        if self.len == self.ready_len() {
            return false;
        }
        loop {
            if self.far_min >> FAR_SHIFT == self.horizon >> FAR_SHIFT {
                self.migrate_far();
            }
            // Cascade any "parked" coarse slot — one the horizon has
            // entered (slot == cursor) whose entries haven't been refiled
            // at finer levels yet. This happens when a tick drain carries
            // the horizon into the next coarse group, or after a calendar
            // page turn. It MUST precede the bottom-up search: a parked
            // entry can be earlier than everything already at level 0.
            if self.cascade_parked() {
                continue;
            }
            // No parked slots: the lowest level with an occupied slot at
            // or after the horizon's path holds the earliest entries.
            let mut found = None;
            for (k, level) in self.levels.iter().enumerate() {
                let idx = Self::slot_of(self.horizon, k);
                let mask = level.occupied & (!0u64 << idx);
                if mask != 0 {
                    found = Some((k, mask.trailing_zeros() as usize));
                    break;
                }
            }
            let Some((k, s)) = found else {
                if self.far.is_empty() {
                    return false;
                }
                // Wheel empty: turn the calendar to the overflow's first
                // page and let migration refile it.
                self.horizon = self.far_min;
                continue;
            };
            if k == 0 {
                // Drain the earliest tick bucket: one in-place sort, then
                // the whole bucket *becomes* the ready vector (the old,
                // now-empty vector's buffer goes back to the pool). Exact
                // (time, key) order is restored by the sort, so the coarse
                // tick never reorders events.
                let level = &mut self.levels[0];
                level.occupied &= !(1 << s);
                let upper = self.horizon & (!0u64 << shift(1));
                let slot_start = upper | ((s as u64) << TICK_BITS);
                self.horizon = slot_start + (1 << TICK_BITS);
                let mut bucket = std::mem::take(&mut self.levels[0].slots[s]);
                // `Scheduled`'s Ord is inverted (earliest = greatest), so a
                // plain ascending sort leaves the earliest entry last —
                // ready to pop off the back.
                bucket.sort_unstable();
                debug_assert!(self.ready.is_empty());
                std::mem::swap(&mut self.ready, &mut bucket);
                self.recycle(bucket);
                debug_assert!(!self.ready.is_empty());
                return true;
            }
            // cascade_parked ruled out slot == cursor, so nothing is
            // pending before this coarse slot: advance the horizon to its
            // start. The slot is then parked and cascades next iteration.
            debug_assert!(s > Self::slot_of(self.horizon, k));
            let upper = self.horizon & (!0u64 << shift(k + 1));
            self.horizon = upper | ((s as u64) << shift(k));
        }
    }

    /// Refiles the lowest parked coarse slot (level ≥ 1, slot == the
    /// horizon's cursor at that level) into finer levels. Returns whether
    /// anything was cascaded.
    fn cascade_parked(&mut self) -> bool {
        for k in 1..LEVELS {
            let c = Self::slot_of(self.horizon, k);
            if self.levels[k].occupied & (1 << c) != 0 {
                self.levels[k].occupied &= !(1 << c);
                let mut entries = std::mem::take(&mut self.levels[k].slots[c]);
                for entry in entries.drain(..) {
                    // Every entry shares the horizon's group at level k, so
                    // it refiles strictly below level k.
                    self.place(entry);
                }
                // Pool the emptied buffer so steady-state cascades stay
                // allocation-free (the next use of this slot *index* is a
                // whole level-span away; the pool reuses it much sooner).
                self.recycle(entries);
                return true;
            }
        }
        false
    }

    /// Removes and returns the earliest entry, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if self.ready_len() == 0 && !self.refill_ready() {
            return None;
        }
        let Scheduled { at, seq, event } = self.ready_pop();
        // `now` is the high-water mark of popped times; a caller that
        // scheduled into the past (heap semantics) can legally pop below it.
        self.now = self.now.max(at);
        self.len -= 1;
        Some((at, seq, event))
    }

    /// Pops the earliest entry only if its time is at or before `t`.
    ///
    /// This is the hot-path form of "peek, compare, pop": it reuses the
    /// amortized-O(1) refill machinery instead of [`peek`](Self::peek),
    /// whose read-only scan must walk the first occupied slot of every
    /// level (a coarse slot can hold thousands of far-future entries).
    /// Drained-but-unpopped entries simply stay in the ready store.
    pub fn pop_before(&mut self, t: SimTime) -> Option<(SimTime, u64, E)> {
        if self.ready_len() == 0 && !self.refill_ready() {
            return None;
        }
        if self.ready_peek().expect("refilled above").0 > t {
            return None;
        }
        self.pop()
    }

    /// The `(time, key)` of the earliest entry without removing it.
    pub fn peek(&self) -> Option<(SimTime, u64)> {
        if let Some(top) = self.ready_peek() {
            return Some(top);
        }
        // Mirror `refill_ready` without mutating. Within one level, slot
        // order is time order, so each level's minimum lives in its first
        // occupied slot at or after the cursor — but a coarse level's
        // cursor slot (entries "parked" until the next cascade) overlaps
        // every finer level's range, so the levels' minima must be folded
        // rather than trusting the lowest occupied level alone.
        let mut best: Option<(SimTime, u64)> = None;
        for (k, level) in self.levels.iter().enumerate() {
            let idx = Self::slot_of(self.horizon, k);
            let mask = level.occupied & (!0u64 << idx);
            if mask != 0 {
                let s = mask.trailing_zeros() as usize;
                let level_min = level.slots[s]
                    .iter()
                    .map(|e| (e.at, e.seq))
                    .min()
                    .expect("occupied bit set on empty slot");
                best = Some(best.map_or(level_min, |b| b.min(level_min)));
            }
        }
        if best.is_some() {
            return best;
        }
        self.far.iter().map(|e| (e.at, e.seq)).min()
    }

    /// Iterates pending entries in arbitrary order (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64, &E)> {
        self.ready
            .iter()
            .chain(self.stragglers.iter())
            .chain(self.levels.iter().flat_map(|l| l.slots.iter().flatten()))
            .chain(self.far.iter())
            .map(|e| (e.at, e.seq, &e.event))
    }
}

impl<E> std::fmt::Debug for TimerWheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("now", &self.now)
            .field("pending", &self.len)
            .field("ready", &self.ready_len())
            .field("far", &self.far.len())
            .finish()
    }
}

// ---------------------------------------------------------------------
// The EventQueue façade
// ---------------------------------------------------------------------

/// Which engine an [`EventQueue`] runs on. Both are deterministic and
/// produce identical pop sequences; the heap exists as the equivalence
/// oracle and as the performance baseline for the `scale` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Hierarchical timing wheel (O(1) amortized; the default).
    #[default]
    TimingWheel,
    /// Binary heap (O(log n); oracle/baseline).
    BinaryHeap,
}

enum Inner<E> {
    Wheel(TimerWheel<E>),
    Heap(BinaryHeap<Scheduled<E>>),
}

/// A deterministic future event list for discrete-event simulation.
///
/// Events scheduled for the same instant are delivered in scheduling order.
/// The queue never reorders equal-time events, so a simulation driven from a
/// single seeded RNG replays identically.
///
/// # Example
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "late");
/// q.schedule(SimTime::from_millis(10), "later"); // same instant: FIFO
/// q.schedule(SimTime::from_millis(1), "early");
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["early", "late", "later"]);
/// ```
pub struct EventQueue<E> {
    inner: Inner<E>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (timing-wheel backend) with the clock at
    /// [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue::with_backend(QueueBackend::TimingWheel)
    }

    /// Creates an empty queue on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            inner: match backend {
                QueueBackend::TimingWheel => Inner::Wheel(TimerWheel::new()),
                QueueBackend::BinaryHeap => Inner::Heap(BinaryHeap::new()),
            },
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.inner {
            Inner::Wheel(_) => QueueBackend::TimingWheel,
            Inner::Heap(_) => QueueBackend::BinaryHeap,
        }
    }

    /// The current simulated instant: the timestamp of the last popped event
    /// (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Self::now); the simulator never
    /// travels backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        match &mut self.inner {
            Inner::Wheel(w) => w.schedule(at, seq, event),
            Inner::Heap(h) => h.push(Scheduled { at, seq, event }),
        }
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = match &mut self.inner {
            Inner::Wheel(w) => w.pop().map(|(at, _, event)| (at, event))?,
            Inner::Heap(h) => h.pop().map(|s| (s.at, s.event))?,
        };
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// Removes and returns the earliest pending event only if it is due at
    /// or before `t`, advancing the clock to its timestamp.
    ///
    /// Equivalent to `peek_time() <= t` followed by [`pop`](Self::pop),
    /// but on the wheel backend it avoids the peek's per-level slot scan —
    /// use this in event loops (`while let Some((now, ev)) =
    /// q.pop_before(t)`).
    pub fn pop_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        let (at, event) = match &mut self.inner {
            Inner::Wheel(w) => w.pop_before(t).map(|(at, _, event)| (at, event))?,
            Inner::Heap(h) => {
                if h.peek()?.at > t {
                    return None;
                }
                h.pop().map(|s| (s.at, s.event))?
            }
        };
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// The timestamp of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Wheel(w) => w.peek().map(|(at, _)| at),
            Inner::Heap(h) => h.peek().map(|s| s.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Wheel(w) => w.len(),
            Inner::Heap(h) => h.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("backend", &self.backend())
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn both_backends() -> [EventQueue<u32>; 2] {
        [
            EventQueue::with_backend(QueueBackend::TimingWheel),
            EventQueue::with_backend(QueueBackend::BinaryHeap),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both_backends() {
            q.schedule(SimTime::from_millis(5), 5u32);
            q.schedule(SimTime::from_millis(1), 1u32);
            q.schedule(SimTime::from_millis(3), 3u32);
            let out: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(out, [1, 3, 5]);
        }
    }

    #[test]
    fn equal_times_are_fifo() {
        for mut q in both_backends() {
            for i in 0..100u32 {
                q.schedule(SimTime::from_millis(7), i);
            }
            let out: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(out, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        for mut q in both_backends() {
            q.schedule(SimTime::from_millis(2), 0);
            q.schedule(SimTime::from_millis(9), 0);
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_millis(2));
            q.pop();
            assert_eq!(q.now(), SimTime::from_millis(9));
            assert!(q.pop().is_none());
            assert_eq!(q.now(), SimTime::from_millis(9));
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn peek_matches_pop() {
        for mut q in both_backends() {
            assert_eq!(q.peek_time(), None);
            q.schedule(SimTime::from_millis(4), 0);
            q.schedule(SimTime::from_millis(2), 0);
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
            assert_eq!(q.pop().unwrap().0, SimTime::from_millis(2));
        }
    }

    #[test]
    fn pop_before_only_releases_due_events() {
        for mut q in both_backends() {
            q.schedule(SimTime::from_millis(4), 40u32);
            q.schedule(SimTime::from_millis(2), 20u32);
            assert_eq!(q.pop_before(SimTime::from_millis(1)), None);
            assert_eq!(
                q.pop_before(SimTime::from_millis(2)),
                Some((SimTime::from_millis(2), 20))
            );
            // The undrained event is untouched and pops normally later.
            assert_eq!(q.pop_before(SimTime::from_millis(3)), None);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((SimTime::from_millis(4), 40)));
            assert_eq!(q.pop_before(SimTime::from_millis(100)), None);
        }
    }

    /// Scheduling while popping, including into already-drained ticks: a
    /// late event landing before the wheel's horizon must still dequeue in
    /// exact time order.
    #[test]
    fn late_arrivals_into_the_current_tick_stay_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), 1u32);
        q.schedule(SimTime::from_nanos(90_000), 4u32);
        assert_eq!(q.pop().unwrap().1, 1);
        // 150 ns is inside the tick the wheel just drained (horizon has
        // moved past it) and ahead of `now` — legal and must come next.
        q.schedule(SimTime::from_nanos(150), 2u32);
        q.schedule(SimTime::from_nanos(80_000), 3u32);
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, [2, 3, 4]);
    }

    /// Far-future events take the calendar overflow path and still pop in
    /// order, interleaved with near events scheduled later.
    #[test]
    fn far_future_events_migrate_back_in_order() {
        let mut q = EventQueue::new();
        let day = 86_400u64 * 1_000_000_000; // beyond the 2^46 ns window
        q.schedule(SimTime::from_nanos(3 * day), 30u32);
        q.schedule(SimTime::from_nanos(day), 10u32);
        q.schedule(SimTime::from_nanos(5), 1u32);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime::from_nanos(day + 7), 11u32);
        q.schedule(SimTime::from_nanos(2 * day), 20u32);
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, [10, 11, 20, 30]);
    }

    #[test]
    fn timer_wheel_orders_by_caller_key_for_equal_times() {
        // The user pool keys pending sends by user id: for equal
        // timestamps the *smaller key* pops first, regardless of
        // scheduling order.
        let mut w: TimerWheel<()> = TimerWheel::new();
        w.schedule(SimTime::from_millis(3), 9, ());
        w.schedule(SimTime::from_millis(3), 2, ());
        w.schedule(SimTime::from_millis(1), 7, ());
        assert_eq!(w.peek(), Some((SimTime::from_millis(1), 7)));
        let order: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|(_, k, _)| k).collect();
        assert_eq!(order, [7, 2, 9]);
        assert!(w.is_empty());
    }

    #[test]
    fn timer_wheel_iter_sees_every_store() {
        let mut w: TimerWheel<u8> = TimerWheel::new();
        let day = 86_400u64 * 1_000_000_000;
        w.schedule(SimTime::from_nanos(10), 0, 1); // wheel
        w.schedule(SimTime::from_nanos(day), 1, 2); // far overflow
        w.schedule(SimTime::from_nanos(20), 2, 3);
        w.pop(); // leaves an entry in `ready`? (same tick) — at least exercises drain
        let mut seen: Vec<u8> = w.iter().map(|(_, _, e)| *e).collect();
        seen.sort_unstable();
        assert_eq!(seen, [2, 3]);
        assert_eq!(w.len(), 2);
    }

    proptest! {
        /// Any batch of scheduled events pops in non-decreasing time order,
        /// and equal-time events preserve their scheduling order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            for backend in [QueueBackend::TimingWheel, QueueBackend::BinaryHeap] {
                let mut q = EventQueue::with_backend(backend);
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_nanos(t), i);
                }
                let mut last: Option<(SimTime, usize)> = None;
                while let Some((t, idx)) = q.pop() {
                    if let Some((lt, lidx)) = last {
                        prop_assert!(t >= lt);
                        if t == lt {
                            prop_assert!(idx > lidx, "FIFO violated for equal times");
                        }
                    }
                    last = Some((t, idx));
                }
            }
        }

        /// len() counts scheduled-minus-popped events.
        #[test]
        fn prop_len(n in 0usize..64) {
            for backend in [QueueBackend::TimingWheel, QueueBackend::BinaryHeap] {
                let mut q = EventQueue::with_backend(backend);
                for i in 0..n {
                    q.schedule(SimTime::from_nanos(i as u64), ());
                }
                prop_assert_eq!(q.len(), n);
                let mut remaining = n;
                while q.pop().is_some() {
                    remaining -= 1;
                    prop_assert_eq!(q.len(), remaining);
                }
                prop_assert!(q.is_empty());
            }
        }

        /// The tentpole equivalence proof: for arbitrary interleavings of
        /// schedules (with clustered, duplicate, and far-future timestamps)
        /// and pops, the timing wheel's pop sequence is identical — times
        /// AND payloads — to the `BinaryHeap` oracle's. This is the
        /// property that makes the backend swap invisible to simulations.
        #[test]
        fn prop_wheel_matches_heap_oracle(
            ops in proptest::collection::vec(
                (0u8..5, 0u64..200, 0u64..1_000_000_000),
                1..400,
            )
        ) {
            let mut wheel = EventQueue::with_backend(QueueBackend::TimingWheel);
            let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
            let mut id = 0u64;
            for (op, coarse, fine) in ops {
                match op {
                    // Schedule: mix tick-sharing clusters (same microsecond),
                    // exact duplicates, spread-out times, and far-future
                    // calendar times.
                    0 => {
                        let base = wheel.now().as_nanos();
                        let at = SimTime::from_nanos(base + coarse * 997);
                        wheel.schedule(at, id);
                        heap.schedule(at, id);
                        id += 1;
                    }
                    1 => {
                        let base = wheel.now().as_nanos();
                        // Dense cluster: many events inside one 1024 ns tick.
                        let at = SimTime::from_nanos(base + (fine % 1024));
                        wheel.schedule(at, id);
                        heap.schedule(at, id);
                        id += 1;
                    }
                    2 => {
                        let base = wheel.now().as_nanos();
                        // Far future: beyond the 2^46 ns wheel window.
                        let at = SimTime::from_nanos(base + (1 << 46) + (fine % (1 << 20)));
                        wheel.schedule(at, id);
                        heap.schedule(at, id);
                        id += 1;
                    }
                    3 => {
                        prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                        let a = wheel.pop();
                        let b = heap.pop();
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(wheel.now(), heap.now());
                    }
                    // Bounded pop (the event-loop hot path): both backends
                    // must agree on whether the earliest event is due.
                    _ => {
                        let bound = SimTime::from_nanos(wheel.now().as_nanos() + fine % 4096);
                        let a = wheel.pop_before(bound);
                        let b = heap.pop_before(bound);
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(wheel.now(), heap.now());
                    }
                }
                prop_assert_eq!(wheel.len(), heap.len());
            }
            // Drain both to the end: full sequences must agree.
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
