//! Forecast-error metrics: MAPE (used by the paper's Table 1), MAE, RMSE.

/// Mean Absolute Percentage Error, in percent.
///
/// `mape(actual, predicted)` = `100/n · Σ |aᵢ − pᵢ| / |aᵢ|`. Entries whose
/// actual value is zero are skipped (the ratio is undefined there), matching
/// the conventional definition the paper cites. Returns `None` when the
/// series have different lengths or no usable entries.
///
/// # Example
///
/// ```
/// use sim_core::stats::mape;
/// let actual = [100.0, 200.0];
/// let predicted = [110.0, 180.0];
/// assert!((mape(&actual, &predicted).unwrap() - 10.0).abs() < 1e-12);
/// ```
pub fn mape(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    if actual.len() != predicted.len() {
        return None;
    }
    let mut sum = 0.0;
    let mut n = 0u32;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            sum += ((a - p) / a).abs();
            n += 1;
        }
    }
    (n > 0).then(|| 100.0 * sum / f64::from(n))
}

/// Mean Absolute Error. Returns `None` for mismatched lengths or empty input.
pub fn mae(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    if actual.len() != predicted.len() || actual.is_empty() {
        return None;
    }
    let sum: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum();
    Some(sum / actual.len() as f64)
}

/// Root Mean Squared Error. Returns `None` for mismatched lengths or empty input.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    if actual.len() != predicted.len() || actual.is_empty() {
        return None;
    }
    let sum: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).powi(2))
        .sum();
    Some((sum / actual.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_prediction_is_zero_error() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(mape(&xs, &xs), Some(0.0));
        assert_eq!(mae(&xs, &xs), Some(0.0));
        assert_eq!(rmse(&xs, &xs), Some(0.0));
    }

    #[test]
    fn zero_actuals_are_skipped() {
        let m = mape(&[0.0, 100.0], &[5.0, 150.0]).unwrap();
        assert!((m - 50.0).abs() < 1e-12);
        assert_eq!(mape(&[0.0], &[1.0]), None);
    }

    #[test]
    fn mismatched_lengths_are_none() {
        assert_eq!(mape(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(mae(&[], &[]), None);
        assert_eq!(rmse(&[1.0], &[]), None);
    }

    #[test]
    fn rmse_dominates_mae() {
        let a = [10.0, 10.0, 10.0];
        let p = [10.0, 10.0, 19.0];
        assert!(rmse(&a, &p).unwrap() >= mae(&a, &p).unwrap());
    }

    proptest! {
        /// All metrics are non-negative, and RMSE ≥ MAE (Jensen).
        #[test]
        fn prop_nonnegative(
            pairs in proptest::collection::vec((1e-3f64..1e3, -1e3f64..1e3), 1..100)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let p: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            prop_assert!(mape(&a, &p).unwrap() >= 0.0);
            let mae_v = mae(&a, &p).unwrap();
            let rmse_v = rmse(&a, &p).unwrap();
            prop_assert!(mae_v >= 0.0);
            prop_assert!(rmse_v + 1e-9 >= mae_v);
        }
    }
}
