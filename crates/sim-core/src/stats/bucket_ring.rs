//! Fixed-width ring buffer of per-bucket aggregates for streaming
//! telemetry.
//!
//! A [`BucketRing`] maps an unbounded, monotonically advancing sequence of
//! absolute bucket indices (`time / width`) onto a fixed pool of slots.
//! Ingest folds each event into its bucket's slot in O(1) amortized time;
//! windowed queries then read a contiguous run of slots instead of
//! re-scanning raw history. Slots older than the pool's capacity are
//! recycled: advancing to bucket `b` zeroes every slot between the previous
//! frontier and `b`, so a slot always holds exactly the aggregate of the
//! one bucket it currently represents.
//!
//! The ring itself is aggregate-agnostic: `T` is any `Copy + Default`
//! accumulator (an integer integral, a pair of counters, …). Exactness is
//! the caller's contract — the telemetry trackers store *integer* sums so
//! ring-served answers are bit-identical to a scan over raw events.

/// A ring of per-bucket aggregates over an unbounded, monotonically
/// advancing bucket index space. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct BucketRing<T> {
    width: u64,
    slots: Box<[T]>,
    /// One past the newest bucket index ever touched; `0` means empty.
    next: u64,
}

impl<T: Copy + Default> BucketRing<T> {
    /// Creates a ring of `capacity` buckets, each `width` nanoseconds wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `capacity` is zero.
    pub fn new(width: u64, capacity: usize) -> Self {
        assert!(width > 0, "bucket width must be non-zero");
        assert!(capacity > 0, "ring capacity must be non-zero");
        BucketRing {
            width,
            slots: vec![T::default(); capacity].into_boxed_slice(),
            next: 0,
        }
    }

    /// Bucket width in nanoseconds.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Number of slots in the pool.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Absolute bucket index containing the instant `t_nanos`.
    pub fn bucket_of(&self, t_nanos: u64) -> u64 {
        t_nanos / self.width
    }

    /// One past the newest bucket index ever touched.
    pub fn next_bucket(&self) -> u64 {
        self.next
    }

    /// Oldest bucket index still backed by a slot. Queries starting before
    /// this bucket cannot be served from the ring.
    pub fn first_retained(&self) -> u64 {
        self.next.saturating_sub(self.slots.len() as u64)
    }

    /// Moves the frontier so `bucket` is backed by a slot, zeroing every
    /// slot recycled on the way. Amortized O(1) per bucket of simulated
    /// time; a jump larger than the capacity clears the whole pool once.
    pub fn advance_to(&mut self, bucket: u64) {
        if bucket < self.next {
            return;
        }
        let cap = self.slots.len() as u64;
        if bucket - self.next >= cap {
            self.slots.fill(T::default());
        } else {
            for b in self.next..=bucket {
                self.slots[(b % cap) as usize] = T::default();
            }
        }
        self.next = bucket + 1;
    }

    /// Mutable access to `bucket`'s slot, advancing the frontier if the
    /// bucket is new. `None` when the bucket has already been recycled.
    pub fn slot_mut(&mut self, bucket: u64) -> Option<&mut T> {
        self.advance_to(bucket);
        if bucket < self.first_retained() {
            return None;
        }
        let cap = self.slots.len() as u64;
        Some(&mut self.slots[(bucket % cap) as usize])
    }

    /// Reads `bucket`'s aggregate. Buckets at or past the frontier are
    /// empty by definition (`T::default()`); buckets older than the
    /// retention window return `None`.
    pub fn get(&self, bucket: u64) -> Option<T> {
        if bucket < self.first_retained() {
            return None;
        }
        if bucket >= self.next {
            return Some(T::default());
        }
        let cap = self.slots.len() as u64;
        Some(self.slots[(bucket % cap) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_and_reads_back() {
        let mut r: BucketRing<u64> = BucketRing::new(10, 4);
        *r.slot_mut(0).unwrap() += 5;
        *r.slot_mut(2).unwrap() += 7;
        assert_eq!(r.get(0), Some(5));
        assert_eq!(r.get(1), Some(0));
        assert_eq!(r.get(2), Some(7));
        assert_eq!(r.get(3), Some(0), "past the frontier is empty");
    }

    #[test]
    fn recycles_old_slots() {
        let mut r: BucketRing<u64> = BucketRing::new(10, 4);
        *r.slot_mut(0).unwrap() += 1;
        *r.slot_mut(5).unwrap() += 2; // evicts buckets 0 and 1
        assert_eq!(r.first_retained(), 2);
        assert_eq!(r.get(0), None);
        assert_eq!(r.get(2), Some(0), "recycled slot was zeroed");
        assert_eq!(r.get(5), Some(2));
    }

    #[test]
    fn large_jump_clears_pool() {
        let mut r: BucketRing<u64> = BucketRing::new(10, 4);
        *r.slot_mut(1).unwrap() += 9;
        *r.slot_mut(1000).unwrap() += 3;
        assert_eq!(r.get(1), None);
        for b in 997..1000 {
            assert_eq!(r.get(b), Some(0), "bucket {b}");
        }
        assert_eq!(r.get(1000), Some(3));
    }

    #[test]
    fn stale_write_is_rejected() {
        let mut r: BucketRing<u64> = BucketRing::new(10, 2);
        *r.slot_mut(10).unwrap() += 1;
        assert!(r.slot_mut(3).is_none());
        assert_eq!(r.get(10), Some(1), "frontier unchanged by stale write");
    }
}
