//! Latency histograms with percentile queries.

use crate::SimDuration;
use serde::{Deserialize, Serialize};

/// A log-bucketed latency histogram with exact-ish percentile queries.
///
/// Buckets grow geometrically (default 2 % per bucket), giving ≤ 2 %
/// relative error on any percentile while using a few hundred buckets to
/// cover nanoseconds-to-minutes. This mirrors what HDR-style histograms do
/// in production telemetry systems and is what the reproduction uses for
/// the paper's p95/p99 tables (Table 2) and response-time distribution
/// figures (Figure 4).
///
/// # Example
///
/// ```
/// use sim_core::stats::LatencyHistogram;
/// use sim_core::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=1000u64 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// let p50 = h.percentile(50.0).unwrap();
/// assert!((490..=515).contains(&p50.as_millis()));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// `counts[i]` counts samples in bucket `i`; bucket upper bounds grow
    /// geometrically from `first_bound` by `growth`.
    counts: Vec<u64>,
    total: u64,
    first_bound: f64,
    growth: f64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// A histogram covering 1 µs … ~20 min with 2 % buckets.
    pub fn new() -> Self {
        Self::with_resolution(1_000.0, 1.02)
    }

    /// A histogram with a custom first bucket bound (nanoseconds) and
    /// per-bucket growth factor.
    ///
    /// # Panics
    ///
    /// Panics if `first_bound_nanos <= 0` or `growth <= 1`.
    pub fn with_resolution(first_bound_nanos: f64, growth: f64) -> Self {
        assert!(first_bound_nanos > 0.0, "first bound must be positive");
        assert!(growth > 1.0, "growth must exceed 1");
        LatencyHistogram {
            counts: Vec::new(),
            total: 0,
            first_bound: first_bound_nanos,
            growth,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(&self, nanos: u64) -> usize {
        if (nanos as f64) <= self.first_bound {
            return 0;
        }
        ((nanos as f64 / self.first_bound).ln() / self.growth.ln()).ceil() as usize
    }

    /// Upper bound (nanoseconds) of bucket `i`.
    fn bound_of(&self, i: usize) -> f64 {
        self.first_bound * self.growth.powi(i as i32)
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let nanos = d.as_nanos();
        let b = self.bucket_of(nanos);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of samples at or below `threshold`.
    pub fn count_at_or_below(&self, threshold: SimDuration) -> u64 {
        let t = threshold.as_nanos();
        let tb = self.bucket_of(t);
        let mut n = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if i < tb {
                n += c;
            } else if i == tb {
                // The threshold bucket straddles the threshold; all samples in
                // it are ≤ its upper bound which is ≥ t, so count it only when
                // the bound is within resolution of t (conservative: include).
                n += c;
            } else {
                break;
            }
        }
        n.min(self.total)
    }

    /// The `p`-th percentile, or `None` when the histogram is empty or `p`
    /// is not a finite value in `[0, 100]`.
    ///
    /// Shares its edge-case contract with `ClientLog::percentile_in` in the
    /// telemetry crate: `p = 0` returns the smallest sample, `p = 100` the
    /// largest, and invalid `p` (NaN, ±∞, out of range) is `None` — never a
    /// panic or an out-of-bounds rank.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        if !p.is_finite() || !(0.0..=100.0).contains(&p) {
            return None;
        }
        if self.total == 0 {
            return None;
        }
        if p == 0.0 {
            return Some(SimDuration::from_nanos(self.min));
        }
        if p == 100.0 {
            return Some(SimDuration::from_nanos(self.max));
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let hi = self.bound_of(i).min(self.max as f64);
                let lo = if i == 0 {
                    self.min as f64
                } else {
                    self.bound_of(i - 1)
                };
                let mid = (lo.max(self.min as f64) + hi).max(0.0) / 2.0;
                return Some(SimDuration::from_nanos(mid.round() as u64));
            }
        }
        Some(SimDuration::from_nanos(self.max))
    }

    /// Mean of the recorded samples (bucket-midpoint approximation).
    pub fn approx_mean(&self) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let mut sum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let hi = self.bound_of(i);
            let lo = if i == 0 { 0.0 } else { self.bound_of(i - 1) };
            sum += c as f64 * (lo + hi) / 2.0;
        }
        Some(SimDuration::from_nanos(
            (sum / self.total as f64).round() as u64
        ))
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_nanos(self.min))
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_nanos(self.max))
    }

    /// Merges another histogram with identical bucketing.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms use different resolutions.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert!(
            (self.first_bound - other.first_bound).abs() < f64::EPSILON
                && (self.growth - other.growth).abs() < f64::EPSILON,
            "histogram resolutions differ"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates `(bucket_upper_bound, count)` over non-empty buckets — the
    /// raw material for Figure 4's semi-log frequency plots.
    pub fn iter(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (SimDuration::from_nanos(self.bound_of(i).round() as u64), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.approx_mean(), None);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=10_000u64 {
            h.record(SimDuration::from_millis(ms));
        }
        for (p, expect_ms) in [(50.0, 5_000.0), (95.0, 9_500.0), (99.0, 9_900.0)] {
            let got = h.percentile(p).unwrap().as_millis() as f64;
            let rel = (got - expect_ms).abs() / expect_ms;
            assert!(rel < 0.03, "p{p}: got {got}, want ~{expect_ms}");
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(3));
        h.record(SimDuration::from_millis(250));
        assert_eq!(h.min().unwrap().as_micros(), 3);
        assert_eq!(h.max().unwrap().as_millis(), 250);
        assert!(h.percentile(0.0).unwrap().as_nanos() >= 3_000);
    }

    #[test]
    fn count_at_or_below_splits_goodput() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(SimDuration::from_millis(100));
        }
        for _ in 0..10 {
            h.record(SimDuration::from_millis(900));
        }
        let good = h.count_at_or_below(SimDuration::from_millis(400));
        assert_eq!(good, 90);
    }

    /// Regression: invalid `p` used to panic via `assert!`; NaN in particular
    /// fails `contains` and took the panic path. The contract is now `None`.
    #[test]
    fn percentile_rejects_invalid_p_without_panicking() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(5));
        assert_eq!(h.percentile(f64::NAN), None);
        assert_eq!(h.percentile(f64::INFINITY), None);
        assert_eq!(h.percentile(-0.5), None);
        assert_eq!(h.percentile(100.1), None);
    }

    /// Regression: the boundary percentiles must be the exact extremes, not
    /// bucket midpoints, and a single-sample histogram must return that
    /// sample for every valid `p`.
    #[test]
    fn percentile_boundaries_are_exact_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(3));
        h.record(SimDuration::from_millis(250));
        assert_eq!(h.percentile(0.0).unwrap().as_nanos(), 3_000);
        assert_eq!(h.percentile(100.0).unwrap().as_millis(), 250);

        let mut one = LatencyHistogram::new();
        one.record(SimDuration::from_millis(7));
        for p in [0.0, 50.0, 100.0] {
            let got = one.percentile(p).unwrap().as_millis() as f64;
            assert!((got - 7.0).abs() <= 1.0, "p{p}: got {got}");
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_millis(10));
        b.record(SimDuration::from_millis(20));
        b.record(SimDuration::from_millis(30));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max().unwrap().as_millis(), 30);
    }

    proptest! {
        /// Percentile error stays within the configured bucket resolution.
        #[test]
        fn prop_percentile_relative_error(
            mut xs in proptest::collection::vec(1_000u64..10_000_000_000, 10..400),
            p in 1.0f64..100.0,
        ) {
            let mut h = LatencyHistogram::new();
            for &x in &xs {
                h.record(SimDuration::from_nanos(x));
            }
            xs.sort_unstable();
            let rank = ((p / 100.0) * xs.len() as f64).ceil().max(1.0) as usize - 1;
            let exact = xs[rank] as f64;
            let got = h.percentile(p).unwrap().as_nanos() as f64;
            // 2% buckets + midpoint interpolation: allow 4% + tie slack.
            prop_assert!((got - exact).abs() / exact < 0.05,
                "p{}: got {} exact {}", p, got, exact);
        }

        /// Total counts are conserved and goodput ≤ total.
        #[test]
        fn prop_counts_conserved(xs in proptest::collection::vec(1u64..1_000_000, 0..200)) {
            let mut h = LatencyHistogram::new();
            for &x in &xs {
                h.record(SimDuration::from_nanos(x));
            }
            prop_assert_eq!(h.count(), xs.len() as u64);
            prop_assert!(h.count_at_or_below(SimDuration::from_millis(1)) <= h.count());
        }
    }
}
