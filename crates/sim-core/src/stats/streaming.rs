//! Welford's online mean/variance accumulator.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean / variance / extrema.
///
/// Uses Welford's algorithm so it can absorb millions of latency samples
/// without loss of precision and without storing them.
///
/// # Example
///
/// ```
/// use sim_core::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorbs one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN sample would silently poison every
    /// subsequent statistic).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of absorbed samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`), or 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`), or 0 with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest absorbed sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest absorbed sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_zeroish() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample() {
        let s: OnlineStats = [3.5].into_iter().collect();
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn nan_panics() {
        OnlineStats::new().push(f64::NAN);
    }

    proptest! {
        /// Streaming results match the two-pass textbook formulas.
        #[test]
        fn prop_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
            let s: OnlineStats = xs.iter().copied().collect();
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.population_variance() - var).abs() < 1e-4 * (1.0 + var));
        }

        /// Merging two accumulators equals accumulating the concatenation.
        #[test]
        fn prop_merge_equals_concat(
            xs in proptest::collection::vec(-1e3f64..1e3, 0..100),
            ys in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ) {
            let mut a: OnlineStats = xs.iter().copied().collect();
            let b: OnlineStats = ys.iter().copied().collect();
            a.merge(&b);
            let c: OnlineStats = xs.iter().chain(ys.iter()).copied().collect();
            prop_assert_eq!(a.count(), c.count());
            prop_assert!((a.mean() - c.mean()).abs() < 1e-8 * (1.0 + c.mean().abs()));
            prop_assert!((a.population_variance() - c.population_variance()).abs()
                < 1e-6 * (1.0 + c.population_variance()));
        }
    }
}
