//! The P² (Piecewise-Parabolic) streaming quantile estimator
//! (Jain & Chlamtac, CACM 1985).

use serde::{Deserialize, Serialize};

/// Streaming estimation of a single quantile in O(1) memory.
///
/// Where [`LatencyHistogram`](crate::stats::LatencyHistogram) answers any
/// percentile with bucketed memory, `P2Quantile` tracks *one* quantile with
/// five markers — the right tool for long-lived per-service monitors that
/// expose, say, a live p99 gauge. The estimator keeps five marker heights
/// and positions; on each observation the markers shift, and interior
/// markers are adjusted toward their ideal positions with a piecewise
/// parabolic (P²) interpolation.
///
/// # Example
///
/// ```
/// use sim_core::stats::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95);
/// for i in 1..=10_000 {
///     p95.observe(f64::from(i));
/// }
/// let est = p95.value().unwrap();
/// assert!((est - 9_500.0).abs() / 9_500.0 < 0.02, "{est}");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of min, q/2, q, (1+q)/2, max quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far (first five are buffered in `heights`).
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile out of range: {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations absorbed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Absorbs one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            }
            return;
        }
        self.count += 1;
        // Find the cell k containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }
        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                self.heights[i] = new_height;
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (h, p) = (&self.heights, &self.positions);
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, or `None` before any observation. With fewer
    /// than five observations, returns the exact sample quantile.
    pub fn value(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut xs = self.heights[..n].to_vec();
                xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
                Some(xs[rank - 1])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;
    use proptest::prelude::*;

    fn exact_quantile(xs: &mut [f64], q: f64) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
        xs[rank - 1]
    }

    #[test]
    fn empty_and_small_counts() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), None);
        p.observe(10.0);
        assert_eq!(p.value(), Some(10.0));
        p.observe(20.0);
        p.observe(0.0);
        // Exact median of {0, 10, 20} with ceil-rank convention: 10.
        assert_eq!(p.value(), Some(10.0));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn uniform_stream_converges() {
        let mut rng = SimRng::seed_from(1);
        for q in [0.5, 0.9, 0.99] {
            let mut est = P2Quantile::new(q);
            for _ in 0..100_000 {
                est.observe(rng.f64() * 1_000.0);
            }
            let got = est.value().unwrap();
            let want = q * 1_000.0;
            assert!(
                (got - want).abs() / want < 0.03,
                "q={q}: got {got}, want ~{want}"
            );
        }
    }

    #[test]
    fn heavy_tailed_stream() {
        // Exponential data: p99 = -ln(0.01) ≈ 4.605 × mean.
        let mut rng = SimRng::seed_from(2);
        let mut est = P2Quantile::new(0.99);
        for _ in 0..200_000 {
            let u: f64 = rng.f64();
            est.observe(-(1.0 - u).ln() * 100.0);
        }
        let got = est.value().unwrap();
        assert!((got - 460.5).abs() / 460.5 < 0.05, "p99 of exp(100): {got}");
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn invalid_quantile_panics() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn nan_panics() {
        P2Quantile::new(0.5).observe(f64::NAN);
    }

    proptest! {
        /// The estimate stays within the observed range and lands within a
        /// loose band of the exact quantile for moderate streams.
        #[test]
        fn prop_estimate_sane(
            mut xs in proptest::collection::vec(0.0f64..1e4, 50..2_000),
            q in 0.05f64..0.95,
        ) {
            let mut est = P2Quantile::new(q);
            for &x in &xs {
                est.observe(x);
            }
            let got = est.value().unwrap();
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(got >= lo && got <= hi, "estimate within range");
            let exact = exact_quantile(&mut xs, q);
            // P² is approximate: allow a generous band on small samples.
            let spread = (hi - lo).max(1.0);
            prop_assert!(
                (got - exact).abs() <= 0.25 * spread,
                "got {got}, exact {exact}, spread {spread}"
            );
        }
    }
}
