//! Time-bucketed series accumulation — the substrate of the 100 ms samplers.

use crate::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Aggregate of one time bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BucketStat {
    /// Number of samples that fell in the bucket.
    pub count: u64,
    /// Sum of the samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl BucketStat {
    /// Mean of the bucket's samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Accumulates `(time, value)` samples into fixed-width buckets.
///
/// The telemetry pipeline uses this for the paper's fine-grained metrics:
/// per-100 ms concurrency, throughput and goodput series (§3.2, "Metrics
/// Collection Phase"). Buckets are indexed from [`SimTime::ZERO`]; pushing a
/// sample allocates intervening empty buckets so the series stays dense and
/// alignment is exact.
///
/// # Example
///
/// ```
/// use sim_core::stats::BucketSeries;
/// use sim_core::{SimDuration, SimTime};
///
/// let mut s = BucketSeries::new(SimDuration::from_millis(100));
/// s.push(SimTime::from_millis(20), 1.0);
/// s.push(SimTime::from_millis(250), 5.0);
/// assert_eq!(s.len(), 3); // buckets [0,100), [100,200), [200,300)
/// assert_eq!(s.bucket(0).unwrap().count, 1);
/// assert_eq!(s.bucket(1).unwrap().count, 0);
/// assert_eq!(s.bucket(2).unwrap().mean(), 5.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketSeries {
    width: SimDuration,
    buckets: Vec<BucketStat>,
}

impl BucketSeries {
    /// Creates an empty series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "bucket width must be non-zero");
        BucketSeries {
            width,
            buckets: Vec::new(),
        }
    }

    /// The configured bucket width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Index of the bucket containing instant `t`.
    pub fn index_of(&self, t: SimTime) -> usize {
        (t.as_nanos() / self.width.as_nanos()) as usize
    }

    /// Start time of bucket `i`.
    pub fn start_of(&self, i: usize) -> SimTime {
        SimTime::from_nanos(i as u64 * self.width.as_nanos())
    }

    /// Absorbs a sample at instant `t`.
    pub fn push(&mut self, t: SimTime, value: f64) {
        let i = self.index_of(t);
        if i >= self.buckets.len() {
            self.buckets.resize(i + 1, BucketStat::default());
        }
        let b = &mut self.buckets[i];
        if b.count == 0 {
            b.min = value;
            b.max = value;
        } else {
            b.min = b.min.min(value);
            b.max = b.max.max(value);
        }
        b.count += 1;
        b.sum += value;
    }

    /// Increments the count of the bucket containing `t` without a value —
    /// for pure event counting (e.g. completions per bucket).
    pub fn tick(&mut self, t: SimTime) {
        self.push(t, 0.0);
    }

    /// The aggregate of bucket `i`, if allocated.
    pub fn bucket(&self, i: usize) -> Option<&BucketStat> {
        self.buckets.get(i)
    }

    /// Number of allocated buckets (dense from time zero).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no bucket has been allocated.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Iterates `(bucket_start, aggregate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &BucketStat)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| (self.start_of(i), b))
    }

    /// Restricts iteration to buckets fully inside `[from, to)`.
    pub fn iter_range(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = (SimTime, &BucketStat)> + '_ {
        self.iter()
            .filter(move |(t, _)| *t >= from && *t + self.width <= to)
    }

    /// Per-bucket counts converted to a rate (events per second).
    pub fn rates(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let secs = self.width.as_secs_f64();
        self.iter().map(move |(t, b)| (t, b.count as f64 / secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn samples_land_in_right_buckets() {
        let mut s = BucketSeries::new(SimDuration::from_millis(100));
        s.push(ms(0), 1.0);
        s.push(ms(99), 2.0);
        s.push(ms(100), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.bucket(0).unwrap().count, 2);
        assert_eq!(s.bucket(0).unwrap().sum, 3.0);
        assert_eq!(s.bucket(1).unwrap().mean(), 3.0);
    }

    #[test]
    fn gaps_are_dense_empty_buckets() {
        let mut s = BucketSeries::new(SimDuration::from_millis(10));
        s.push(ms(95), 1.0);
        assert_eq!(s.len(), 10);
        for i in 0..9 {
            assert_eq!(s.bucket(i).unwrap().count, 0);
        }
    }

    #[test]
    fn min_max_track_extremes() {
        let mut s = BucketSeries::new(SimDuration::from_millis(100));
        s.push(ms(5), 7.0);
        s.push(ms(6), -3.0);
        s.push(ms(7), 2.0);
        let b = s.bucket(0).unwrap();
        assert_eq!(b.min, -3.0);
        assert_eq!(b.max, 7.0);
    }

    #[test]
    fn rates_scale_by_width() {
        let mut s = BucketSeries::new(SimDuration::from_millis(100));
        for i in 0..5 {
            s.tick(ms(i * 10)); // all within the first bucket
        }
        let (_, r) = s.rates().next().unwrap();
        assert!((r - 50.0).abs() < 1e-9); // 5 events / 0.1 s
    }

    #[test]
    fn iter_range_excludes_partial_buckets() {
        let mut s = BucketSeries::new(SimDuration::from_millis(100));
        s.push(ms(50), 1.0);
        s.push(ms(150), 1.0);
        s.push(ms(250), 1.0);
        let inside: Vec<_> = s.iter_range(ms(100), ms(250)).collect();
        assert_eq!(inside.len(), 1);
        assert_eq!(inside[0].0, ms(100));
    }

    proptest! {
        /// Sum of bucket counts equals the number of pushes.
        #[test]
        fn prop_count_conservation(
            ts in proptest::collection::vec(0u64..10_000, 0..300)
        ) {
            let mut s = BucketSeries::new(SimDuration::from_millis(7));
            for &t in &ts {
                s.push(SimTime::from_millis(t), 1.0);
            }
            let total: u64 = s.iter().map(|(_, b)| b.count).sum();
            prop_assert_eq!(total, ts.len() as u64);
        }

        /// index_of and start_of are inverse on bucket boundaries.
        #[test]
        fn prop_index_roundtrip(i in 0usize..10_000, w in 1u64..1_000) {
            let s = BucketSeries::new(SimDuration::from_millis(w));
            let t = s.start_of(i);
            prop_assert_eq!(s.index_of(t), i);
        }
    }
}
