//! Streaming statistics used by the telemetry pipeline and the experiment
//! harness: online mean/variance, latency histograms with percentile
//! queries, Pearson correlation, forecast-error metrics and time-bucketed
//! series accumulation.

mod bucket_ring;
mod correlation;
mod error;
mod histogram;
mod quantile;
mod streaming;
mod timeseries;

pub use bucket_ring::BucketRing;
pub use correlation::pearson;
pub use error::{mae, mape, rmse};
pub use histogram::LatencyHistogram;
pub use quantile::P2Quantile;
pub use streaming::OnlineStats;
pub use timeseries::{BucketSeries, BucketStat};
