//! Pearson correlation, used by the critical-service localisation phase.

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` when the series are shorter than two points, have
/// different lengths, or either has zero variance (the coefficient is
/// undefined in those cases). This is the statistic Sora's critical-service
/// localisation computes between each microservice's processing time and
/// the end-to-end response time of the critical path (`PCC(PT_si, RT_CP)`,
/// §3.2 of the paper).
///
/// # Example
///
/// ```
/// use sim_core::stats::pearson;
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[10.0, 20.0, 30.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[30.0, 20.0, 10.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        // x alternates, y ramps: correlation is ~0 by symmetry.
        let x: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.05, "r = {r}");
    }

    proptest! {
        /// |r| ≤ 1 always, and r is symmetric in its arguments.
        #[test]
        fn prop_bounded_and_symmetric(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..200)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((-1.0..=1.0).contains(&r));
                let r2 = pearson(&y, &x).unwrap();
                prop_assert!((r - r2).abs() < 1e-12);
            }
        }

        /// Correlation is invariant under positive affine transforms.
        #[test]
        fn prop_affine_invariance(
            xs in proptest::collection::vec(-1e3f64..1e3, 3..50),
            a in 0.1f64..10.0,
            b in -100.0f64..100.0,
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
            let xs2: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            if let (Some(r1), Some(r2)) = (pearson(&xs, &ys), pearson(&xs2, &ys)) {
                prop_assert!((r1 - r2).abs() < 1e-6);
            }
        }
    }
}
