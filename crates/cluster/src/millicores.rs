//! CPU quantity in Kubernetes-style millicores.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A CPU quantity in millicores (1000 = one core), the unit Kubernetes uses
/// for CPU requests/limits.
///
/// # Example
///
/// ```
/// use cluster::Millicores;
/// let limit = Millicores::from_cores(4);
/// assert_eq!(limit.get(), 4000);
/// assert_eq!(limit.as_cores_f64(), 4.0);
/// assert_eq!(format!("{limit}"), "4000m");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Millicores(u32);

impl Millicores {
    /// Zero CPU.
    pub const ZERO: Millicores = Millicores(0);

    /// Constructs from raw millicores.
    pub const fn new(millicores: u32) -> Self {
        Millicores(millicores)
    }

    /// Constructs from whole cores.
    pub const fn from_cores(cores: u32) -> Self {
        Millicores(cores * 1000)
    }

    /// The raw millicore count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The quantity as fractional cores.
    pub fn as_cores_f64(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Whole cores this limit spans, rounded up (a 2500 m pod can have three
    /// runnable threads before oversubscription kicks in on the third's core).
    pub const fn ceil_cores(self) -> u32 {
        self.0.div_ceil(1000)
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Millicores) -> Millicores {
        Millicores(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: Millicores) -> Option<Millicores> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Millicores(v)),
            None => None,
        }
    }

    /// True when zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Millicores {
    type Output = Millicores;
    fn add(self, rhs: Millicores) -> Millicores {
        Millicores(self.0.checked_add(rhs.0).expect("millicore overflow"))
    }
}

impl AddAssign for Millicores {
    fn add_assign(&mut self, rhs: Millicores) {
        *self = *self + rhs;
    }
}

impl Sub for Millicores {
    type Output = Millicores;
    fn sub(self, rhs: Millicores) -> Millicores {
        Millicores(self.0.checked_sub(rhs.0).expect("millicore underflow"))
    }
}

impl SubAssign for Millicores {
    fn sub_assign(&mut self, rhs: Millicores) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Millicores {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}m", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Millicores::from_cores(2).get(), 2000);
        assert_eq!(Millicores::new(500).as_cores_f64(), 0.5);
        assert_eq!(Millicores::new(2500).ceil_cores(), 3);
        assert_eq!(Millicores::new(2000).ceil_cores(), 2);
        assert_eq!(Millicores::new(0).ceil_cores(), 0);
    }

    #[test]
    fn arithmetic() {
        let a = Millicores::new(1500);
        let b = Millicores::new(500);
        assert_eq!(a + b, Millicores::from_cores(2));
        assert_eq!(a - b, Millicores::new(1000));
        assert_eq!(b.saturating_sub(a), Millicores::ZERO);
        assert_eq!(a.checked_add(b), Some(Millicores::new(2000)));
        assert_eq!(Millicores::new(u32::MAX).checked_add(b), None);
    }

    #[test]
    #[should_panic(expected = "millicore underflow")]
    fn underflow_panics() {
        let _ = Millicores::new(1) - Millicores::new(2);
    }
}
