//! Nodes and pod placement with capacity accounting.

use crate::Millicores;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// One machine: a CPU capacity and its current allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    capacity: Millicores,
    allocated: Millicores,
}

impl Node {
    /// Creates an empty node.
    pub fn new(id: NodeId, capacity: Millicores) -> Self {
        Node {
            id,
            capacity,
            allocated: Millicores::ZERO,
        }
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total CPU capacity.
    pub fn capacity(&self) -> Millicores {
        self.capacity
    }

    /// CPU currently reserved by placed pods.
    pub fn allocated(&self) -> Millicores {
        self.allocated
    }

    /// CPU still available.
    pub fn free(&self) -> Millicores {
        self.capacity.saturating_sub(self.allocated)
    }
}

/// A pod's placement record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodPlacement {
    /// The hosting node.
    pub node: NodeId,
    /// The pod's current CPU limit (reserved on the node).
    pub limit: Millicores,
}

/// Why a placement or scaling request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// No node has enough free capacity for the requested limit.
    InsufficientCapacity {
        /// The CPU amount that could not be satisfied.
        requested: Millicores,
    },
    /// The pod key is not currently placed.
    UnknownPod,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::InsufficientCapacity { requested } => {
                write!(f, "no node can fit an additional {requested}")
            }
            PlacementError::UnknownPod => write!(f, "pod is not placed"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Cluster-wide placement state: nodes plus a pod→node map with capacity
/// accounting, so vertical scaling can fail when the hosting node is full —
/// the same constraint a real VPA hits.
///
/// Pods are identified by an opaque `u64` key chosen by the caller (the
/// microservice layer uses its replica ids).
///
/// # Example
///
/// ```
/// use cluster::{ClusterState, Millicores, NodeId};
///
/// let mut cs = ClusterState::new();
/// cs.add_node(Millicores::from_cores(4));
/// let placement = cs.place(7, Millicores::from_cores(2)).unwrap();
/// assert_eq!(placement.node, NodeId(0));
/// // Growing within capacity succeeds, beyond it fails.
/// assert!(cs.resize(7, Millicores::from_cores(4)).is_ok());
/// assert!(cs.resize(7, Millicores::from_cores(5)).is_err());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterState {
    nodes: Vec<Node>,
    pods: BTreeMap<u64, PodPlacement>,
}

impl ClusterState {
    /// An empty cluster.
    pub fn new() -> Self {
        ClusterState::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, capacity: Millicores) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, capacity));
        id
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The placement of pod `pod`, if placed.
    pub fn placement(&self, pod: u64) -> Option<PodPlacement> {
        self.pods.get(&pod).copied()
    }

    /// Number of placed pods.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// Places a pod with the given CPU limit using worst-fit (most free
    /// capacity first) to spread load, mirroring a spreading scheduler.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InsufficientCapacity`] when no node fits.
    ///
    /// # Panics
    ///
    /// Panics if `pod` is already placed.
    pub fn place(&mut self, pod: u64, limit: Millicores) -> Result<PodPlacement, PlacementError> {
        assert!(!self.pods.contains_key(&pod), "pod {pod} already placed");
        let node = self
            .nodes
            .iter()
            .filter(|n| n.free() >= limit)
            .max_by_key(|n| (n.free(), std::cmp::Reverse(n.id)))
            .map(Node::id)
            .ok_or(PlacementError::InsufficientCapacity { requested: limit })?;
        self.nodes[node.0 as usize].allocated += limit;
        let placement = PodPlacement { node, limit };
        self.pods.insert(pod, placement);
        Ok(placement)
    }

    /// Removes a pod, releasing its reservation.
    ///
    /// # Errors
    ///
    /// [`PlacementError::UnknownPod`] when the pod is not placed.
    pub fn remove(&mut self, pod: u64) -> Result<(), PlacementError> {
        let placement = self.pods.remove(&pod).ok_or(PlacementError::UnknownPod)?;
        self.nodes[placement.node.0 as usize].allocated -= placement.limit;
        Ok(())
    }

    /// Changes a pod's CPU limit in place (vertical scaling).
    ///
    /// # Errors
    ///
    /// [`PlacementError::UnknownPod`] when the pod is not placed;
    /// [`PlacementError::InsufficientCapacity`] when the hosting node cannot
    /// absorb the increase (the pod stays at its old limit).
    pub fn resize(&mut self, pod: u64, new_limit: Millicores) -> Result<(), PlacementError> {
        let placement = self.pods.get_mut(&pod).ok_or(PlacementError::UnknownPod)?;
        let node = &mut self.nodes[placement.node.0 as usize];
        if new_limit > placement.limit {
            let grow = new_limit - placement.limit;
            if node.free() < grow {
                return Err(PlacementError::InsufficientCapacity { requested: grow });
            }
            node.allocated += grow;
        } else {
            node.allocated -= placement.limit - new_limit;
        }
        placement.limit = new_limit;
        Ok(())
    }

    /// Total capacity across nodes.
    pub fn total_capacity(&self) -> Millicores {
        self.nodes
            .iter()
            .fold(Millicores::ZERO, |acc, n| acc + n.capacity())
    }

    /// Total allocation across nodes.
    pub fn total_allocated(&self) -> Millicores {
        self.nodes
            .iter()
            .fold(Millicores::ZERO, |acc, n| acc + n.allocated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cores(n: u32) -> Millicores {
        Millicores::from_cores(n)
    }

    #[test]
    fn worst_fit_spreads_pods() {
        let mut cs = ClusterState::new();
        cs.add_node(cores(4));
        cs.add_node(cores(4));
        let a = cs.place(1, cores(2)).unwrap();
        let b = cs.place(2, cores(2)).unwrap();
        assert_ne!(a.node, b.node, "two pods should land on different nodes");
    }

    #[test]
    fn placement_respects_capacity() {
        let mut cs = ClusterState::new();
        cs.add_node(cores(2));
        cs.place(1, cores(2)).unwrap();
        let err = cs.place(2, cores(1)).unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientCapacity { .. }));
    }

    #[test]
    fn remove_releases_capacity() {
        let mut cs = ClusterState::new();
        cs.add_node(cores(2));
        cs.place(1, cores(2)).unwrap();
        cs.remove(1).unwrap();
        assert!(cs.place(2, cores(2)).is_ok());
        assert_eq!(cs.remove(1), Err(PlacementError::UnknownPod));
    }

    #[test]
    fn resize_up_and_down() {
        let mut cs = ClusterState::new();
        cs.add_node(cores(4));
        cs.place(1, cores(1)).unwrap();
        cs.resize(1, cores(3)).unwrap();
        assert_eq!(cs.placement(1).unwrap().limit, cores(3));
        cs.resize(1, cores(2)).unwrap();
        assert_eq!(cs.total_allocated(), cores(2));
        assert!(cs.resize(1, cores(5)).is_err());
        // Failed resize must not change anything.
        assert_eq!(cs.placement(1).unwrap().limit, cores(2));
        assert_eq!(cs.total_allocated(), cores(2));
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_place_panics() {
        let mut cs = ClusterState::new();
        cs.add_node(cores(4));
        cs.place(1, cores(1)).unwrap();
        let _ = cs.place(1, cores(1));
    }

    proptest! {
        /// Allocation accounting: total allocated equals the sum of placed
        /// pod limits after any sequence of place/remove/resize.
        #[test]
        fn prop_allocation_consistent(ops in proptest::collection::vec(0u8..3, 1..60)) {
            let mut cs = ClusterState::new();
            cs.add_node(cores(8));
            cs.add_node(cores(8));
            let mut key = 0u64;
            let mut live: Vec<u64> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 => {
                        key += 1;
                        if cs.place(key, Millicores::new(500 + (i as u32 % 4) * 500)).is_ok() {
                            live.push(key);
                        } else {
                            // keep key monotone; placement failed, nothing live
                        }
                    }
                    1 => {
                        if let Some(k) = live.pop() {
                            cs.remove(k).unwrap();
                        }
                    }
                    _ => {
                        if let Some(&k) = live.first() {
                            let _ = cs.resize(k, Millicores::new(250 + (i as u32 % 8) * 250));
                        }
                    }
                }
                let sum = live.iter()
                    .filter_map(|&k| cs.placement(k))
                    .fold(Millicores::ZERO, |acc, p| acc + p.limit);
                prop_assert_eq!(cs.total_allocated(), sum);
                prop_assert!(cs.total_allocated() <= cs.total_capacity());
            }
        }
    }
}
