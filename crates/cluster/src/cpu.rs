//! A processor-sharing CPU with context-switch overhead.

use crate::Millicores;
use sim_core::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one job (a runnable compute burst) on a [`PsCpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuJobId(u64);

/// Work left of one job, in nanoseconds of single-core CPU demand.
#[derive(Debug, Clone, Copy)]
struct Job {
    remaining: f64,
}

/// A pod's CPU, modelled as egalitarian processor sharing over a
/// Kubernetes-style millicore limit, with a per-excess-thread
/// context-switch/cache penalty.
///
/// With `n` runnable jobs and a limit of `c` cores, each job progresses at
///
/// ```text
/// rate = min(1, c / n) / (1 + κ · √max(0, n − ⌈c⌉))
/// ```
///
/// cores of demand per unit wall time: a single thread can use at most one
/// core; once jobs outnumber cores every job pays a slowdown that grows
/// with the square root of the excess (context-switch cost per scheduling
/// quantum is roughly constant, while cache/TLB pollution grows slowly
/// with the working-set count — a sublinear aggregate matches the gentle
/// degradation the paper measures at 80–200 threads, Fig. 3). This is the
/// mechanism behind the paper's observation that over-allocated thread
/// pools hurt goodput (Fig. 3, Fig. 4).
///
/// *Busy* time (what a cAdvisor-style monitor reports, and what HPA/VPA/FIRM
/// scale on) is `min(n, c)` cores whenever jobs are present — an
/// oversubscribed pod looks 100 % busy even though useful work is lower.
///
/// The type is event-driver friendly: callers [`advance`](PsCpu::advance) it
/// to the current instant, then query [`next_completion`](PsCpu::next_completion)
/// and schedule an event. Any mutation bumps an [`epoch`](PsCpu::epoch) so a
/// stale completion event can be recognised and dropped.
///
/// # Example
///
/// ```
/// use cluster::{Millicores, PsCpu};
/// use sim_core::{SimDuration, SimTime};
///
/// let mut cpu = PsCpu::new(Millicores::from_cores(2), 0.0);
/// let t0 = SimTime::ZERO;
/// let a = cpu.add(t0, SimDuration::from_millis(10));
/// let _b = cpu.add(t0, SimDuration::from_millis(10));
/// // Two jobs on two cores: both run at full speed.
/// let (t, id) = cpu.next_completion().unwrap();
/// assert_eq!(t.as_millis(), 10);
/// assert_eq!(id, a); // deterministic tie-break: lowest id first
/// ```
pub struct PsCpu {
    limit: Millicores,
    csw_overhead: f64,
    /// Fraction of the limit actually deliverable (node CPU pressure from
    /// noisy neighbours or throttling); 1.0 when the node is healthy.
    pressure: f64,
    jobs: BTreeMap<CpuJobId, Job>,
    next_id: u64,
    last_update: SimTime,
    epoch: u64,
    busy_core_nanos: f64,
    useful_core_nanos: f64,
    /// Capacity integral ∫ effective_cores dt since construction — the hard
    /// ceiling busy time may never exceed. Audit-only state.
    #[cfg(feature = "audit")]
    cap_core_nanos: f64,
}

impl PsCpu {
    /// One nanosecond of work: jobs at or below this are considered finished.
    const FINISH_EPS: f64 = 1.0;

    /// Creates an idle CPU with the given limit and context-switch penalty
    /// κ (fractional slowdown per √(runnable jobs beyond the core count);
    /// 0.02–0.05 reproduces the paper's over-allocation degradation).
    ///
    /// # Panics
    ///
    /// Panics if `csw_overhead` is negative or not finite.
    pub fn new(limit: Millicores, csw_overhead: f64) -> Self {
        assert!(
            csw_overhead >= 0.0 && csw_overhead.is_finite(),
            "invalid overhead"
        );
        PsCpu {
            limit,
            csw_overhead,
            pressure: 1.0,
            jobs: BTreeMap::new(),
            next_id: 0,
            last_update: SimTime::ZERO,
            epoch: 0,
            busy_core_nanos: 0.0,
            useful_core_nanos: 0.0,
            #[cfg(feature = "audit")]
            cap_core_nanos: 0.0,
        }
    }

    /// The current CPU limit.
    pub fn limit(&self) -> Millicores {
        self.limit
    }

    /// The current pressure factor (fraction of the limit deliverable).
    pub fn pressure(&self) -> f64 {
        self.pressure
    }

    /// Cores actually deliverable right now: the limit scaled by pressure.
    fn effective_cores(&self) -> f64 {
        self.limit.as_cores_f64() * self.pressure
    }

    /// Number of runnable jobs.
    pub fn active(&self) -> usize {
        self.jobs.len()
    }

    /// Monotone counter bumped on every mutation; scheduled completion
    /// events that carry an older epoch are stale and must be ignored.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative *busy* core-nanoseconds (what a utilisation monitor sees).
    pub fn busy_core_nanos(&self) -> f64 {
        self.busy_core_nanos
    }

    /// Cumulative *useful* core-nanoseconds (busy minus overhead loss).
    pub fn useful_core_nanos(&self) -> f64 {
        self.useful_core_nanos
    }

    /// Per-job progress rate (cores of demand per wall nanosecond) with `n`
    /// runnable jobs under the current limit.
    fn rate(&self, n: usize) -> f64 {
        if n == 0 || self.limit.is_zero() {
            return 0.0;
        }
        let cores = self.effective_cores();
        let base = (cores / n as f64).min(1.0);
        let excess = n.saturating_sub(cores.ceil() as usize);
        base / (1.0 + self.csw_overhead * (excess as f64).sqrt())
    }

    /// Advances internal state to `now`, paying out progress to every job.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the last update.
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "PsCpu asked to move backwards in time"
        );
        let dt = (now - self.last_update).as_nanos() as f64;
        self.last_update = now;
        // Capacity accrues whether or not jobs are runnable, and every
        // mutation (set_limit/set_pressure) advances first, so each term of
        // the integral uses the cores/pressure in force over its interval.
        #[cfg(feature = "audit")]
        {
            self.cap_core_nanos += dt * self.effective_cores();
        }
        if dt == 0.0 || self.jobs.is_empty() {
            return;
        }
        let n = self.jobs.len();
        let rate = self.rate(n);
        let cores = self.effective_cores();
        self.busy_core_nanos += dt * (n as f64).min(cores);
        self.useful_core_nanos += dt * rate * n as f64;
        for job in self.jobs.values_mut() {
            job.remaining = (job.remaining - dt * rate).max(0.0);
        }
    }

    /// Adds a job with `demand` single-core CPU work, as of `now`.
    ///
    /// Implicitly advances to `now` and bumps the epoch.
    pub fn add(&mut self, now: SimTime, demand: SimDuration) -> CpuJobId {
        self.advance(now);
        let id = CpuJobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                remaining: demand.as_nanos() as f64,
            },
        );
        self.epoch += 1;
        id
    }

    /// Removes a job regardless of progress (e.g. request cancelled).
    /// Returns `true` when the job existed. Advances and bumps the epoch.
    pub fn cancel(&mut self, now: SimTime, id: CpuJobId) -> bool {
        self.advance(now);
        let existed = self.jobs.remove(&id).is_some();
        if existed {
            self.epoch += 1;
        }
        existed
    }

    /// Changes the CPU limit (vertical scaling), as of `now`.
    pub fn set_limit(&mut self, now: SimTime, limit: Millicores) {
        self.advance(now);
        if self.limit != limit {
            self.limit = limit;
            self.epoch += 1;
        }
    }

    /// Changes the context-switch penalty (for ablation experiments).
    ///
    /// # Panics
    ///
    /// Panics if `csw_overhead` is negative or not finite.
    pub fn set_csw_overhead(&mut self, now: SimTime, csw_overhead: f64) {
        assert!(
            csw_overhead >= 0.0 && csw_overhead.is_finite(),
            "invalid overhead"
        );
        self.advance(now);
        if (self.csw_overhead - csw_overhead).abs() > f64::EPSILON {
            self.csw_overhead = csw_overhead;
            self.epoch += 1;
        }
    }

    /// Changes the node-pressure factor (fraction of the limit actually
    /// deliverable), as of `now`. `1.0` restores full capacity.
    ///
    /// # Panics
    ///
    /// Panics if `pressure` is not in `(0, 1]`.
    pub fn set_pressure(&mut self, now: SimTime, pressure: f64) {
        assert!(
            pressure > 0.0 && pressure <= 1.0 && pressure.is_finite(),
            "pressure must be in (0, 1]"
        );
        self.advance(now);
        if (self.pressure - pressure).abs() > f64::EPSILON {
            self.pressure = pressure;
            self.epoch += 1;
        }
    }

    /// The instant and id of the next job to finish, given no further
    /// mutations. Must be called with state already advanced to "now".
    /// Ties break towards the lowest job id (deterministic).
    pub fn next_completion(&self) -> Option<(SimTime, CpuJobId)> {
        let rate = self.rate(self.jobs.len());
        if rate <= 0.0 {
            return None;
        }
        let (id, job) = self.jobs.iter().min_by(|a, b| {
            a.1.remaining
                .partial_cmp(&b.1.remaining)
                .expect("remaining work is never NaN")
                .then(a.0.cmp(b.0))
        })?;
        let dt_nanos = (job.remaining / rate).ceil().max(0.0) as u64;
        Some((self.last_update + SimDuration::from_nanos(dt_nanos), *id))
    }

    /// Removes and returns every finished job (remaining ≤ 1 ns of work).
    /// Must be called with state already advanced; bumps the epoch when any
    /// job is removed.
    pub fn take_finished(&mut self) -> Vec<CpuJobId> {
        let mut done = Vec::new();
        self.take_finished_into(&mut done);
        done
    }

    /// [`take_finished`](PsCpu::take_finished) into a caller-owned buffer
    /// (cleared first), so event loops can reuse one allocation across the
    /// hottest completion path. Ids are appended in ascending order.
    pub fn take_finished_into(&mut self, out: &mut Vec<CpuJobId>) {
        out.clear();
        out.extend(
            self.jobs
                .iter()
                .filter(|(_, j)| j.remaining <= Self::FINISH_EPS)
                .map(|(&id, _)| id),
        );
        for id in out.iter() {
            self.jobs.remove(id);
        }
        if !out.is_empty() {
            self.epoch += 1;
        }
    }

    /// Checks CPU-time conservation and reports violations into `sink`.
    ///
    /// Two laws must hold at every instant the CPU is advanced to:
    /// busy ≤ ∫ effective_cores dt (a monitor can never observe more busy
    /// time than the pressure-adjusted limit delivered), and
    /// useful ≤ busy (overhead only ever loses work). Both hold exactly
    /// term-by-term in `advance`, and f64 addition is monotone, so the
    /// tolerance only covers the final comparison, not accumulated drift.
    #[cfg(feature = "audit")]
    pub fn audit_into(&self, now: SimTime, sink: &mut dyn sim_core::audit::AuditSink) {
        use sim_core::audit::{Invariant, Violation};
        let eps = 1.0 + self.cap_core_nanos * 1e-9;
        if self.busy_core_nanos > self.cap_core_nanos + eps {
            sink.record(Violation {
                invariant: Invariant::CpuTimeConservation,
                at_nanos: now.as_nanos(),
                detail: format!(
                    "busy {} core-ns exceeds capacity integral {} core-ns",
                    self.busy_core_nanos, self.cap_core_nanos
                ),
            });
        }
        if self.useful_core_nanos > self.busy_core_nanos + eps {
            sink.record(Violation {
                invariant: Invariant::CpuTimeConservation,
                at_nanos: now.as_nanos(),
                detail: format!(
                    "useful {} core-ns exceeds busy {} core-ns",
                    self.useful_core_nanos, self.busy_core_nanos
                ),
            });
        }
    }
}

impl fmt::Debug for PsCpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PsCpu")
            .field("limit", &self.limit)
            .field("active", &self.jobs.len())
            .field("epoch", &self.epoch)
            .field("last_update", &self.last_update)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// Drives the CPU to completion of all jobs, returning (finish_time, id)
    /// pairs in completion order.
    fn drain(cpu: &mut PsCpu) -> Vec<(SimTime, CpuJobId)> {
        let mut out = Vec::new();
        while let Some((t, _)) = cpu.next_completion() {
            cpu.advance(t);
            for id in cpu.take_finished() {
                out.push((t, id));
            }
        }
        out
    }

    #[test]
    fn single_job_runs_at_one_core() {
        let mut cpu = PsCpu::new(Millicores::from_cores(4), 0.0);
        cpu.add(SimTime::ZERO, ms(8));
        let done = drain(&mut cpu);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0.as_millis(), 8); // cannot exceed 1 core
    }

    #[test]
    fn two_jobs_on_one_core_share_equally() {
        let mut cpu = PsCpu::new(Millicores::from_cores(1), 0.0);
        cpu.add(SimTime::ZERO, ms(5));
        cpu.add(SimTime::ZERO, ms(5));
        let done = drain(&mut cpu);
        // Each runs at 0.5 cores → both finish at 10 ms.
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0.as_millis(), 10);
        assert_eq!(done[1].0.as_millis(), 10);
    }

    #[test]
    fn fractional_limit_slows_job() {
        let mut cpu = PsCpu::new(Millicores::new(500), 0.0);
        cpu.add(SimTime::ZERO, ms(5));
        let done = drain(&mut cpu);
        assert_eq!(done[0].0.as_millis(), 10); // half a core → twice as long
    }

    #[test]
    fn oversubscription_pays_context_switch_penalty() {
        // 4 jobs on 2 cores with κ=0.1: excess = 2, slowdown 1 + 0.1·√2.
        let mut cpu = PsCpu::new(Millicores::from_cores(2), 0.1);
        for _ in 0..4 {
            cpu.add(SimTime::ZERO, ms(10));
        }
        let done = drain(&mut cpu);
        // base rate 0.5 → 20 ms × 1.1414 ≈ 22.8 ms.
        let got = done.last().unwrap().0.as_nanos() as f64 / 1e6;
        assert!((got - 22.83).abs() < 0.1, "makespan {got} ms");
    }

    #[test]
    fn undersubscription_has_no_penalty() {
        let mut cpu = PsCpu::new(Millicores::from_cores(4), 0.5);
        cpu.add(SimTime::ZERO, ms(10));
        cpu.add(SimTime::ZERO, ms(10));
        let done = drain(&mut cpu);
        assert_eq!(done.last().unwrap().0.as_millis(), 10);
    }

    #[test]
    fn late_arrival_shares_remaining_capacity() {
        let mut cpu = PsCpu::new(Millicores::from_cores(1), 0.0);
        cpu.add(SimTime::ZERO, ms(10));
        // After 5 ms, 5 ms of work remains; a second job arrives.
        cpu.add(SimTime::from_millis(5), ms(5));
        let done = drain(&mut cpu);
        // Both progress at 0.5 cores, finishing together at 5 + 10 = 15 ms.
        assert_eq!(done[0].0.as_millis(), 15);
        assert_eq!(done[1].0.as_millis(), 15);
    }

    #[test]
    fn vertical_scale_up_speeds_jobs() {
        let mut cpu = PsCpu::new(Millicores::from_cores(1), 0.0);
        cpu.add(SimTime::ZERO, ms(10));
        cpu.add(SimTime::ZERO, ms(10));
        // At 5 ms (7.5 ms work left each), scale 1→2 cores.
        cpu.set_limit(SimTime::from_millis(5), Millicores::from_cores(2));
        let done = drain(&mut cpu);
        // Full speed from then on: finish at 5 + 7.5 = 12.5 ms.
        assert_eq!(done[0].0.as_millis(), 12); // 12.5 truncated by as_millis
        assert!(done[0].0.as_nanos() - 12_500_000 < 10);
    }

    #[test]
    fn cancel_removes_job_and_bumps_epoch() {
        let mut cpu = PsCpu::new(Millicores::from_cores(1), 0.0);
        let a = cpu.add(SimTime::ZERO, ms(10));
        let e = cpu.epoch();
        assert!(cpu.cancel(SimTime::from_millis(1), a));
        assert!(cpu.epoch() > e);
        assert!(!cpu.cancel(SimTime::from_millis(1), a));
        assert_eq!(cpu.active(), 0);
        assert!(cpu.next_completion().is_none());
    }

    #[test]
    fn zero_limit_makes_no_progress() {
        let mut cpu = PsCpu::new(Millicores::ZERO, 0.0);
        cpu.add(SimTime::ZERO, ms(1));
        assert!(cpu.next_completion().is_none());
        cpu.advance(SimTime::from_secs(100));
        assert!(cpu.take_finished().is_empty());
    }

    #[test]
    fn pressure_halves_progress_and_restores() {
        let mut cpu = PsCpu::new(Millicores::from_cores(2), 0.0);
        cpu.add(SimTime::ZERO, ms(10));
        // Half the node's cycles are stolen: 1 effective core for 1 job.
        let e = cpu.epoch();
        cpu.set_pressure(SimTime::ZERO, 0.5);
        assert!(cpu.epoch() > e, "pressure change must bump the epoch");
        cpu.advance(SimTime::from_millis(5)); // 5 ms of work done at 1 core
        cpu.set_pressure(SimTime::from_millis(5), 1.0);
        let done = drain(&mut cpu);
        assert_eq!(done[0].0.as_millis(), 10); // 5 ms left at full speed
        assert!((cpu.pressure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pressure_shrinks_effective_cores_for_sharing_and_penalty() {
        // 2 jobs on 2 cores would run at full speed; at pressure 0.5 they
        // share 1 effective core (0.5 each) and pay the excess penalty.
        let mut cpu = PsCpu::new(Millicores::from_cores(2), 0.1);
        cpu.add(SimTime::ZERO, ms(10));
        cpu.add(SimTime::ZERO, ms(10));
        cpu.set_pressure(SimTime::ZERO, 0.5);
        let done = drain(&mut cpu);
        // base 0.5, excess 1 → slowdown 1.1 → 20 ms × 1.1 = 22 ms.
        let got = done.last().unwrap().0.as_nanos() as f64 / 1e6;
        assert!((got - 22.0).abs() < 0.1, "makespan {got} ms");
    }

    #[test]
    fn busy_accounting_caps_at_effective_cores() {
        let mut cpu = PsCpu::new(Millicores::from_cores(4), 0.0);
        for _ in 0..8 {
            cpu.add(SimTime::ZERO, ms(100));
        }
        cpu.set_pressure(SimTime::ZERO, 0.25); // 1 effective core
        cpu.advance(SimTime::from_millis(10));
        assert!((cpu.busy_core_nanos() - 1.0 * 10e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "pressure must be in (0, 1]")]
    fn zero_pressure_rejected() {
        let mut cpu = PsCpu::new(Millicores::from_cores(1), 0.0);
        cpu.set_pressure(SimTime::ZERO, 0.0);
    }

    #[test]
    fn busy_vs_useful_accounting() {
        // 4 jobs, 2 cores, κ=0.25 → slowdown 1 + 0.25·√2 ≈ 1.3536;
        // busy 2 cores, useful 2/1.3536.
        let mut cpu = PsCpu::new(Millicores::from_cores(2), 0.25);
        for _ in 0..4 {
            cpu.add(SimTime::ZERO, ms(100));
        }
        cpu.advance(SimTime::from_millis(30));
        let busy = cpu.busy_core_nanos();
        let useful = cpu.useful_core_nanos();
        let slowdown = 1.0 + 0.25 * 2.0f64.sqrt();
        assert!((busy - 2.0 * 30e6).abs() < 1.0);
        assert!((useful - 2.0 / slowdown * 30e6).abs() < 2.0);
    }

    /// Under `--features audit` the capacity integral tracks pressure
    /// windows: an oversubscribed CPU run through a pressure dip must still
    /// satisfy busy ≤ cap and useful ≤ busy.
    #[cfg(feature = "audit")]
    #[test]
    fn audit_is_clean_across_pressure_windows() {
        use sim_core::audit::CountingSink;
        let mut cpu = PsCpu::new(Millicores::from_cores(2), 0.1);
        for _ in 0..6 {
            cpu.add(SimTime::ZERO, ms(50));
        }
        cpu.set_pressure(SimTime::from_millis(10), 0.5);
        cpu.advance(SimTime::from_millis(30));
        cpu.set_pressure(SimTime::from_millis(30), 1.0);
        let done = drain(&mut cpu);
        assert_eq!(done.len(), 6);
        let end = done.last().unwrap().0;
        let mut sink = CountingSink::new();
        cpu.audit_into(end, &mut sink);
        assert_eq!(sink.total(), 0, "{}", sink.summary());
    }

    #[test]
    fn completion_order_is_deterministic_on_ties() {
        let mut cpu = PsCpu::new(Millicores::from_cores(2), 0.0);
        let a = cpu.add(SimTime::ZERO, ms(5));
        let b = cpu.add(SimTime::ZERO, ms(5));
        let (_, first) = cpu.next_completion().unwrap();
        assert_eq!(first, a);
        assert!(b > a);
    }

    proptest! {
        /// Work is conserved: total useful core-time equals total demand once
        /// everything completes, regardless of arrival pattern or limit.
        #[test]
        fn prop_work_conservation(
            demands in proptest::collection::vec(1u64..50, 1..20),
            arrivals in proptest::collection::vec(0u64..100, 1..20),
            cores in 1u32..8,
            kappa in 0.0f64..0.2,
        ) {
            let n = demands.len().min(arrivals.len());
            let mut pairs: Vec<(u64, u64)> =
                arrivals.iter().zip(&demands).take(n).map(|(&a, &d)| (a, d)).collect();
            pairs.sort_unstable();
            let mut cpu = PsCpu::new(Millicores::from_cores(cores), kappa);
            let mut pending = pairs.into_iter().peekable();
            let mut finished = 0usize;
            // Event loop: interleave arrivals and completions by time.
            while finished < n {
                let next_arrival = pending.peek().map(|&(a, _)| SimTime::from_millis(a));
                let next_done = cpu.next_completion().map(|(t, _)| t);
                match (next_arrival, next_done) {
                    (Some(a), Some(d)) if a <= d => {
                        let (_, demand) = pending.next().unwrap();
                        cpu.add(a, ms(demand));
                    }
                    (Some(a), None) => {
                        let (_, demand) = pending.next().unwrap();
                        cpu.add(a, ms(demand));
                    }
                    (_, Some(d)) => {
                        cpu.advance(d);
                        finished += cpu.take_finished().len();
                    }
                    (None, None) => break,
                }
            }
            prop_assert_eq!(finished, n);
            let total_demand: f64 =
                demands.iter().take(n).map(|&d| d as f64 * 1e6).sum();
            let useful = cpu.useful_core_nanos();
            // All work paid out (within per-job nanosecond epsilon).
            prop_assert!((useful - total_demand).abs() < n as f64 * 10.0,
                "useful {} vs demand {}", useful, total_demand);
        }

        /// The per-job rate never exceeds one core and never increases with
        /// more jobs.
        #[test]
        fn prop_rate_monotone(cores in 1u32..16, kappa in 0.0f64..0.5) {
            let cpu = PsCpu::new(Millicores::from_cores(cores), kappa);
            let mut last = f64::INFINITY;
            for n in 1..64 {
                let r = cpu.rate(n);
                prop_assert!(r <= 1.0 + 1e-12);
                prop_assert!(r <= last + 1e-12);
                last = r;
            }
        }
    }
}
