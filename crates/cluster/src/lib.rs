//! Simulated container-cluster hardware.
//!
//! This crate models the part of the paper's testbed that Kubernetes and the
//! hypervisor provided: **CPU-limited pods on capacity-limited nodes**.
//!
//! The centrepiece is [`PsCpu`], a processor-sharing CPU with a configurable
//! context-switch/cache penalty. It is what couples *soft* resources to
//! *hardware* resources: a pod's thread pool decides how many jobs run
//! concurrently on the pod's CPU, and
//!
//! * too few threads leave cores idle (under-utilisation → queueing upstream),
//! * too many threads oversubscribe the cores, and every job slows down a
//!   little extra per excess thread (the "non-trivial multithreading
//!   overhead" of §2.3 in the paper).
//!
//! Those two regimes are exactly what creates the goodput knee that the SCG
//! model detects.
//!
//! [`Node`]/[`ClusterState`] provide placement with capacity accounting so
//! vertical scaling can fail realistically when a node is full.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod millicores;
mod node;

pub use cpu::{CpuJobId, PsCpu};
pub use millicores::Millicores;
pub use node::{ClusterState, Node, NodeId, PlacementError, PodPlacement};
