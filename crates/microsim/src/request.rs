//! In-flight request state: the frame tree a request builds as it fans out.

use sim_core::SimTime;
use telemetry::{ChildCall, ReplicaId, RequestId, RequestTypeId, ServiceId, Span, SpanId, Trace};

/// Index of a frame within its request's frame arena.
pub(crate) type FrameIdx = usize;

/// One service invocation of a request: the mutable, under-construction
/// counterpart of a [`Span`].
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub service: ServiceId,
    pub replica: ReplicaId,
    pub span_id: SpanId,
    /// Parent frame plus the index of the parent's `ChildCall` this frame
    /// answers (to stamp the call's end time on return).
    pub parent: Option<(FrameIdx, usize)>,
    /// Next stage of the behaviour to execute.
    pub stage: usize,
    /// Outstanding parallel child calls.
    pub pending_children: usize,
    /// When the request arrived at the service (span start; includes any
    /// accept-queue wait).
    pub arrival: SimTime,
    /// When a thread was acquired (service start), if yet.
    pub started: Option<SimTime>,
    /// When the span completed, if yet.
    pub departure: Option<SimTime>,
    /// Downstream calls issued so far (`end == SimTime::MAX` means
    /// outstanding; a completed call can have `end == start` when network
    /// delay and compute are both zero).
    pub calls: Vec<ChildCall>,
}

impl Frame {
    pub fn new(
        service: ServiceId,
        replica: ReplicaId,
        span_id: SpanId,
        parent: Option<(FrameIdx, usize)>,
        arrival: SimTime,
    ) -> Self {
        Frame {
            service,
            replica,
            span_id,
            parent,
            stage: 0,
            pending_children: 0,
            arrival,
            started: None,
            departure: None,
            calls: Vec::new(),
        }
    }
}

/// Everything the world tracks about one in-flight request.
#[derive(Debug, Clone)]
pub(crate) struct RequestState {
    pub id: RequestId,
    pub rtype: RequestTypeId,
    /// When the user issued the request (before network delay).
    pub issued: SimTime,
    /// Frame arena; frame 0 is the root (entry-service) frame. Frames are
    /// never removed, so indices stay stable for event references.
    pub frames: Vec<Frame>,
}

impl RequestState {
    pub fn new(id: RequestId, rtype: RequestTypeId, issued: SimTime) -> Self {
        RequestState {
            id,
            rtype,
            issued,
            frames: Vec::new(),
        }
    }

    /// Assembles the finished trace. All frames must be departed.
    ///
    /// # Panics
    ///
    /// Panics if any frame is still open (indicates a lifecycle bug).
    pub fn into_trace(self) -> Trace {
        let request = self.id;
        let rtype = self.rtype;
        let frames = self.frames;
        // Map frame index → span id for parent linking.
        let span_ids: Vec<SpanId> = frames.iter().map(|f| f.span_id).collect();
        let spans: Vec<Span> = frames
            .into_iter()
            .map(|f| Span {
                id: f.span_id,
                request,
                service: f.service,
                replica: f.replica,
                parent: f.parent.map(|(p, _)| span_ids[p]),
                arrival: f.arrival,
                service_start: f.started.unwrap_or(f.arrival),
                departure: f
                    .departure
                    .unwrap_or_else(|| panic!("open frame in finished request {request}")),
                children: f.calls,
            })
            .collect();
        Trace {
            request,
            request_type: rtype,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn trace_assembly_links_parents() {
        let mut req = RequestState::new(RequestId(7), RequestTypeId(1), t(0));
        let mut root = Frame::new(ServiceId(0), ReplicaId(0), SpanId(100), None, t(1));
        root.departure = Some(t(50));
        root.calls.push(ChildCall {
            service: ServiceId(1),
            start: t(5),
            end: t(40),
        });
        req.frames.push(root);
        let mut child = Frame::new(ServiceId(1), ReplicaId(3), SpanId(101), Some((0, 0)), t(6));
        child.departure = Some(t(39));
        req.frames.push(child);

        let trace = req.into_trace();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].parent, Some(SpanId(100)));
        assert_eq!(trace.response_time(), SimDuration::from_millis(49));
    }

    #[test]
    #[should_panic(expected = "open frame")]
    fn open_frame_panics_on_assembly() {
        let mut req = RequestState::new(RequestId(1), RequestTypeId(0), t(0));
        req.frames.push(Frame::new(
            ServiceId(0),
            ReplicaId(0),
            SpanId(0),
            None,
            t(0),
        ));
        let _ = req.into_trace();
    }
}
