//! In-flight request state: the frame tree a request builds as it fans out.

use sim_core::SimTime;
use telemetry::{ChildCall, ReplicaId, RequestId, RequestTypeId, ServiceId, Span, SpanId, Trace};

/// Index of a frame within its request's frame arena.
pub(crate) type FrameIdx = usize;

/// One service invocation of a request: the mutable, under-construction
/// counterpart of a [`Span`].
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub service: ServiceId,
    pub replica: ReplicaId,
    pub span_id: SpanId,
    /// Parent frame plus the index of the parent's `ChildCall` this frame
    /// answers (to stamp the call's end time on return).
    pub parent: Option<(FrameIdx, usize)>,
    /// Next stage of the behaviour to execute.
    pub stage: usize,
    /// Outstanding parallel child calls.
    pub pending_children: usize,
    /// When the request arrived at the service (span start; includes any
    /// accept-queue wait).
    pub arrival: SimTime,
    /// When a thread was acquired (service start), if yet.
    pub started: Option<SimTime>,
    /// When the span completed, if yet.
    pub departure: Option<SimTime>,
    /// Downstream calls issued so far (`end == SimTime::MAX` means
    /// outstanding; a completed call can have `end == start` when network
    /// delay and compute are both zero).
    pub calls: Vec<ChildCall>,
    /// Resend generation per call, parallel to `calls` — populated only
    /// when a network is installed (function-edge worlds never allocate
    /// it). A `CallTimeout` event carries the generation it was armed
    /// with; a mismatch means a later resend superseded it.
    pub attempts: Vec<u32>,
}

impl Frame {
    pub fn new(
        service: ServiceId,
        replica: ReplicaId,
        span_id: SpanId,
        parent: Option<(FrameIdx, usize)>,
        arrival: SimTime,
    ) -> Self {
        Frame {
            service,
            replica,
            span_id,
            parent,
            stage: 0,
            pending_children: 0,
            arrival,
            started: None,
            departure: None,
            calls: Vec::new(),
            attempts: Vec::new(),
        }
    }
}

/// Everything the world tracks about one in-flight request.
#[derive(Debug, Clone)]
pub(crate) struct RequestState {
    pub id: RequestId,
    pub rtype: RequestTypeId,
    /// When the user issued the request (before network delay).
    pub issued: SimTime,
    /// Frame arena; frame 0 is the root (entry-service) frame. Frames are
    /// never removed, so indices stay stable for event references.
    pub frames: Vec<Frame>,
}

impl RequestState {
    pub fn new(id: RequestId, rtype: RequestTypeId, issued: SimTime) -> Self {
        RequestState {
            id,
            rtype,
            issued,
            frames: Vec::new(),
        }
    }

    /// Assembles the finished trace. All frames must be departed.
    ///
    /// # Panics
    ///
    /// Panics if any frame is still open (indicates a lifecycle bug).
    #[cfg(test)]
    pub fn into_trace(self) -> Trace {
        self.into_trace_with(Vec::new(), None)
    }

    /// Assembles the finished trace into `spans` (a recycled span vector
    /// from the warehouse's spare pool — cleared before use, so only its
    /// capacity is reused).
    ///
    /// `close_open_at`: with a network installed, a resend that raced its
    /// original can leave a duplicate child frame still executing when the
    /// root responds; passing `Some(now)` clamps such orphan frames (and
    /// their outstanding calls) to `now` instead of panicking. Function-edge
    /// worlds pass `None`, keeping the open-frame panic as a lifecycle
    /// assertion.
    ///
    /// # Panics
    ///
    /// Panics if a frame is still open and `close_open_at` is `None`.
    pub fn into_trace_with(
        mut self,
        mut spans: Vec<Span>,
        close_open_at: Option<SimTime>,
    ) -> Trace {
        let request = self.id;
        let rtype = self.rtype;
        spans.clear();
        spans.reserve(self.frames.len());
        // Index loop instead of a consuming map: parent span ids are read
        // straight out of the arena (frames only ever point backwards), so
        // no side table of span ids is allocated.
        for i in 0..self.frames.len() {
            let parent = self.frames[i].parent.map(|(p, _)| self.frames[p].span_id);
            let f = &mut self.frames[i];
            let mut children = std::mem::take(&mut f.calls);
            let departure = match (f.departure, close_open_at) {
                (Some(d), _) => d,
                (None, Some(t)) => {
                    for call in children.iter_mut() {
                        if call.end == SimTime::MAX {
                            call.end = t;
                        }
                    }
                    t
                }
                (None, None) => panic!("open frame in finished request {request}"),
            };
            spans.push(Span {
                id: f.span_id,
                request,
                service: f.service,
                replica: f.replica,
                parent,
                arrival: f.arrival,
                service_start: f.started.unwrap_or(f.arrival),
                departure,
                children,
            });
        }
        Trace {
            request,
            request_type: rtype,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn trace_assembly_links_parents() {
        let mut req = RequestState::new(RequestId(7), RequestTypeId(1), t(0));
        let mut root = Frame::new(ServiceId(0), ReplicaId(0), SpanId(100), None, t(1));
        root.departure = Some(t(50));
        root.calls.push(ChildCall {
            service: ServiceId(1),
            start: t(5),
            end: t(40),
        });
        req.frames.push(root);
        let mut child = Frame::new(ServiceId(1), ReplicaId(3), SpanId(101), Some((0, 0)), t(6));
        child.departure = Some(t(39));
        req.frames.push(child);

        let trace = req.into_trace();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].parent, Some(SpanId(100)));
        assert_eq!(trace.response_time(), SimDuration::from_millis(49));
    }

    #[test]
    fn recycled_span_vec_is_cleared_and_reused() {
        let mut req = RequestState::new(RequestId(2), RequestTypeId(0), t(0));
        let mut root = Frame::new(ServiceId(0), ReplicaId(0), SpanId(5), None, t(0));
        root.departure = Some(t(10));
        req.frames.push(root);
        // A dirty recycled vector: stale contents must not leak through.
        let mut pool: Vec<Span> = Vec::with_capacity(8);
        pool.push(Span {
            id: SpanId(999),
            request: RequestId(9),
            service: ServiceId(9),
            replica: ReplicaId(9),
            parent: None,
            arrival: t(0),
            service_start: t(0),
            departure: t(1),
            children: Vec::new(),
        });
        let trace = req.into_trace_with(pool, None);
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].id, SpanId(5));
    }

    #[test]
    fn close_open_at_clamps_orphan_frames_and_calls() {
        let mut req = RequestState::new(RequestId(3), RequestTypeId(0), t(0));
        let mut root = Frame::new(ServiceId(0), ReplicaId(0), SpanId(1), None, t(0));
        root.departure = Some(t(50));
        req.frames.push(root);
        // Orphaned duplicate child: still open, with an outstanding call.
        let mut orphan = Frame::new(ServiceId(1), ReplicaId(2), SpanId(2), Some((0, 0)), t(5));
        orphan.started = Some(t(6));
        orphan.calls.push(ChildCall {
            service: ServiceId(2),
            start: t(7),
            end: SimTime::MAX,
        });
        req.frames.push(orphan);
        let trace = req.into_trace_with(Vec::new(), Some(t(50)));
        assert_eq!(trace.spans[1].departure, t(50));
        assert_eq!(trace.spans[1].children[0].end, t(50));
    }

    #[test]
    #[should_panic(expected = "open frame")]
    fn open_frame_panics_on_assembly() {
        let mut req = RequestState::new(RequestId(1), RequestTypeId(0), t(0));
        req.frames.push(Frame::new(
            ServiceId(0),
            ReplicaId(0),
            SpanId(0),
            None,
            t(0),
        ));
        let _ = req.into_trace();
    }
}
