//! Static configuration: service specs, request behaviours, world options.

use cluster::Millicores;
use serde::{Deserialize, Serialize};
use sim_core::{Dist, SimDuration};
use std::collections::BTreeMap;
use telemetry::{RequestTypeId, ServiceId};

/// One step of a service's execution profile for a request type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stage {
    /// Burn CPU: the demand (single-core CPU time) is drawn from `demand`.
    Compute {
        /// The CPU-demand distribution.
        demand: Dist,
    },
    /// Call downstream services in parallel and wait for all responses.
    /// The calling thread is held (synchronous RPC), and each call consumes
    /// one connection from this service's pool toward the target.
    Call {
        /// Services invoked concurrently by this stage.
        targets: Vec<ServiceId>,
    },
}

impl Stage {
    /// A compute stage with constant demand in milliseconds.
    pub fn compute_ms(ms: u64) -> Stage {
        Stage::Compute {
            demand: Dist::constant_ms(ms),
        }
    }

    /// A compute stage with the given demand distribution.
    pub fn compute(demand: Dist) -> Stage {
        Stage::Compute { demand }
    }

    /// A sequential call to one downstream service.
    pub fn call(target: ServiceId) -> Stage {
        Stage::Call {
            targets: vec![target],
        }
    }

    /// A parallel fan-out call.
    pub fn fanout(targets: Vec<ServiceId>) -> Stage {
        Stage::Call { targets }
    }
}

/// A service's execution profile for one request type: an ordered list of
/// stages. Compute before a `Call` is the paper's request-side processing
/// (`PT_req`), compute after it is response-side processing (`PT_res`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Behavior {
    /// The stages, executed in order.
    pub stages: Vec<Stage>,
}

impl Behavior {
    /// A behaviour from stages.
    pub fn new(stages: Vec<Stage>) -> Self {
        Behavior { stages }
    }

    /// A leaf behaviour: a single compute stage.
    pub fn leaf(demand: Dist) -> Self {
        Behavior {
            stages: vec![Stage::Compute { demand }],
        }
    }

    /// `compute(req) → call(target) → compute(res)`, the classic middle-tier
    /// shape.
    pub fn tier(req: Dist, target: ServiceId, res: Dist) -> Self {
        Behavior {
            stages: vec![
                Stage::Compute { demand: req },
                Stage::call(target),
                Stage::Compute { demand: res },
            ],
        }
    }
}

/// Load-balancing policy used to pick a replica for an incoming call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LbPolicy {
    /// Cycle through ready replicas (kube-proxy-ish default).
    #[default]
    RoundRobin,
    /// Uniformly random ready replica.
    Random,
    /// Power-of-two-choices: sample two ready replicas and pick the one
    /// with fewer requests in service + queued (the classic load-aware
    /// policy; plain least-of-all degenerates to a deterministic favourite
    /// under light load).
    LeastOutstanding,
}

/// Static definition of one microservice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Human-readable name (e.g. `"cart"`).
    pub name: String,
    /// Per-replica CPU limit at creation.
    pub cpu_limit: Millicores,
    /// Per-replica thread-pool size: max requests concurrently in service.
    pub thread_limit: usize,
    /// Context-switch penalty κ for this service's pods.
    pub csw_overhead: f64,
    /// Per-replica connection-pool limits toward downstream services.
    /// Calls to a service absent from this map are unlimited (modelling
    /// services that open ad-hoc connections).
    pub conn_limits: BTreeMap<ServiceId, usize>,
    /// Execution profile per request type. A request type arriving at a
    /// service with no behaviour entry is a configuration bug (panics at
    /// runtime with a clear message).
    pub behaviors: BTreeMap<RequestTypeId, Behavior>,
    /// Load-balancing policy for calls *to* this service.
    pub lb: LbPolicy,
}

impl ServiceSpec {
    /// A spec with the given name and sensible defaults: 1-core limit,
    /// 16 threads, κ = 0.03, no connection limits.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceSpec {
            name: name.into(),
            cpu_limit: Millicores::from_cores(1),
            thread_limit: 16,
            csw_overhead: 0.03,
            conn_limits: BTreeMap::new(),
            behaviors: BTreeMap::new(),
            lb: LbPolicy::default(),
        }
    }

    /// Sets the CPU limit.
    pub fn cpu(mut self, limit: Millicores) -> Self {
        self.cpu_limit = limit;
        self
    }

    /// Sets the thread-pool size.
    pub fn threads(mut self, n: usize) -> Self {
        self.thread_limit = n;
        self
    }

    /// Sets the context-switch penalty.
    pub fn csw(mut self, kappa: f64) -> Self {
        self.csw_overhead = kappa;
        self
    }

    /// Sets a connection-pool limit toward `target`.
    pub fn conns(mut self, target: ServiceId, limit: usize) -> Self {
        self.conn_limits.insert(target, limit);
        self
    }

    /// Registers the behaviour for a request type.
    pub fn on(mut self, rtype: RequestTypeId, behavior: Behavior) -> Self {
        self.behaviors.insert(rtype, behavior);
        self
    }

    /// Sets the load-balancing policy.
    pub fn lb(mut self, policy: LbPolicy) -> Self {
        self.lb = policy;
        self
    }
}

/// A request type: a named workload-mix entry with an entry-point service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestTypeSpec {
    /// Human-readable name (e.g. `"GET /catalogue"`).
    pub name: String,
    /// The service where requests of this type arrive.
    pub entry: ServiceId,
    /// Client-side timeout: a request still in flight this long after being
    /// issued is abandoned (every resource it holds is reclaimed and the
    /// client sees an error). `None` waits forever.
    pub timeout: Option<SimDuration>,
}

/// World-level options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Network latency added to every inter-service message (call and
    /// response) and to external arrivals reaching the entry service.
    pub net_delay: Dist,
    /// How long new replicas take from creation to readiness (container
    /// start-up).
    pub replica_startup: Dist,
    /// Trace-warehouse retention horizon.
    pub trace_horizon: SimDuration,
    /// Warehouse ingest sampling: keep one in `trace_sample_every` traces.
    pub trace_sample_every: u64,
    /// Retention horizon of the per-replica concurrency/completion samplers.
    pub metrics_horizon: SimDuration,
    /// Bucket width of the end-to-end client log timeline.
    pub client_bucket: SimDuration,
    /// Connection-level retry budget: how many times an inter-service call
    /// finding no ready replica is re-attempted (every 10 ms, as a client
    /// library would) before the whole request is dropped with
    /// [`DropReason::RetriesExhausted`](crate::DropReason::RetriesExhausted).
    pub max_connect_retries: u32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            net_delay: Dist::constant_us(200),
            replica_startup: Dist::constant_ms(2_000),
            trace_horizon: SimDuration::from_secs(180),
            trace_sample_every: 1,
            metrics_horizon: SimDuration::from_secs(180),
            client_bucket: SimDuration::from_secs(1),
            max_connect_retries: 50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let spec = ServiceSpec::new("cart")
            .cpu(Millicores::from_cores(4))
            .threads(30)
            .csw(0.05)
            .conns(ServiceId(2), 10)
            .on(RequestTypeId(0), Behavior::leaf(Dist::constant_ms(4)))
            .lb(LbPolicy::Random);
        assert_eq!(spec.name, "cart");
        assert_eq!(spec.cpu_limit, Millicores::from_cores(4));
        assert_eq!(spec.thread_limit, 30);
        assert_eq!(spec.conn_limits[&ServiceId(2)], 10);
        assert_eq!(spec.behaviors.len(), 1);
        assert_eq!(spec.lb, LbPolicy::Random);
    }

    #[test]
    fn tier_behavior_shape() {
        let b = Behavior::tier(Dist::constant_ms(1), ServiceId(5), Dist::constant_ms(2));
        assert_eq!(b.stages.len(), 3);
        assert!(matches!(b.stages[1], Stage::Call { ref targets } if targets == &[ServiceId(5)]));
    }

    #[test]
    fn default_config_is_sane() {
        let c = WorldConfig::default();
        assert!(c.trace_sample_every >= 1);
        assert!(!c.metrics_horizon.is_zero());
    }
}
