//! The simulation world: services, replicas, requests and the event loop.

use crate::config::{LbPolicy, RequestTypeSpec, ServiceSpec, Stage, WorldConfig};
use crate::faults::{BlackoutMode, FaultKind, FaultSchedule, FaultScheduleError};
use crate::replica::{ConnWaiter, Replica, ReplicaState};
use crate::request::{Frame, FrameIdx, RequestState};
use crate::shard::{ShardEngine, ShardError};
use cluster::{ClusterState, CpuJobId, Millicores, NodeId, PlacementError};
use net::{Endpoint, Network, NetworkConfig, SendOutcome};
use serde::{Deserialize, Serialize};
use sim_core::{EventQueue, QueueBackend, SimDuration, SimRng, SimTime, Slab, SlabKey};
use std::collections::BTreeMap;
use std::ops::Range;
use telemetry::{
    ClientLog, CompletionLog, ConcurrencyTracker, ReplicaId, RequestId, RequestTypeId, ServiceId,
    SpanId, Trace, TraceWarehouse,
};

/// A finished end-to-end request, as reported to the workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's identity.
    pub request: RequestId,
    /// Its request type.
    pub rtype: RequestTypeId,
    /// When the user issued it.
    pub issued: SimTime,
    /// When the response reached the user.
    pub completed: SimTime,
    /// End-to-end response time (`completed − issued`).
    pub response_time: SimDuration,
}

/// Why a request was dropped (refused or aborted without a response).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DropReason {
    /// Refused at the edge: no ready replica of the entry service.
    Refused,
    /// A replica holding one of the request's open frames failed.
    ReplicaFailed,
    /// The client-side timeout fired while the request was in flight.
    ClientTimeout,
    /// An inter-service call exhausted its connection-level retry budget
    /// without finding a ready replica.
    RetriesExhausted,
    /// The ingress message was lost by the network (random loss or a
    /// partition window on the client edge) before reaching the entry
    /// service. Only produced with a network installed.
    NetLost,
    /// An inter-service call exhausted its per-call timeout resend budget
    /// (the response — or every resend — was lost, partitioned away, or
    /// too slow). Only produced with a network installed.
    NetTimedOut,
}

/// Cumulative drop counts broken down by [`DropReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropBreakdown {
    /// Requests refused at the edge.
    pub refused: u64,
    /// Requests aborted by a replica failure.
    pub replica_failed: u64,
    /// Requests abandoned by the client-side timeout.
    pub client_timeout: u64,
    /// Requests dropped after exhausting connection retries.
    pub retries_exhausted: u64,
    /// Requests whose ingress message the network lost.
    pub net_lost: u64,
    /// Requests dropped after a call exhausted its network-timeout resends.
    pub net_timed_out: u64,
}

impl DropBreakdown {
    pub(crate) fn count(&mut self, reason: DropReason) {
        match reason {
            DropReason::Refused => self.refused += 1,
            DropReason::ReplicaFailed => self.replica_failed += 1,
            DropReason::ClientTimeout => self.client_timeout += 1,
            DropReason::RetriesExhausted => self.retries_exhausted += 1,
            DropReason::NetLost => self.net_lost += 1,
            DropReason::NetTimedOut => self.net_timed_out += 1,
        }
    }

    /// Total drops across all reasons.
    pub fn total(&self) -> u64 {
        self.refused
            + self.replica_failed
            + self.client_timeout
            + self.retries_exhausted
            + self.net_lost
            + self.net_timed_out
    }
}

/// A point-in-time telemetry snapshot, surfaced between simulation steps by
/// the service plane (`sora-server`) so remote observers can watch a live
/// run. Windowed counts cover `[window_from, now)` against the caller's
/// goodput threshold; cumulative counts cover the whole run so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Simulation clock at snapshot time, in nanoseconds.
    pub now_nanos: u64,
    /// End-to-end completions so far (whole run).
    pub completed: u64,
    /// Dropped requests so far (whole run).
    pub dropped: u64,
    /// Requests currently in flight inside the cluster.
    pub in_flight: u64,
    /// Events dispatched by the engine so far.
    pub events_dispatched: u64,
    /// Completions inside the snapshot window.
    pub window_completed: u64,
    /// Completions inside the snapshot window within the goodput threshold.
    pub window_good: u64,
    /// Cumulative drop counts broken down by reason.
    pub drop_breakdown: DropBreakdown,
}

#[derive(Debug, Clone)]
enum Event {
    /// A user request reaches its entry service. Requests are referenced
    /// by generational slab key: a stale key (request already finished or
    /// aborted) simply fails its lookup, which is exactly the "late event"
    /// semantics the handlers want.
    ExternalArrival { request: SlabKey },
    /// An inter-service call reaches the target service. `attempt` counts
    /// connection-level retries taken because no replica was ready.
    ChildArrival {
        request: SlabKey,
        parent: FrameIdx,
        call_idx: usize,
        target: ServiceId,
        attempt: u32,
    },
    /// A child's response reaches the calling frame.
    ChildReturn {
        request: SlabKey,
        parent: FrameIdx,
        call_idx: usize,
    },
    /// A CPU on `replica` may have finished a job (valid only at `epoch`).
    CpuDone { replica: ReplicaId, epoch: u64 },
    /// A starting replica becomes ready.
    ReplicaReady { replica: ReplicaId },
    /// A request's client-side timeout fires (no-op if already finished).
    Timeout { request: SlabKey },
    /// An installed fault fires (see [`FaultSchedule`]).
    Fault { kind: FaultKind },
    /// A node's CPU-pressure window ends.
    PressureEnd { node: NodeId },
    /// A telemetry-blackout window ends.
    BlackoutEnd,
    /// A crashed replica's scheduled replacement is created.
    ReplicaRestart { service: ServiceId },
    /// A caller-side per-call network timeout fires. Inert if the request
    /// is gone, the call was answered, or a resend already bumped the
    /// call past `generation`.
    CallTimeout {
        request: SlabKey,
        parent: FrameIdx,
        call_idx: usize,
        target: ServiceId,
        generation: u32,
    },
    /// A completion sample reaches the monitoring plane over the network
    /// (possibly late and out of order relative to other replica samples).
    TelemetrySample {
        replica: ReplicaId,
        completed: SimTime,
        response_time: SimDuration,
    },
    /// A trace report reaches the warehouse over the network (possibly
    /// late, and possibly a retransmit duplicate).
    TelemetryTrace { trace: Box<Trace> },
    /// A partition window between two services heals.
    PartitionEnd { a: ServiceId, b: ServiceId },
    /// A slow-link window between two services ends.
    LinkSlowEnd {
        a: ServiceId,
        b: ServiceId,
        factor: f64,
    },
}

pub(crate) struct ServiceRuntime {
    pub(crate) spec: ServiceSpec,
    /// All replica ids ever assigned to this service that still exist.
    /// With the sharded engine enabled this list is owned by the shard
    /// cores instead and stays empty here.
    pub(crate) replicas: Vec<ReplicaId>,
    /// Round-robin cursor.
    pub(crate) rr: usize,
    /// Current (mutable) settings; new replicas inherit these.
    pub(crate) cpu_limit: Millicores,
    pub(crate) thread_limit: usize,
    pub(crate) conn_limits: BTreeMap<ServiceId, usize>,
    /// Busy core-nanoseconds carried over from removed replicas, so the
    /// service-level counter stays monotone across scale-downs.
    pub(crate) retired_busy_nanos: f64,
}

/// The discrete-event microservice cluster simulator.
///
/// Construction order: add services ([`World::add_service`]), request types
/// ([`World::add_request_type`]), replicas ([`World::add_replica`]); then
/// alternate [`World::inject_at`] (workload) and [`World::run_until`]
/// (simulation), adjusting soft/hardware resources from a controller in
/// between. Everything is deterministic given the seed.
///
/// # Example
///
/// ```
/// use microsim::{Behavior, ServiceSpec, World, WorldConfig};
/// use sim_core::{Dist, SimRng, SimTime, SimDuration};
/// use telemetry::RequestTypeId;
///
/// let mut w = World::new(WorldConfig::default(), SimRng::seed_from(1));
/// let rt = RequestTypeId(0);
/// let svc = w.add_service(
///     ServiceSpec::new("api").on(rt, Behavior::leaf(Dist::constant_ms(5))),
/// );
/// w.add_request_type("GET /", svc);
/// let pod = w.add_replica(svc).unwrap();
/// w.make_ready(pod); // skip container start-up in examples/tests
/// w.inject_at(SimTime::from_millis(1), rt);
/// let done = w.run_until(SimTime::from_secs(1));
/// assert_eq!(done.len(), 1);
/// assert!(done[0].response_time.as_millis() >= 5);
/// ```
pub struct World {
    config: WorldConfig,
    queue: EventQueue<Event>,
    rng: SimRng,
    /// Dedicated stream for load-balancer draws, so the choice of LB policy
    /// cannot perturb service-demand sampling (keeps A/B comparisons of
    /// policies unconfounded).
    lb_rng: SimRng,
    clock: SimTime,
    services: Vec<ServiceRuntime>,
    request_types: Vec<RequestTypeSpec>,
    /// Replica storage: a dense generational slab instead of a pointer-
    /// chasing map, plus two parallel arrays (struct-of-arrays layout) so
    /// the hot load-balancer scans touch only flat memory.
    replicas: Slab<Replica>,
    /// `ReplicaId` → slab key of the live replica (`None` once removed).
    /// Dense because replica ids are issued sequentially.
    replica_lookup: Vec<Option<SlabKey>>,
    /// Lifecycle state per replica *slot*, parallel to `replicas`: the
    /// readiness scan in `pick_replica` walks this array and never touches
    /// the replica structs themselves.
    replica_states: Vec<ReplicaState>,
    cluster: ClusterState,
    /// The message-passing transport, when installed. `None` keeps the
    /// original function-edge engine (constant `net_delay`, no loss) —
    /// retained verbatim as the byte-identity oracle for transparent
    /// network configs.
    network: Option<Network>,
    /// In-flight requests, slab-allocated: steady-state churn reuses slots
    /// instead of hitting the allocator, and events hold generational keys
    /// so late events cannot alias a recycled slot.
    requests: Slab<RequestState>,
    warehouse: TraceWarehouse,
    client: ClientLog,
    /// Per-request-type client logs, indexed by `RequestTypeId`.
    client_by_type: Vec<ClientLog>,
    completed: Vec<Completion>,
    dropped_log: Vec<(RequestId, DropReason)>,
    drop_breakdown: DropBreakdown,
    /// Active node-pressure factors, keyed by node id, so replicas placed
    /// onto a pressured node mid-window inherit the pressure.
    node_pressure: BTreeMap<u32, f64>,
    /// Active telemetry blackout, if any.
    blackout: Option<BlackoutMode>,
    /// Per-replica completion samples withheld during a `Lag` blackout,
    /// in completion order.
    lag_completions: Vec<(ReplicaId, SimTime, SimDuration)>,
    /// Warehouse traces withheld during a `Lag` blackout.
    lag_traces: Vec<Trace>,
    /// Human-readable record of every fault applied, for reports.
    fault_log: Vec<(SimTime, String)>,
    /// Scratch buffers reused across [`World::on_cpu_done`] invocations —
    /// the hottest event handler, fired once per compute stage — so the
    /// completion batch never re-allocates in steady state.
    cpu_jobs_scratch: Vec<CpuJobId>,
    cpu_work_scratch: Vec<(SlabKey, FrameIdx)>,
    /// Reusable snapshot of a service's replica list for the soft-resource
    /// actuation loops (drains may mutate the list mid-walk).
    actuation_scratch: Vec<ReplicaId>,
    next_request: u64,
    next_replica: u64,
    next_span: u64,
    dropped: u64,
    /// Total events dispatched (the `scale` bench's events/sec numerator).
    events_dispatched: u64,
    /// The conservative-parallel sharded engine, when enabled via
    /// [`World::enable_sharding`]. Once set, the classic event loop above
    /// is dormant and every public method delegates here.
    engine: Option<Box<ShardEngine>>,
    /// Whether a fault schedule was installed (sharding must be enabled
    /// before faults so the schedule lands in the barrier queue).
    faults_installed: bool,
    /// Conservation-law violations observed during dispatch. Audit-only
    /// state: never serialized, never read by simulation logic.
    #[cfg(feature = "audit")]
    audit_sink: sim_core::audit::CountingSink,
    /// Timestamp of the most recently dispatched event, for the
    /// event-monotonicity check.
    #[cfg(feature = "audit")]
    audit_last_event: SimTime,
    /// Next sim-time at which the per-replica boundary sweep runs.
    #[cfg(feature = "audit")]
    audit_next_boundary: SimTime,
}

impl World {
    /// Creates an empty world with one effectively-unbounded node (capacity
    /// checks can be made meaningful with [`World::add_node`]).
    pub fn new(config: WorldConfig, rng: SimRng) -> Self {
        let warehouse = TraceWarehouse::new(config.trace_horizon, config.trace_sample_every);
        let client = ClientLog::new(config.client_bucket);
        let lb_rng = rng.split("load-balancer");
        World {
            config,
            queue: EventQueue::new(),
            rng,
            lb_rng,
            clock: SimTime::ZERO,
            services: Vec::new(),
            request_types: Vec::new(),
            replicas: Slab::new(),
            replica_lookup: Vec::new(),
            replica_states: Vec::new(),
            cluster: ClusterState::new(),
            network: None,
            requests: Slab::new(),
            warehouse,
            client,
            client_by_type: Vec::new(),
            completed: Vec::new(),
            dropped_log: Vec::new(),
            drop_breakdown: DropBreakdown::default(),
            node_pressure: BTreeMap::new(),
            blackout: None,
            lag_completions: Vec::new(),
            lag_traces: Vec::new(),
            fault_log: Vec::new(),
            cpu_jobs_scratch: Vec::new(),
            cpu_work_scratch: Vec::new(),
            actuation_scratch: Vec::new(),
            next_request: 0,
            next_replica: 0,
            next_span: 0,
            dropped: 0,
            events_dispatched: 0,
            engine: None,
            faults_installed: false,
            #[cfg(feature = "audit")]
            audit_sink: sim_core::audit::CountingSink::new(),
            #[cfg(feature = "audit")]
            audit_last_event: SimTime::ZERO,
            #[cfg(feature = "audit")]
            audit_next_boundary: SimTime::ZERO,
        }
    }

    /// Adds a node with the given CPU capacity. If no node is ever added, a
    /// first placement lazily creates a huge default node.
    pub fn add_node(&mut self, capacity: Millicores) {
        match self.engine.as_mut() {
            Some(e) => e.add_node(capacity),
            None => {
                self.cluster.add_node(capacity);
            }
        }
    }

    /// Registers a service, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if sharding is already enabled (the shard plan is fixed over
    /// the service set).
    pub fn add_service(&mut self, spec: ServiceSpec) -> ServiceId {
        assert!(
            self.engine.is_none(),
            "add_service: topology is frozen once sharding is enabled"
        );
        let id = ServiceId(self.services.len() as u32);
        self.services.push(ServiceRuntime {
            cpu_limit: spec.cpu_limit,
            thread_limit: spec.thread_limit,
            conn_limits: spec.conn_limits.clone(),
            spec,
            replicas: Vec::new(),
            rr: 0,
            retired_busy_nanos: 0.0,
        });
        id
    }

    /// Registers a request type entering at `entry`, returning its id.
    pub fn add_request_type(&mut self, name: impl Into<String>, entry: ServiceId) -> RequestTypeId {
        self.add_request_type_with_timeout(name, entry, None)
    }

    /// Registers a request type with a client-side timeout: requests still
    /// in flight `timeout` after being issued are abandoned (dropped) and
    /// every resource they hold is reclaimed.
    pub fn add_request_type_with_timeout(
        &mut self,
        name: impl Into<String>,
        entry: ServiceId,
        timeout: Option<SimDuration>,
    ) -> RequestTypeId {
        assert!(
            self.engine.is_none(),
            "add_request_type: topology is frozen once sharding is enabled"
        );
        let id = RequestTypeId(self.request_types.len() as u32);
        self.request_types.push(RequestTypeSpec {
            name: name.into(),
            entry,
            timeout,
        });
        self.client_by_type
            .push(ClientLog::new(self.config.client_bucket));
        id
    }

    /// The current simulated instant (the `run_until` high-water mark).
    pub fn now(&self) -> SimTime {
        match &self.engine {
            Some(e) => e.now(),
            None => self.clock.max(self.queue.now()),
        }
    }

    // ------------------------------------------------------------------
    // Conservative-parallel sharding
    // ------------------------------------------------------------------

    /// Enables the conservative-parallel sharded engine with `shards`
    /// contiguous, evenly sized service partitions. See
    /// [`World::enable_sharding_with_plan`] for semantics and errors.
    pub fn enable_sharding(&mut self, shards: usize) -> Result<(), ShardError> {
        let n = self.services.len();
        let plan: Vec<Range<usize>> = (0..shards)
            .map(|k| (k * n / shards)..((k + 1) * n / shards))
            .collect();
        self.enable_sharding_with_plan(&plan)
    }

    /// Enables the conservative-parallel sharded engine with an explicit
    /// partition plan (contiguous, non-empty service ranges covering every
    /// service). Must be called on a pristine world: topology built (all
    /// services, request types and replicas added), but before any
    /// injection, simulation, network installation or fault installation.
    ///
    /// The sharded engine is a distinct, self-consistent engine family:
    /// runs are byte-identical across shard counts (`shards = 1` is the
    /// family's sequential oracle), but not to the classic engine. Classic
    /// replica start-up events queued before the switch are discarded and
    /// redrawn from per-service streams. See `DESIGN.md` §14.
    ///
    /// # Errors
    ///
    /// [`ShardError`] when the world already has an engine, a network, a
    /// fault schedule or simulated history; when the plan is not a
    /// contiguous cover; or when `net_delay` has a zero lower bound (no
    /// lookahead to parallelise under).
    pub fn enable_sharding_with_plan(&mut self, plan: &[Range<usize>]) -> Result<(), ShardError> {
        if self.engine.is_some() {
            return Err(ShardError::AlreadySharded);
        }
        if self.network.is_some() {
            return Err(ShardError::NetworkInstalled);
        }
        if self.faults_installed {
            return Err(ShardError::FaultsInstalled);
        }
        if self.clock != SimTime::ZERO || self.next_request != 0 || !self.requests.is_empty() {
            return Err(ShardError::AlreadyStarted);
        }
        // Validate before moving observability state into the engine.
        ShardEngine::validate(&self.config, plan, self.services.len())?;
        let mut engine = ShardEngine::new(
            self.config.clone(),
            plan,
            self.services.len(),
            &self.rng,
            std::mem::replace(&mut self.cluster, ClusterState::new()),
            std::mem::replace(
                &mut self.warehouse,
                TraceWarehouse::new(self.config.trace_horizon, self.config.trace_sample_every),
            ),
            std::mem::replace(&mut self.client, ClientLog::new(self.config.client_bucket)),
            std::mem::take(&mut self.client_by_type),
        )
        .expect("validated above");
        engine.set_next_replica(self.next_replica);
        // Adopt live replicas in service order, then creation order. The
        // classic queue's pending ReplicaReady events are discarded; the
        // engine redraws start-up delays from per-service streams.
        for sid in 0..self.services.len() {
            let service = ServiceId(sid as u32);
            let ids = self.services[sid].replicas.clone();
            for id in ids {
                let state = self.state_of(id).expect("live replica");
                engine.adopt_replica(&self.services, service, id, state);
            }
        }
        self.queue = EventQueue::new();
        self.replicas = Slab::new();
        self.replica_lookup.clear();
        self.replica_states.clear();
        for svc in &mut self.services {
            svc.replicas.clear();
            svc.rr = 0;
        }
        self.engine = Some(engine);
        Ok(())
    }

    /// Number of shards the engine runs with (1 for the classic engine).
    pub fn shard_count(&self) -> usize {
        self.engine.as_ref().map_or(1, |e| e.shard_count())
    }

    /// The cross-shard lookahead in nanoseconds (`None` for the classic
    /// engine): the minimum network delay, which bounds how far shards may
    /// run ahead of each other.
    pub fn shard_lookahead_nanos(&self) -> Option<u64> {
        self.engine.as_ref().map(|e| e.lookahead_nanos())
    }

    /// Switches the future-event-list engine, carrying pending events
    /// over in canonical pop order (so FIFO tie-breaking — and with it
    /// every downstream byte — is preserved). The `scale` bench uses this
    /// to measure the `BinaryHeap` baseline against identical topologies;
    /// both engines produce byte-identical simulations.
    pub fn set_queue_backend(&mut self, backend: QueueBackend) {
        if self.engine.is_some() {
            return; // sharded engine owns its per-shard timer wheels
        }
        if self.queue.backend() == backend {
            return;
        }
        let mut fresh = EventQueue::with_backend(backend);
        while let Some((t, ev)) = self.queue.pop() {
            fresh.schedule(t, ev);
        }
        self.queue = fresh;
    }

    /// The engine behind the future event list.
    pub fn queue_backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    // ------------------------------------------------------------------
    // Dense replica storage (struct-of-arrays hot state)
    // ------------------------------------------------------------------

    /// The slab key of a live replica, or `None` once it is removed.
    fn rep_key(&self, id: ReplicaId) -> Option<SlabKey> {
        self.replica_lookup
            .get(id.get() as usize)
            .copied()
            .flatten()
    }

    fn rep(&self, id: ReplicaId) -> Option<&Replica> {
        match &self.engine {
            Some(e) => e.rep(id),
            None => self.rep_key(id).and_then(|k| self.replicas.get(k)),
        }
    }

    fn rep_mut(&mut self, id: ReplicaId) -> Option<&mut Replica> {
        let k = self.rep_key(id)?;
        self.replicas.get_mut(k)
    }

    /// The lifecycle state of a replica, read from the dense state array.
    fn state_of(&self, id: ReplicaId) -> Option<ReplicaState> {
        match &self.engine {
            Some(e) => e.state_of(id),
            None => self
                .rep_key(id)
                .map(|k| self.replica_states[k.index() as usize]),
        }
    }

    fn set_state(&mut self, id: ReplicaId, state: ReplicaState) {
        if let Some(k) = self.rep_key(id) {
            self.replica_states[k.index() as usize] = state;
        }
    }

    // ------------------------------------------------------------------
    // Scaling & soft-resource actuation
    // ------------------------------------------------------------------

    /// Starts a new replica of `service`. The replica consumes node capacity
    /// immediately but serves traffic only after container start-up
    /// (see [`WorldConfig::replica_startup`]).
    ///
    /// # Errors
    ///
    /// Propagates [`PlacementError`] when no node can host the pod.
    pub fn add_replica(&mut self, service: ServiceId) -> Result<ReplicaId, PlacementError> {
        if let Some(engine) = self.engine.as_mut() {
            return engine.add_replica(&self.services, service);
        }
        if self.cluster.nodes().is_empty() {
            // Lazy default: effectively unbounded machine.
            self.cluster.add_node(Millicores::from_cores(1_000_000));
        }
        let id = ReplicaId(self.next_replica);
        let rt = &self.services[service.get() as usize];
        self.cluster.place(id.get(), rt.cpu_limit)?;
        self.next_replica += 1;
        let mut replica = Replica::new(
            id,
            service,
            rt.cpu_limit,
            rt.spec.csw_overhead,
            rt.thread_limit,
            &rt.conn_limits,
            self.config.metrics_horizon,
        );
        // A pod scheduled onto a node inside an active CPU-pressure window
        // inherits the pressure for the rest of the window.
        if let Some(placement) = self.cluster.placement(id.get()) {
            if let Some(&factor) = self.node_pressure.get(&placement.node.0) {
                replica.cpu.set_pressure(self.now(), factor);
            }
        }
        let key = self.replicas.insert(replica);
        let slot = key.index() as usize;
        if slot >= self.replica_states.len() {
            self.replica_states.resize(slot + 1, ReplicaState::Starting);
        }
        self.replica_states[slot] = ReplicaState::Starting;
        let idx = id.get() as usize;
        if idx >= self.replica_lookup.len() {
            self.replica_lookup.resize(idx + 1, None);
        }
        self.replica_lookup[idx] = Some(key);
        self.services[service.get() as usize].replicas.push(id);
        let delay = self.config.replica_startup.sample(&mut self.rng);
        self.queue.schedule(
            self.now().max(self.queue.now()) + delay,
            Event::ReplicaReady { replica: id },
        );
        Ok(id)
    }

    /// Marks a starting replica ready immediately (used by tests and by
    /// initial topology construction, where pods pre-exist the run).
    pub fn make_ready(&mut self, replica: ReplicaId) {
        if let Some(engine) = self.engine.as_mut() {
            engine.make_ready(replica);
            return;
        }
        if self.state_of(replica) == Some(ReplicaState::Starting) {
            self.set_state(replica, ReplicaState::Ready);
        }
    }

    /// Gracefully removes one replica of `service` (the most recently
    /// added), draining in-flight work first. Returns the drained replica's
    /// id, or `None` if the service has at most `min_keep` replicas.
    pub fn drain_replica(&mut self, service: ServiceId, min_keep: usize) -> Option<ReplicaId> {
        if let Some(engine) = self.engine.as_mut() {
            let victim = engine.drain_replica(service, min_keep);
            engine.settle_retired(&mut self.services);
            return victim;
        }
        let now = self.now();
        let rt = &self.services[service.get() as usize];
        let live: Vec<ReplicaId> = rt
            .replicas
            .iter()
            .copied()
            .filter(|&id| {
                self.state_of(id)
                    .is_some_and(|s| s != ReplicaState::Draining)
            })
            .collect();
        if live.len() <= min_keep {
            return None;
        }
        let victim = *live.last()?;
        self.set_state(victim, ReplicaState::Draining);
        if self.rep(victim)?.is_idle() {
            self.remove_replica_final(now, victim);
        }
        Some(victim)
    }

    /// Abruptly kills a replica: every request with an open frame on it is
    /// aborted (the user never gets a response; held threads, connections
    /// and CPU jobs elsewhere are reclaimed). Used for failure-injection
    /// tests.
    pub fn fail_replica(&mut self, replica: ReplicaId) {
        if let Some(engine) = self.engine.as_mut() {
            let now = engine.now();
            engine.kill_replica(now, replica, &mut self.services);
            return;
        }
        let now = self.now();
        // Canonical abort order — by request id, not storage order — so the
        // resulting event sequence is identical across runs and processes.
        let mut touching: Vec<(RequestId, SlabKey)> = self
            .requests
            .iter()
            .filter(|(_, rs)| {
                rs.frames
                    .iter()
                    .any(|f| f.replica == replica && f.departure.is_none())
            })
            .map(|(key, rs)| (rs.id, key))
            .collect();
        touching.sort_unstable();
        for (_, key) in touching {
            self.abort_request(now, key, DropReason::ReplicaFailed);
        }
        self.set_state(replica, ReplicaState::Draining);
        self.remove_replica_final(now, replica);
    }

    /// Restarts a crashed replica of `service`: a replacement pod is placed
    /// and goes through normal container start-up before taking traffic.
    /// The counterpart of [`World::fail_replica`] — crash/recover pairs
    /// model the paper's unasked question of what the control loop does
    /// while capacity flaps.
    ///
    /// # Errors
    ///
    /// Propagates [`PlacementError`] when no node can host the pod.
    pub fn recover_replica(&mut self, service: ServiceId) -> Result<ReplicaId, PlacementError> {
        self.add_replica(service)
    }

    fn remove_replica_final(&mut self, now: SimTime, replica: ReplicaId) {
        let Some(key) = self.rep_key(replica) else {
            return;
        };
        self.replica_lookup[replica.get() as usize] = None;
        if let Some(mut r) = self.replicas.remove(key) {
            debug_assert!(r.is_idle(), "removing a busy replica");
            r.cpu.advance(now);
            let _ = self.cluster.remove(replica.get());
            let svc = &mut self.services[r.service.get() as usize];
            svc.replicas.retain(|&id| id != replica);
            svc.retired_busy_nanos += r.cpu.busy_core_nanos();
        }
    }

    /// Sets the CPU limit of every replica of `service` (vertical scaling).
    ///
    /// # Errors
    ///
    /// Fails with [`PlacementError::InsufficientCapacity`] if any hosting
    /// node cannot absorb the increase; replicas resized before the failure
    /// keep the new limit (mirroring partial VPA roll-outs).
    pub fn set_cpu_limit(
        &mut self,
        service: ServiceId,
        limit: Millicores,
    ) -> Result<(), PlacementError> {
        if let Some(engine) = self.engine.as_mut() {
            return engine.set_cpu_limit(&mut self.services, service, limit);
        }
        let now = self.now();
        self.services[service.get() as usize].cpu_limit = limit;
        let mut ids = std::mem::take(&mut self.actuation_scratch);
        ids.clear();
        ids.extend_from_slice(&self.services[service.get() as usize].replicas);
        let mut result = Ok(());
        for &id in &ids {
            if let Err(e) = self.cluster.resize(id.get(), limit) {
                result = Err(e);
                break;
            }
            if let Some(r) = self.rep_mut(id) {
                r.cpu.set_limit(now, limit);
            }
            self.schedule_cpu(now, id);
        }
        self.actuation_scratch = ids;
        result
    }

    /// Sets the per-replica thread-pool size of `service`, admitting queued
    /// requests immediately if the limit grew.
    pub fn set_thread_limit(&mut self, service: ServiceId, limit: usize) {
        if let Some(engine) = self.engine.as_mut() {
            engine.set_thread_limit(&mut self.services, service, limit);
            return;
        }
        let now = self.now();
        self.services[service.get() as usize].thread_limit = limit;
        let mut ids = std::mem::take(&mut self.actuation_scratch);
        ids.clear();
        ids.extend_from_slice(&self.services[service.get() as usize].replicas);
        for &id in &ids {
            if let Some(r) = self.rep_mut(id) {
                r.threads.limit = limit;
            }
            self.drain_thread_queue(now, id);
        }
        self.actuation_scratch = ids;
    }

    /// Sets the per-replica connection-pool size from `service` toward
    /// `target`, granting queued calls immediately if the limit grew.
    pub fn set_conn_limit(&mut self, service: ServiceId, target: ServiceId, limit: usize) {
        if let Some(engine) = self.engine.as_mut() {
            engine.set_conn_limit(&mut self.services, service, target, limit);
            return;
        }
        let now = self.now();
        self.services[service.get() as usize]
            .conn_limits
            .insert(target, limit);
        let mut ids = std::mem::take(&mut self.actuation_scratch);
        ids.clear();
        ids.extend_from_slice(&self.services[service.get() as usize].replicas);
        for &id in &ids {
            if let Some(r) = self.rep_mut(id) {
                let pool = r
                    .conns
                    .entry(target)
                    .or_insert_with(|| crate::replica::ConnPool {
                        limit,
                        in_use: 0,
                        waiters: Default::default(),
                    });
                pool.limit = limit;
            }
            self.drain_conn_waiters(now, id, target);
        }
        self.actuation_scratch = ids;
    }

    // ------------------------------------------------------------------
    // Network substrate
    // ------------------------------------------------------------------

    /// Installs the message-passing network: from now on client ingress,
    /// inter-service calls and responses, and (unless the telemetry edge
    /// is transparent) telemetry reports ride the event queue as messages
    /// with per-edge latency, loss, queueing, partitions and timeouts.
    ///
    /// The network draws from its own `"network"` split of the world seed,
    /// so installing one cannot perturb service-demand or load-balancer
    /// sampling. A transparent config ([`net::NetworkConfig::transparent`],
    /// or constant latency matching [`WorldConfig::net_delay`] via
    /// [`net::NetworkConfig::constant_latency`]) reproduces the
    /// function-edge engine byte for byte.
    pub fn install_network(&mut self, config: NetworkConfig) {
        assert!(
            self.engine.is_none(),
            "install_network: the message-passing network is incompatible with the sharded engine"
        );
        self.network = Some(Network::new(config, self.rng.split("network")));
    }

    /// The installed network, if any.
    pub fn network(&self) -> Option<&Network> {
        self.network.as_ref()
    }

    /// Transport counters of the installed network, if any.
    pub fn network_stats(&self) -> Option<net::NetStats> {
        self.network.as_ref().map(|n| *n.stats())
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Installs a [`FaultSchedule`]: each fault is queued as an ordinary
    /// simulation event at its instant, so faults interleave with the rest
    /// of the run deterministically.
    ///
    /// # Errors
    ///
    /// Rejects structurally invalid schedules (inverted windows,
    /// overlapping crash windows on one service) without queueing anything
    /// — see [`FaultSchedule::validate`].
    pub fn install_faults(&mut self, schedule: FaultSchedule) -> Result<(), FaultScheduleError> {
        schedule.validate()?;
        self.faults_installed = true;
        match self.engine.as_mut() {
            Some(engine) => {
                // Sharded engine: faults become coordinator barriers,
                // applied between lookahead windows in schedule order.
                for event in schedule.events() {
                    engine.push_fault(event.at, event.kind.clone());
                }
            }
            None => {
                for event in schedule.events() {
                    self.queue.schedule(
                        event.at,
                        Event::Fault {
                            kind: event.kind.clone(),
                        },
                    );
                }
            }
        }
        Ok(())
    }

    /// The sim-clock-stamped record of every fault applied so far.
    pub fn fault_log(&self) -> &[(SimTime, String)] {
        match &self.engine {
            Some(e) => e.fault_log(),
            None => &self.fault_log,
        }
    }

    fn on_fault(&mut self, now: SimTime, kind: FaultKind) {
        match kind {
            FaultKind::ReplicaCrash {
                service,
                restart_after,
            } => {
                // Deterministic victim: the longest-lived ready replica.
                let Some(victim) = self.ready_replicas_iter(service).next() else {
                    let name = self.service_name(service).to_string();
                    self.fault_log
                        .push((now, format!("crash {name}: no ready replica")));
                    return;
                };
                let name = self.service_name(service).to_string();
                self.fault_log
                    .push((now, format!("crash {name} replica {victim}")));
                self.fail_replica(victim);
                if let Some(delay) = restart_after {
                    self.queue
                        .schedule(now + delay, Event::ReplicaRestart { service });
                }
            }
            FaultKind::CpuPressure {
                node,
                factor,
                duration,
            } => {
                self.fault_log.push((
                    now,
                    format!(
                        "cpu pressure node {} factor {factor} for {}s",
                        node.0,
                        duration.as_secs_f64()
                    ),
                ));
                self.node_pressure.insert(node.0, factor);
                self.apply_node_pressure(now, node, factor);
                self.queue
                    .schedule(now + duration, Event::PressureEnd { node });
            }
            FaultKind::TelemetryBlackout { mode, duration } => {
                self.fault_log.push((
                    now,
                    format!(
                        "telemetry blackout ({mode:?}) for {}s",
                        duration.as_secs_f64()
                    ),
                ));
                self.blackout = Some(mode);
                self.queue.schedule(now + duration, Event::BlackoutEnd);
            }
            FaultKind::Partition { a, b, duration } => {
                let (an, bn) = (
                    self.service_name(a).to_string(),
                    self.service_name(b).to_string(),
                );
                match self.network.as_mut() {
                    Some(network) => {
                        network.partition(a, b);
                        self.fault_log.push((
                            now,
                            format!("partition {an} <-> {bn} for {}s", duration.as_secs_f64()),
                        ));
                        self.queue
                            .schedule(now + duration, Event::PartitionEnd { a, b });
                    }
                    None => self.fault_log.push((
                        now,
                        format!("partition {an} <-> {bn} ignored (no network installed)"),
                    )),
                }
            }
            FaultKind::LinkSlow {
                a,
                b,
                factor,
                duration,
            } => {
                let (an, bn) = (
                    self.service_name(a).to_string(),
                    self.service_name(b).to_string(),
                );
                match self.network.as_mut() {
                    Some(network) => {
                        network.slow_link(a, b, factor);
                        self.fault_log.push((
                            now,
                            format!(
                                "slow link {an} <-> {bn} x{factor} for {}s",
                                duration.as_secs_f64()
                            ),
                        ));
                        self.queue
                            .schedule(now + duration, Event::LinkSlowEnd { a, b, factor });
                    }
                    None => self.fault_log.push((
                        now,
                        format!("slow link {an} <-> {bn} ignored (no network installed)"),
                    )),
                }
            }
        }
    }

    fn on_partition_end(&mut self, now: SimTime, a: ServiceId, b: ServiceId) {
        if let Some(network) = self.network.as_mut() {
            network.heal(a, b);
        }
        let (an, bn) = (
            self.service_name(a).to_string(),
            self.service_name(b).to_string(),
        );
        self.fault_log
            .push((now, format!("partition {an} <-> {bn} heals")));
    }

    fn on_link_slow_end(&mut self, now: SimTime, a: ServiceId, b: ServiceId, factor: f64) {
        if let Some(network) = self.network.as_mut() {
            network.heal_slow_link(a, b, factor);
        }
        let (an, bn) = (
            self.service_name(a).to_string(),
            self.service_name(b).to_string(),
        );
        self.fault_log
            .push((now, format!("slow link {an} <-> {bn} recovers")));
    }

    /// Sets the pressure factor of every replica currently placed on `node`.
    fn apply_node_pressure(&mut self, now: SimTime, node: NodeId, factor: f64) {
        // Sorted to match the former BTreeMap iteration order, so the event
        // sequence (and with it every downstream byte) is unchanged.
        let mut ids: Vec<ReplicaId> = self.replicas.iter().map(|(_, r)| r.id).collect();
        ids.sort_unstable();
        for id in ids {
            let on_node = self
                .cluster
                .placement(id.get())
                .is_some_and(|p| p.node == node);
            if on_node {
                if let Some(r) = self.rep_mut(id) {
                    r.cpu.set_pressure(now, factor);
                }
                self.schedule_cpu(now, id);
            }
        }
    }

    fn on_pressure_end(&mut self, now: SimTime, node: NodeId) {
        self.fault_log
            .push((now, format!("cpu pressure node {} lifted", node.0)));
        self.node_pressure.remove(&node.0);
        self.apply_node_pressure(now, node, 1.0);
    }

    fn on_blackout_end(&mut self, now: SimTime) {
        let lagged = matches!(self.blackout, Some(BlackoutMode::Lag));
        self.blackout = None;
        self.fault_log.push((
            now,
            format!(
                "telemetry blackout ends ({} lagged samples delivered)",
                if lagged {
                    self.lag_completions.len()
                } else {
                    0
                }
            ),
        ));
        let completions = std::mem::take(&mut self.lag_completions);
        let traces = std::mem::take(&mut self.lag_traces);
        if lagged {
            // Buffered in completion order, so per-replica time order holds.
            for (replica, t, rt) in completions {
                if let Some(r) = self.rep_mut(replica) {
                    r.completions.record(t, rt);
                    r.span_p99.observe(rt.as_millis_f64());
                }
            }
            for trace in traces {
                self.warehouse.push(trace);
            }
        }
    }

    // ------------------------------------------------------------------
    // Workload injection & the event loop
    // ------------------------------------------------------------------

    /// Schedules a user request of type `rtype` to be issued at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past or `rtype` is unknown.
    pub fn inject_at(&mut self, at: SimTime, rtype: RequestTypeId) -> RequestId {
        assert!(
            (rtype.get() as usize) < self.request_types.len(),
            "unknown request type {rtype}"
        );
        if let Some(engine) = self.engine.as_mut() {
            return engine.inject_at(at, rtype, &self.request_types[rtype.get() as usize]);
        }
        let id = RequestId(self.next_request);
        self.next_request += 1;
        let arrive = match self.network.as_mut() {
            None => at + self.config.net_delay.sample(&mut self.rng),
            Some(network) => {
                let entry = self.request_types[rtype.get() as usize].entry;
                match network.send(at, Endpoint::Client, Endpoint::Service(entry)) {
                    SendOutcome::Deliver { at: arrive, .. } => arrive,
                    SendOutcome::Lost(_) => {
                        // Ingress lost: the user saw a connection error.
                        self.dropped += 1;
                        self.drop_breakdown.count(DropReason::NetLost);
                        self.dropped_log.push((id, DropReason::NetLost));
                        return id;
                    }
                }
            }
        };
        let key = self.requests.insert(RequestState::new(id, rtype, at));
        self.queue
            .schedule(arrive, Event::ExternalArrival { request: key });
        if let Some(timeout) = self.request_types[rtype.get() as usize].timeout {
            self.queue
                .schedule(at + timeout, Event::Timeout { request: key });
        }
        id
    }

    /// Processes every event up to and including `t`, returning the
    /// requests that completed. The world's clock ends at `t`.
    pub fn run_until(&mut self, t: SimTime) -> Vec<Completion> {
        let mut out = Vec::new();
        self.run_until_into(t, &mut out);
        out
    }

    /// Allocation-free variant of [`World::run_until`]: appends the
    /// completions to `out` (which the caller clears and reuses across
    /// steps) instead of returning a fresh `Vec` per step.
    pub fn run_until_into(&mut self, t: SimTime, out: &mut Vec<Completion>) {
        match self.engine.as_mut() {
            Some(engine) => engine.run_until_into(t, &mut self.services, out),
            None => {
                while let Some((now, event)) = self.queue.pop_before(t) {
                    self.dispatch(now, event);
                }
                self.clock = self.clock.max(t);
                #[cfg(feature = "audit")]
                self.audit_run_boundary();
                out.append(&mut self.completed);
            }
        }
    }

    /// True when no events are pending (all requests finished or dropped).
    pub fn is_quiescent(&self) -> bool {
        match &self.engine {
            Some(e) => e.is_quiescent(),
            None => self.queue.is_empty(),
        }
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        self.events_dispatched += 1;
        #[cfg(feature = "audit")]
        self.audit_pre_event(now);
        match event {
            Event::ExternalArrival { request } => self.on_external_arrival(now, request),
            Event::ChildArrival {
                request,
                parent,
                call_idx,
                target,
                attempt,
            } => self.on_child_arrival(now, request, parent, call_idx, target, attempt),
            Event::ChildReturn {
                request,
                parent,
                call_idx,
            } => self.on_child_return(now, request, parent, call_idx),
            Event::CpuDone { replica, epoch } => self.on_cpu_done(now, replica, epoch),
            Event::ReplicaReady { replica } => self.make_ready(replica),
            Event::Timeout { request } => {
                if self.requests.contains(request) {
                    self.abort_request(now, request, DropReason::ClientTimeout);
                }
            }
            Event::Fault { kind } => self.on_fault(now, kind),
            Event::PressureEnd { node } => self.on_pressure_end(now, node),
            Event::BlackoutEnd => self.on_blackout_end(now),
            Event::CallTimeout {
                request,
                parent,
                call_idx,
                target,
                generation,
            } => self.on_call_timeout(now, request, parent, call_idx, target, generation),
            Event::TelemetrySample {
                replica,
                completed,
                response_time,
            } => self.on_telemetry_sample(replica, completed, response_time),
            Event::TelemetryTrace { trace } => self.on_telemetry_trace(*trace),
            Event::PartitionEnd { a, b } => self.on_partition_end(now, a, b),
            Event::LinkSlowEnd { a, b, factor } => self.on_link_slow_end(now, a, b, factor),
            Event::ReplicaRestart { service } => {
                let name = self.service_name(service).to_string();
                match self.recover_replica(service) {
                    Ok(id) => self
                        .fault_log
                        .push((now, format!("restart {name} as replica {id}"))),
                    Err(e) => self
                        .fault_log
                        .push((now, format!("restart {name} failed: {e}"))),
                }
            }
        }
        #[cfg(feature = "audit")]
        self.audit_post_event(now);
    }

    fn on_external_arrival(&mut self, now: SimTime, request: SlabKey) {
        let Some(rs) = self.requests.get(request) else {
            return;
        };
        if !rs.frames.is_empty() {
            return; // duplicate delivery: the request already arrived
        }
        let id = rs.id;
        let entry = self.request_types[rs.rtype.get() as usize].entry;
        let Some(replica) = self.pick_replica(entry) else {
            // No ready replica: the request is refused at the edge.
            self.requests.remove(request);
            self.dropped += 1;
            self.drop_breakdown.count(DropReason::Refused);
            self.dropped_log.push((id, DropReason::Refused));
            return;
        };
        let span = SpanId(self.next_span);
        self.next_span += 1;
        let rs = self.requests.get_mut(request).expect("checked above");
        rs.frames.push(Frame::new(entry, replica, span, None, now));
        let frame = rs.frames.len() - 1;
        self.admit_or_queue(now, request, frame);
    }

    fn on_child_arrival(
        &mut self,
        now: SimTime,
        request: SlabKey,
        parent: FrameIdx,
        call_idx: usize,
        target: ServiceId,
        attempt: u32,
    ) {
        if !self.requests.contains(request) {
            return; // request aborted while the call was in flight
        }
        let Some(replica) = self.pick_replica(target) else {
            // No ready replica right now: retry shortly (connection-level
            // retry, as a client library would), up to the configured
            // budget; beyond it the whole request fails.
            if attempt >= self.config.max_connect_retries {
                self.abort_request(now, request, DropReason::RetriesExhausted);
                return;
            }
            self.queue.schedule(
                now + SimDuration::from_millis(10),
                Event::ChildArrival {
                    request,
                    parent,
                    call_idx,
                    target,
                    attempt: attempt + 1,
                },
            );
            return;
        };
        let span = SpanId(self.next_span);
        self.next_span += 1;
        let rs = self.requests.get_mut(request).expect("checked above");
        rs.frames.push(Frame::new(
            target,
            replica,
            span,
            Some((parent, call_idx)),
            now,
        ));
        let frame = rs.frames.len() - 1;
        self.admit_or_queue(now, request, frame);
    }

    fn on_child_return(
        &mut self,
        now: SimTime,
        request: SlabKey,
        parent: FrameIdx,
        call_idx: usize,
    ) {
        let Some(rs) = self.requests.get_mut(request) else {
            return;
        };
        let frame = &mut rs.frames[parent];
        if frame.calls[call_idx].end != SimTime::MAX {
            // Already answered: a resend raced the original (or a duplicate
            // execution returned late). The first answer won; this one is
            // inert.
            return;
        }
        frame.calls[call_idx].end = now;
        let target = frame.calls[call_idx].service;
        let replica = frame.replica;
        debug_assert!(frame.pending_children > 0);
        frame.pending_children -= 1;
        let ready = frame.pending_children == 0;
        // Release the connection this call held and hand it to a waiter.
        self.release_conn(now, replica, target);
        if ready {
            let rs = self.requests.get_mut(request).expect("still present");
            rs.frames[parent].stage += 1;
            self.run_frame(now, request, parent);
        }
    }

    fn on_cpu_done(&mut self, now: SimTime, replica: ReplicaId, epoch: u64) {
        let mut finished = std::mem::take(&mut self.cpu_jobs_scratch);
        let mut work = std::mem::take(&mut self.cpu_work_scratch);
        let live = match self.rep_mut(replica) {
            // A stale epoch means the event refers to a superseded schedule.
            Some(r) if r.cpu.epoch() == epoch => {
                r.cpu.advance(now);
                r.cpu.take_finished_into(&mut finished);
                for job in finished.drain(..) {
                    if let Some(pair) = r.jobs.remove(&job) {
                        work.push(pair);
                    }
                }
                true
            }
            _ => false,
        };
        for (request, frame) in work.drain(..) {
            if let Some(rs) = self.requests.get_mut(request) {
                rs.frames[frame].stage += 1;
                self.run_frame(now, request, frame);
            }
        }
        self.cpu_jobs_scratch = finished;
        self.cpu_work_scratch = work;
        if live {
            self.schedule_cpu(now, replica);
        }
    }

    // ------------------------------------------------------------------
    // Request lifecycle helpers
    // ------------------------------------------------------------------

    /// Selects a ready replica under the service's LB policy. Two-pass and
    /// allocation-free — count the ready replicas, then walk to the chosen
    /// one — because this runs on every span admission. The RNG draw
    /// sequence is identical to the collect-then-index formulation, so
    /// simulation outputs are unchanged.
    fn pick_replica(&mut self, service: ServiceId) -> Option<ReplicaId> {
        let n = self.ready_count(service);
        if n == 0 {
            return None;
        }
        let choice = match self.services[service.get() as usize].spec.lb {
            LbPolicy::RoundRobin => {
                let rt = &mut self.services[service.get() as usize];
                let k = rt.rr % n;
                rt.rr = rt.rr.wrapping_add(1);
                self.nth_ready(service, k)
            }
            LbPolicy::Random => {
                let k = self.lb_rng.index(n);
                self.nth_ready(service, k)
            }
            LbPolicy::LeastOutstanding => {
                // Power of two choices.
                let ka = self.lb_rng.index(n);
                let a = self.nth_ready(service, ka);
                let kb = self.lb_rng.index(n);
                let b = self.nth_ready(service, kb);
                let oa = self.rep(a).expect("ready replica").outstanding();
                let ob = self.rep(b).expect("ready replica").outstanding();
                if oa <= ob {
                    a
                } else {
                    b
                }
            }
        };
        Some(choice)
    }

    fn ready_count(&self, service: ServiceId) -> usize {
        self.services[service.get() as usize]
            .replicas
            .iter()
            .filter(|&&id| self.state_of(id) == Some(ReplicaState::Ready))
            .count()
    }

    /// The `n`-th ready replica of `service` in creation order.
    fn nth_ready(&self, service: ServiceId, n: usize) -> ReplicaId {
        self.services[service.get() as usize]
            .replicas
            .iter()
            .copied()
            .filter(|&id| self.state_of(id) == Some(ReplicaState::Ready))
            .nth(n)
            .expect("nth_ready index is below the ready count")
    }

    fn admit_or_queue(&mut self, now: SimTime, request: SlabKey, frame: FrameIdx) {
        let replica = self
            .requests
            .get(request)
            .expect("admitting a live request")
            .frames[frame]
            .replica;
        let Some(r) = self.rep_mut(replica) else {
            // Replica vanished between selection and admission (failure).
            self.abort_request(now, request, DropReason::ReplicaFailed);
            return;
        };
        if r.threads.try_acquire() {
            self.start_service(now, request, frame);
        } else {
            r.threads.queue.push_back((request, frame));
        }
    }

    fn start_service(&mut self, now: SimTime, request: SlabKey, frame: FrameIdx) {
        let rs = self
            .requests
            .get_mut(request)
            .expect("admitting a live request");
        let f = &mut rs.frames[frame];
        f.started = Some(now);
        let replica = f.replica;
        if let Some(r) = self.rep_mut(replica) {
            r.concurrency.enter(now);
        }
        self.run_frame(now, request, frame);
    }

    /// Executes stages of `frame` starting at its current stage until the
    /// frame blocks (CPU, downstream calls) or completes.
    fn run_frame(&mut self, now: SimTime, request: SlabKey, frame: FrameIdx) {
        loop {
            let Some(rs) = self.requests.get(request) else {
                return;
            };
            let f = &rs.frames[frame];
            let (service, replica) = (f.service, f.replica);
            let stage_idx = f.stage;
            let rtype = rs.rtype;
            let behavior = self.services[service.get() as usize]
                .spec
                .behaviors
                .get(&rtype)
                .unwrap_or_else(|| {
                    panic!(
                        "service {} has no behaviour for request type {rtype}",
                        self.services[service.get() as usize].spec.name
                    )
                });
            match behavior.stages.get(stage_idx).cloned() {
                None => {
                    self.complete_span(now, request, frame);
                    return;
                }
                Some(Stage::Compute { demand }) => {
                    let d = demand.sample(&mut self.rng);
                    let Some(r) = self.rep_mut(replica) else {
                        return;
                    };
                    let job = r.cpu.add(now, d);
                    r.jobs.insert(job, (request, frame));
                    self.schedule_cpu(now, replica);
                    return;
                }
                Some(Stage::Call { targets }) => {
                    if targets.is_empty() {
                        let rs = self.requests.get_mut(request).expect("present");
                        rs.frames[frame].stage += 1;
                        continue;
                    }
                    self.issue_calls(now, request, frame, &targets);
                    return;
                }
            }
        }
    }

    fn issue_calls(
        &mut self,
        now: SimTime,
        request: SlabKey,
        frame: FrameIdx,
        targets: &[ServiceId],
    ) {
        let net_mode = self.network.is_some();
        let replica = {
            let rs = self.requests.get_mut(request).expect("present");
            let f = &mut rs.frames[frame];
            // One growth step for the whole fan-out instead of one per call.
            f.calls.reserve(targets.len());
            f.replica
        };
        for &target in targets {
            let call_idx = {
                let rs = self.requests.get_mut(request).expect("present");
                let f = &mut rs.frames[frame];
                // `end` stays at the SimTime::MAX sentinel until the child
                // returns; a completed call may legitimately have end ==
                // start (zero network delay + zero compute), so "end equals
                // start" cannot mark outstandingness.
                f.calls.push(telemetry::ChildCall {
                    service: target,
                    start: now,
                    end: SimTime::MAX,
                });
                f.pending_children += 1;
                if net_mode {
                    f.attempts.push(0);
                }
                f.calls.len() - 1
            };
            let acquired = match self.rep_mut(replica).and_then(|r| r.conns.get_mut(&target)) {
                Some(pool) => {
                    if pool.try_acquire() {
                        true
                    } else {
                        pool.waiters.push_back(ConnWaiter {
                            request,
                            frame,
                            call_idx,
                        });
                        false
                    }
                }
                None => true, // unlimited: no pool configured
            };
            if acquired {
                self.send_child_call(now, request, frame, call_idx, target);
            }
        }
    }

    /// Dispatches one inter-service call message toward `target`, in either
    /// engine mode. Under a network the caller-side per-call timeout (if
    /// the edge configures one) is armed here — it starts when the message
    /// is actually sent, i.e. after any connection-pool wait.
    fn send_child_call(
        &mut self,
        now: SimTime,
        request: SlabKey,
        parent: FrameIdx,
        call_idx: usize,
        target: ServiceId,
    ) {
        if self.network.is_none() {
            let net = self.config.net_delay.sample(&mut self.rng);
            self.queue.schedule(
                now + net,
                Event::ChildArrival {
                    request,
                    parent,
                    call_idx,
                    target,
                    attempt: 0,
                },
            );
            return;
        }
        let rs = self
            .requests
            .get(request)
            .expect("sending for a live request");
        let caller = rs.frames[parent].service;
        let generation = rs.frames[parent].attempts[call_idx];
        let network = self.network.as_mut().expect("checked above");
        let call_timeout = network
            .config()
            .params(Endpoint::Service(caller), Endpoint::Service(target))
            .call_timeout;
        match network.send(now, Endpoint::Service(caller), Endpoint::Service(target)) {
            SendOutcome::Deliver { at, .. } => {
                self.queue.schedule(
                    at,
                    Event::ChildArrival {
                        request,
                        parent,
                        call_idx,
                        target,
                        attempt: 0,
                    },
                );
            }
            // Lost in transit: nothing arrives. The timeout below (when
            // configured) resends; otherwise only the client-side timeout
            // can reclaim the request.
            SendOutcome::Lost(_) => {}
        }
        if let Some(timeout) = call_timeout {
            self.queue.schedule(
                now + timeout,
                Event::CallTimeout {
                    request,
                    parent,
                    call_idx,
                    target,
                    generation,
                },
            );
        }
    }

    /// A per-call network timeout fired: resend the call (a fresh message
    /// and, at the target, a fresh execution) or — once the edge's resend
    /// budget is spent — give the whole request up as a network timeout.
    fn on_call_timeout(
        &mut self,
        now: SimTime,
        request: SlabKey,
        parent: FrameIdx,
        call_idx: usize,
        target: ServiceId,
        generation: u32,
    ) {
        let Some(rs) = self.requests.get_mut(request) else {
            return;
        };
        let frame = &mut rs.frames[parent];
        if frame.calls[call_idx].end != SimTime::MAX {
            return; // answered before the timeout fired
        }
        if frame.attempts[call_idx] != generation {
            return; // a resend already superseded this timeout
        }
        let caller = frame.service;
        let max_retries = self
            .network
            .as_ref()
            .expect("call timeouts only exist under a network")
            .config()
            .params(Endpoint::Service(caller), Endpoint::Service(target))
            .max_call_retries;
        if generation >= max_retries {
            self.abort_request(now, request, DropReason::NetTimedOut);
            return;
        }
        let rs = self.requests.get_mut(request).expect("checked above");
        rs.frames[parent].attempts[call_idx] = generation + 1;
        self.network
            .as_mut()
            .expect("checked above")
            .note_call_retry();
        // The original connection grant is still held for this call, so the
        // resend goes straight out — no second acquire.
        self.send_child_call(now, request, parent, call_idx, target);
    }

    fn complete_span(&mut self, now: SimTime, request: SlabKey, frame: FrameIdx) {
        let (service, replica, parent, arrival) = {
            let rs = self
                .requests
                .get_mut(request)
                .expect("completing a live request");
            let f = &mut rs.frames[frame];
            f.departure = Some(now);
            (f.service, f.replica, f.parent, f.arrival)
        };
        let span_rt = now - arrival;
        if let Some(k) = self.rep_key(replica) {
            let r = self.replicas.get_mut(k).expect("live replica key");
            r.concurrency.leave(now);
            // Completion *samples* go through the telemetry pipeline, which
            // a blackout window darkens; the concurrency tracker above keeps
            // integrating (it reflects the replica's true state, which a
            // controller would still pair with the missing rate samples).
            // Under a network with a non-transparent telemetry edge the
            // sample becomes a message instead: it may arrive late (and out
            // of order with other replicas' samples) or never — and blackout
            // windows are applied at *delivery* time, where the collector
            // sits. Samples are exactly-once-or-lost; only trace reports
            // (which carry span ids the warehouse can dedupe on) model
            // retransmit duplication.
            if self
                .network
                .as_ref()
                .is_some_and(|n| !n.config().telemetry_is_transparent())
            {
                let network = self.network.as_mut().expect("checked above");
                if let SendOutcome::Deliver { at, .. } =
                    network.send(now, Endpoint::Service(service), Endpoint::Monitor)
                {
                    self.queue.schedule(
                        at,
                        Event::TelemetrySample {
                            replica,
                            completed: now,
                            response_time: span_rt,
                        },
                    );
                }
            } else {
                match self.blackout {
                    None => {
                        r.completions.record(now, span_rt);
                        r.span_p99.observe(span_rt.as_millis_f64());
                    }
                    Some(BlackoutMode::Lag) => {
                        self.lag_completions.push((replica, now, span_rt));
                    }
                    Some(BlackoutMode::Drop) => {}
                }
            }
            r.threads.release();
        }
        self.drain_thread_queue(now, replica);
        self.maybe_reap_drained(now, replica);
        match parent {
            Some((p, call_idx)) => match self.network.as_mut() {
                None => {
                    let net = self.config.net_delay.sample(&mut self.rng);
                    self.queue.schedule(
                        now + net,
                        Event::ChildReturn {
                            request,
                            parent: p,
                            call_idx,
                        },
                    );
                }
                Some(network) => {
                    let parent_service = self
                        .requests
                        .get(request)
                        .expect("completing a live request")
                        .frames[p]
                        .service;
                    match network.send(
                        now,
                        Endpoint::Service(service),
                        Endpoint::Service(parent_service),
                    ) {
                        SendOutcome::Deliver { at, .. } => self.queue.schedule(
                            at,
                            Event::ChildReturn {
                                request,
                                parent: p,
                                call_idx,
                            },
                        ),
                        // The response vanished; the caller's per-call
                        // timeout (if armed) resends the whole call.
                        SendOutcome::Lost(_) => {}
                    }
                }
            },
            None => self.finalize_request(now, request),
        }
    }

    fn finalize_request(&mut self, now: SimTime, request: SlabKey) {
        let rs = self
            .requests
            .remove(request)
            .expect("finalizing a live request");
        let id = rs.id;
        let issued = rs.issued;
        let rtype = rs.rtype;
        let entry = rs.frames[0].service;
        let completed = match self.network.as_mut() {
            None => now + self.config.net_delay.sample(&mut self.rng),
            // The response rides the established client connection:
            // latency applies, loss does not.
            Some(network) => network.deliver_response(now, Endpoint::Service(entry)),
        };
        let response_time = completed - issued;
        // Under a network, a resend that raced its (slow, not lost)
        // original can leave duplicate child executions still running when
        // the root responds. Their results are discarded: release whatever
        // they hold and clamp their spans at `now`. The function-edge
        // engine keeps the open-frame panic as a lifecycle assertion.
        let mut close_open_at = None;
        if self.network.is_some() && rs.frames.iter().any(|f| f.departure.is_none()) {
            for fi in 0..rs.frames.len() {
                if rs.frames[fi].departure.is_none() {
                    self.release_open_frame(now, request, &rs, fi);
                    self.network.as_mut().expect("checked above").note_orphan();
                }
            }
            close_open_at = Some(now);
        }
        let spare = self.warehouse.take_spare_spans();
        let trace = rs.into_trace_with(spare, close_open_at);
        // The warehouse is part of the monitoring pipeline: blackout windows
        // withhold traces, and under a non-transparent telemetry edge the
        // trace is a message that may arrive late, duplicated (a retransmit
        // echo the warehouse dedupes by span id), or never. The client logs
        // below model the experiment harness and always record.
        if self
            .network
            .as_ref()
            .is_some_and(|n| !n.config().telemetry_is_transparent())
        {
            let network = self.network.as_mut().expect("checked above");
            match network.send_dup(now, Endpoint::Service(entry), Endpoint::Monitor) {
                SendOutcome::Deliver { at, duplicate } => {
                    if let Some(at2) = duplicate {
                        self.queue.schedule(
                            at2,
                            Event::TelemetryTrace {
                                trace: Box::new(trace.clone()),
                            },
                        );
                    }
                    self.queue.schedule(
                        at,
                        Event::TelemetryTrace {
                            trace: Box::new(trace),
                        },
                    );
                }
                SendOutcome::Lost(_) => {}
            }
        } else {
            match self.blackout {
                None => self.warehouse.push(trace),
                Some(BlackoutMode::Lag) => self.lag_traces.push(trace),
                Some(BlackoutMode::Drop) => {}
            }
        }
        self.client.record(completed, response_time);
        self.client_by_type[rtype.get() as usize].record(completed, response_time);
        self.completed.push(Completion {
            request: id,
            rtype,
            issued,
            completed,
            response_time,
        });
    }

    /// Handles a completion sample delivered over the telemetry edge.
    /// `completed` is when the span finished on its replica; delivery (the
    /// current event's instant) may be much later, so the per-replica
    /// completion log absorbs it out of order.
    fn on_telemetry_sample(
        &mut self,
        replica: ReplicaId,
        completed: SimTime,
        response_time: SimDuration,
    ) {
        match self.blackout {
            Some(BlackoutMode::Drop) => return,
            Some(BlackoutMode::Lag) => {
                self.lag_completions
                    .push((replica, completed, response_time));
                return;
            }
            None => {}
        }
        if let Some(r) = self.rep_mut(replica) {
            r.completions.record(completed, response_time);
            r.span_p99.observe(response_time.as_millis_f64());
        }
    }

    /// Handles a trace report delivered over the telemetry edge. Duplicate
    /// retransmits reach this same path; the warehouse ingest is idempotent
    /// by root span id, so they cannot double-count.
    fn on_telemetry_trace(&mut self, trace: Trace) {
        match self.blackout {
            None => self.warehouse.push(trace),
            Some(BlackoutMode::Lag) => self.lag_traces.push(trace),
            Some(BlackoutMode::Drop) => {}
        }
    }

    /// Aborts a request outright, reclaiming every resource its frames hold.
    fn abort_request(&mut self, now: SimTime, request: SlabKey, reason: DropReason) {
        let Some(rs) = self.requests.remove(request) else {
            return;
        };
        let id = rs.id;
        for fi in 0..rs.frames.len() {
            if rs.frames[fi].departure.is_some() {
                continue; // span finished; resources already released
            }
            self.release_open_frame(now, request, &rs, fi);
        }
        self.dropped += 1;
        self.drop_breakdown.count(reason);
        self.dropped_log.push((id, reason));
    }

    /// Reclaims every resource one still-open frame holds: its thread (or
    /// accept-queue slot), any CPU job, and connections held by its
    /// outstanding calls. `rs` has already been removed from the slab;
    /// `request` is the (now-stale) key its waiters and jobs are tagged
    /// with. Shared by [`World::abort_request`] and the orphan-frame
    /// reaping in [`World::finalize_request`].
    fn release_open_frame(
        &mut self,
        now: SimTime,
        request: SlabKey,
        rs: &RequestState,
        fi: FrameIdx,
    ) {
        let frame = &rs.frames[fi];
        let replica = frame.replica;
        // Reclaim the thread (if the frame had been admitted).
        if frame.started.is_some() {
            if let Some(r) = self.rep_mut(replica) {
                r.concurrency.leave(now);
                r.threads.release();
                // Cancel any CPU job of this frame.
                let jobs: Vec<_> = r
                    .jobs
                    .iter()
                    .filter(|(_, &(rq, f))| rq == request && f == fi)
                    .map(|(&j, _)| j)
                    .collect();
                for j in jobs {
                    r.jobs.remove(&j);
                    r.cpu.cancel(now, j);
                }
            }
            self.schedule_cpu(now, replica);
            self.drain_thread_queue(now, replica);
        } else if let Some(r) = self.rep_mut(replica) {
            // Still in the accept queue: drop the entry lazily.
            r.threads.queue.retain(|&(rq, _)| rq != request);
        }
        // Release connections held by outstanding calls of this frame.
        for call in &frame.calls {
            if call.end == SimTime::MAX {
                // Outstanding (or waiting). If waiting, remove the waiter
                // instead of releasing.
                if let Some(r) = self.rep_mut(replica) {
                    if let Some(pool) = r.conns.get_mut(&call.service) {
                        let before = pool.waiters.len();
                        pool.waiters.retain(|w| w.request != request);
                        if pool.waiters.len() == before {
                            pool.release();
                        }
                    }
                }
                self.drain_conn_waiters(now, replica, call.service);
            }
        }
        self.maybe_reap_drained(now, replica);
    }

    // ------------------------------------------------------------------
    // Resource-release plumbing
    // ------------------------------------------------------------------

    fn release_conn(&mut self, now: SimTime, replica: ReplicaId, target: ServiceId) {
        if let Some(r) = self.rep_mut(replica) {
            if r.conns.contains_key(&target) {
                r.conns.get_mut(&target).expect("checked").release();
                self.drain_conn_waiters(now, replica, target);
            }
        }
    }

    /// Grants free connections to waiters, skipping waiters whose request
    /// has been aborted.
    fn drain_conn_waiters(&mut self, now: SimTime, replica: ReplicaId, target: ServiceId) {
        loop {
            let waiter = {
                let Some(key) = self.rep_key(replica) else {
                    return;
                };
                // Field-level borrow so the request check below can read
                // the disjoint `requests` slab.
                let Some(r) = self.replicas.get_mut(key) else {
                    return;
                };
                let Some(pool) = r.conns.get_mut(&target) else {
                    return;
                };
                match pool.grant_next() {
                    Some(w) => {
                        if self.requests.contains(w.request) {
                            Some(w)
                        } else {
                            pool.release(); // dead waiter: free the slot, try next
                            continue;
                        }
                    }
                    None => None,
                }
            };
            match waiter {
                Some(w) => self.send_child_call(now, w.request, w.frame, w.call_idx, target),
                None => return,
            }
        }
    }

    /// Admits queued requests while threads are free, skipping dead entries.
    fn drain_thread_queue(&mut self, now: SimTime, replica: ReplicaId) {
        loop {
            let next = {
                let Some(key) = self.rep_key(replica) else {
                    return;
                };
                let Some(r) = self.replicas.get_mut(key) else {
                    return;
                };
                match r.threads.admit_next() {
                    Some((req, frame)) => {
                        if self.requests.contains(req) {
                            Some((req, frame))
                        } else {
                            r.threads.release(); // dead entry: free thread, try next
                            continue;
                        }
                    }
                    None => None,
                }
            };
            match next {
                Some((req, frame)) => self.start_service(now, req, frame),
                None => return,
            }
        }
    }

    fn maybe_reap_drained(&mut self, now: SimTime, replica: ReplicaId) {
        let should_remove = self.state_of(replica) == Some(ReplicaState::Draining)
            && self.rep(replica).is_some_and(|r| r.is_idle());
        if should_remove {
            self.remove_replica_final(now, replica);
        }
    }

    fn schedule_cpu(&mut self, now: SimTime, replica: ReplicaId) {
        let Some(r) = self.rep_mut(replica) else {
            return;
        };
        r.cpu.advance(now);
        let next = r.cpu.next_completion().map(|(t, _)| (t, r.cpu.epoch()));
        if let Some((t, epoch)) = next {
            self.queue.schedule(t, Event::CpuDone { replica, epoch });
        }
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// The trace warehouse (Sora's Monitoring Module storage).
    pub fn warehouse(&self) -> &TraceWarehouse {
        match &self.engine {
            Some(e) => e.warehouse(),
            None => &self.warehouse,
        }
    }

    /// The end-to-end client log (experiment reporting).
    pub fn client(&self) -> &ClientLog {
        match &self.engine {
            Some(e) => e.client(),
            None => &self.client,
        }
    }

    /// The end-to-end client log restricted to one request type — e.g. to
    /// compare light vs heavy reads across a state-drift run.
    ///
    /// # Panics
    ///
    /// Panics if `rtype` was never registered.
    pub fn client_of(&self, rtype: RequestTypeId) -> &ClientLog {
        match &self.engine {
            Some(e) => e.client_of(rtype),
            None => &self.client_by_type[rtype.get() as usize],
        }
    }

    /// Requests refused or aborted without a response.
    pub fn dropped(&self) -> u64 {
        match &self.engine {
            Some(e) => e.dropped(),
            None => self.dropped,
        }
    }

    /// Total simulation events dispatched since construction — the
    /// events-per-second numerator reported by the `scale` bench.
    pub fn events_dispatched(&self) -> u64 {
        match &self.engine {
            Some(e) => e.events_dispatched(),
            None => self.events_dispatched,
        }
    }

    /// Events on the conservative critical path: the sum over execution
    /// windows of the *maximum* per-shard dispatch count, i.e. the
    /// makespan of an idealised run with one core per shard. The ratio
    /// `events_dispatched / critical_path_events` is the speedup the
    /// window schedule exposes independent of host core count; with one
    /// shard (or the classic engine) it equals [`World::events_dispatched`].
    pub fn critical_path_events(&self) -> u64 {
        match &self.engine {
            Some(e) => e.critical_path_events(),
            None => self.events_dispatched,
        }
    }

    /// Requests ever injected (completed + dropped + in flight).
    pub fn requests_injected(&self) -> u64 {
        match &self.engine {
            Some(e) => e.requests_injected(),
            None => self.next_request,
        }
    }

    /// Spans ever created (one per service invocation across all requests).
    pub fn spans_created(&self) -> u64 {
        match &self.engine {
            Some(e) => e.spans_created(),
            None => self.next_span,
        }
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        match &self.engine {
            Some(e) => e.in_flight() as usize,
            None => self.requests.len(),
        }
    }

    /// Cumulative drop counts broken down by cause.
    pub fn drop_breakdown(&self) -> DropBreakdown {
        match &self.engine {
            Some(e) => e.drop_breakdown(),
            None => self.drop_breakdown,
        }
    }

    /// A point-in-time telemetry snapshot: cumulative counters plus exact
    /// completion-window counts over `[window_from, now)` against
    /// `threshold`. This is the read-only seam the service plane
    /// (`sora-server`) streams between simulation steps; taking a snapshot
    /// never perturbs the simulation.
    pub fn telemetry_snapshot(
        &self,
        window_from: SimTime,
        threshold: SimDuration,
    ) -> TelemetrySnapshot {
        let now = self.now();
        let (window_completed, window_good) = self.client().counts_in(window_from, now, threshold);
        TelemetrySnapshot {
            now_nanos: now.as_nanos(),
            completed: self.client().total(),
            dropped: self.dropped(),
            in_flight: self.in_flight() as u64,
            events_dispatched: self.events_dispatched(),
            window_completed,
            window_good,
            drop_breakdown: self.drop_breakdown(),
        }
    }

    /// Drains the requests dropped since the last call, each with the
    /// reason — closed-loop drivers use this to recycle or retry the
    /// affected users (a real client would see a connection error).
    pub fn drain_dropped(&mut self) -> Vec<(RequestId, DropReason)> {
        match self.engine.as_mut() {
            Some(e) => e.drain_dropped(),
            None => std::mem::take(&mut self.dropped_log),
        }
    }

    /// The node hosting `replica`, if it is placed (fault schedules use
    /// this to aim CPU-pressure windows at a specific service's node).
    pub fn node_of(&self, replica: ReplicaId) -> Option<NodeId> {
        match &self.engine {
            Some(e) => e.node_of(replica),
            None => self.cluster.placement(replica.get()).map(|p| p.node),
        }
    }

    /// Ready replica ids of `service`, in creation order.
    pub fn ready_replicas(&self, service: ServiceId) -> Vec<ReplicaId> {
        self.ready_replicas_iter(service).collect()
    }

    /// Non-allocating variant of [`World::ready_replicas`] for per-tick
    /// monitoring loops.
    pub fn ready_replicas_iter(&self, service: ServiceId) -> impl Iterator<Item = ReplicaId> + '_ {
        self.all_replicas(service)
            .iter()
            .copied()
            .filter(|&id| self.state_of(id) == Some(ReplicaState::Ready))
    }

    /// All live replica ids of `service` (starting + ready + draining).
    pub fn all_replicas(&self, service: ServiceId) -> &[ReplicaId] {
        match &self.engine {
            Some(e) => e.service_replicas(service),
            None => &self.services[service.get() as usize].replicas,
        }
    }

    /// The concurrency sampler of one replica.
    pub fn concurrency_of(&self, replica: ReplicaId) -> Option<&ConcurrencyTracker> {
        self.rep(replica).map(|r| &r.concurrency)
    }

    /// The completion log of one replica.
    pub fn completions_of(&self, replica: ReplicaId) -> Option<&CompletionLog> {
        self.rep(replica).map(|r| &r.completions)
    }

    /// Live p99 of span response times across ready replicas of `service`
    /// (worst replica), in milliseconds — the SLO-violation gauge FIRM-style
    /// managers scale on. `None` until any replica has completions.
    pub fn span_p99_ms(&self, service: ServiceId) -> Option<f64> {
        self.ready_replicas_iter(service)
            .filter_map(|id| self.rep(id).and_then(|r| r.span_p99.value()))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Threads currently held across ready replicas of `service` (the
    /// paper's "Running Threads" panel).
    pub fn running_threads(&self, service: ServiceId) -> usize {
        self.ready_replicas_iter(service)
            .map(|id| self.rep(id).expect("ready replica").threads.active)
            .sum()
    }

    /// Requests queued for a thread across ready replicas.
    pub fn queued_requests(&self, service: ServiceId) -> usize {
        self.ready_replicas_iter(service)
            .map(|id| self.rep(id).expect("ready replica").threads.queue.len())
            .sum()
    }

    /// Connections in use from `service` toward `target`, across ready
    /// replicas.
    pub fn conns_in_use(&self, service: ServiceId, target: ServiceId) -> usize {
        self.ready_replicas_iter(service)
            .filter_map(|id| self.rep(id).expect("ready replica").conns.get(&target))
            .map(|p| p.in_use)
            .sum()
    }

    /// Calls from `service` queued waiting for a connection toward
    /// `target`, across ready replicas (a saturation signal for the
    /// exploration logic).
    pub fn conn_waiting(&self, service: ServiceId, target: ServiceId) -> usize {
        self.ready_replicas_iter(service)
            .filter_map(|id| self.rep(id).expect("ready replica").conns.get(&target))
            .map(|p| p.waiters.len())
            .sum()
    }

    /// Total configured (established) connections from `service` toward
    /// `target` across ready replicas — pool size × replica count, the
    /// paper's "Established DB Conn" panel.
    pub fn conns_established(&self, service: ServiceId, target: ServiceId) -> usize {
        self.ready_replicas_iter(service)
            .filter_map(|id| self.rep(id).expect("ready replica").conns.get(&target))
            .map(|p| p.limit)
            .sum()
    }

    /// The current per-replica thread limit of `service`.
    pub fn thread_limit(&self, service: ServiceId) -> usize {
        self.services[service.get() as usize].thread_limit
    }

    /// The current per-replica connection limit from `service` to `target`.
    pub fn conn_limit(&self, service: ServiceId, target: ServiceId) -> Option<usize> {
        self.services[service.get() as usize]
            .conn_limits
            .get(&target)
            .copied()
    }

    /// The current per-replica CPU limit of `service`.
    pub fn cpu_limit(&self, service: ServiceId) -> Millicores {
        self.services[service.get() as usize].cpu_limit
    }

    /// Cumulative CPU busy core-seconds of `service` across all its
    /// replicas (past and present), advanced to the current instant.
    /// Utilisation consumers (HPA, FIRM, the timeline sampler) each keep
    /// their own previous reading and divide the delta by elapsed capacity
    /// — see `sora_core::UtilizationProbe` — so concurrent monitors never
    /// corrupt each other's view.
    pub fn cpu_busy_core_secs(&mut self, service: ServiceId) -> f64 {
        if let Some(engine) = self.engine.as_mut() {
            return engine.cpu_busy_core_secs(&mut self.services, service);
        }
        let now = self.now();
        let svc = service.get() as usize;
        let mut total = self.services[svc].retired_busy_nanos;
        for i in 0..self.services[svc].replicas.len() {
            let id = self.services[svc].replicas[i];
            if let Some(r) = self.rep_mut(id) {
                r.cpu.advance(now);
                total += r.cpu.busy_core_nanos();
            }
        }
        total / 1e9
    }

    /// Aggregate CPU capacity of `service` in cores (ready replicas ×
    /// per-replica limit).
    pub fn cpu_capacity_cores(&self, service: ServiceId) -> f64 {
        self.ready_replicas_iter(service).count() as f64 * self.cpu_limit(service).as_cores_f64()
    }

    /// The name of `service` (for reports).
    pub fn service_name(&self, service: ServiceId) -> &str {
        &self.services[service.get() as usize].spec.name
    }

    /// The number of registered services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// The entry service of a request type.
    pub fn entry_of(&self, rtype: RequestTypeId) -> ServiceId {
        self.request_types[rtype.get() as usize].entry
    }
}

// ------------------------------------------------------------------
// Conservation-law auditing (compiled only with `--features audit`)
// ------------------------------------------------------------------
#[cfg(feature = "audit")]
use sim_core::audit::AuditSink as _;

#[cfg(feature = "audit")]
impl World {
    /// Violations observed so far. Empty on a correct simulator; harnesses
    /// assert `world.audit().total() == 0` at the end of audited runs.
    pub fn audit(&self) -> &sim_core::audit::CountingSink {
        match &self.engine {
            Some(e) => e.audit(),
            None => &self.audit_sink,
        }
    }

    /// Before each event: dispatch order must never move backwards in time.
    /// `EventQueue` enforces this with its own assertions, so this check
    /// firing means the queue invariant itself was broken.
    fn audit_pre_event(&mut self, now: SimTime) {
        if now < self.audit_last_event {
            self.audit_sink.record(sim_core::audit::Violation {
                invariant: sim_core::audit::Invariant::EventMonotonicity,
                at_nanos: now.as_nanos(),
                detail: format!(
                    "event at {} ns dispatched after event at {} ns",
                    now.as_nanos(),
                    self.audit_last_event.as_nanos()
                ),
            });
        }
        self.audit_last_event = now;
    }

    /// After each event: request conservation. Every injected request is
    /// exactly one of completed (client log), dropped (with a reason), or
    /// still in flight — checked after every single event dispatch, so a
    /// leak is caught at the event that caused it.
    fn audit_post_event(&mut self, now: SimTime) {
        let injected = self.next_request;
        let accounted = self.client.total() + self.dropped + self.requests.len() as u64;
        if injected != accounted {
            self.audit_sink.record(sim_core::audit::Violation {
                invariant: sim_core::audit::Invariant::RequestConservation,
                at_nanos: now.as_nanos(),
                detail: format!(
                    "injected {} != completed {} + dropped {} + in-flight {}",
                    injected,
                    self.client.total(),
                    self.dropped,
                    self.requests.len()
                ),
            });
        }
        debug_assert_eq!(
            self.dropped,
            self.drop_breakdown.total(),
            "drop breakdown out of sync with total"
        );
    }

    /// At `run_until` boundaries: per-replica integral checks (CPU-time
    /// conservation, concurrency-ring consistency). These are O(replicas ×
    /// retained history) — far too costly per event, and closed-loop
    /// drivers call `run_until` many times per simulated second — so the
    /// sweep is throttled to at most once per simulated second (plus the
    /// very first boundary). Drift in an integral persists until the
    /// offending history leaves the retention horizon (60 s), so a 1 s
    /// audit grid cannot miss it.
    fn audit_run_boundary(&mut self) {
        let now = self.clock;
        if now < self.audit_next_boundary {
            return;
        }
        self.audit_next_boundary = now + sim_core::SimDuration::from_secs(1);
        for (_, r) in self.replicas.iter() {
            r.concurrency.audit_into(now, &mut self.audit_sink);
            r.cpu.audit_into(now, &mut self.audit_sink);
        }
        self.warehouse.audit_into(now, &mut self.audit_sink);
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let replicas = match &self.engine {
            Some(e) => e.replica_count(),
            None => self.replicas.len(),
        };
        f.debug_struct("World")
            .field("now", &self.now())
            .field("services", &self.services.len())
            .field("replicas", &replicas)
            .field("in_flight", &self.in_flight())
            .field("completed", &self.client().total())
            .field("dropped", &self.dropped())
            .finish()
    }
}
