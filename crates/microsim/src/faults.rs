//! Deterministic fault injection: timed crash, pressure and blackout events.
//!
//! A [`FaultSchedule`] is a list of sim-clock-stamped fault events built
//! before a run and installed with [`World::install_faults`]. Each event
//! rides the world's ordinary event queue, so faults interleave with
//! arrivals and completions in a fully deterministic order — the same seed
//! and schedule always reproduce the same run, byte for byte, regardless of
//! host parallelism.
//!
//! Five fault families cover the paper's unmodelled failure regimes:
//!
//! * **Replica crash** ([`FaultKind::ReplicaCrash`]): abruptly kills one
//!   ready replica of a service (requests with open frames on it are
//!   aborted, see [`World::fail_replica`]) and optionally restarts it after
//!   a delay via [`World::recover_replica`] — the restarted pod pays normal
//!   container start-up before taking traffic.
//! * **Node CPU pressure** ([`FaultKind::CpuPressure`]): for a window,
//!   every replica placed on the node delivers only `factor` of its CPU
//!   limit (noisy neighbours / host throttling), implemented by
//!   [`cluster::PsCpu::set_pressure`]. Replicas scheduled onto the node
//!   mid-window inherit the pressure; the window's end restores full
//!   capacity.
//! * **Telemetry blackout** ([`FaultKind::TelemetryBlackout`]): the
//!   monitoring pipeline goes dark for a window. In [`BlackoutMode::Drop`]
//!   per-replica completion samples and warehouse traces in the window are
//!   lost; in [`BlackoutMode::Lag`] they are buffered and delivered, in
//!   order, when the window ends. Requests themselves are unaffected — only
//!   the controller's view of them is — and the end-to-end client log keeps
//!   recording, since it models the experiment harness rather than the
//!   cluster's monitoring stack.
//! * **Network partition** ([`FaultKind::Partition`]): with a network
//!   installed (see `World::install_network`), messages between two
//!   services are dropped in both directions for a window; messages
//!   already in flight still arrive. Without a network the fault is
//!   logged and ignored.
//! * **Slow link** ([`FaultKind::LinkSlow`]): with a network installed,
//!   sampled latencies between two services are multiplied by a factor
//!   for a window (congestion or a flapping NIC rather than a clean cut).
//!
//! Schedules are validated when installed: inverted windows (`end <
//! start` from the `*_between` builders) and overlapping crash windows on
//! the same service are rejected with a typed [`FaultScheduleError`]
//! instead of silently producing a nonsensical run.
//!
//! [`World::install_faults`]: crate::World::install_faults
//! [`World::fail_replica`]: crate::World::fail_replica
//! [`World::recover_replica`]: crate::World::recover_replica

use cluster::NodeId;
use sim_core::{SimDuration, SimTime};
use std::fmt;
use telemetry::ServiceId;

/// What happens to telemetry samples produced during a blackout window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlackoutMode {
    /// Samples in the window are lost.
    Drop,
    /// Samples are buffered and delivered in order when the window ends
    /// (a lagging collector rather than a dead one).
    Lag,
}

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Kill one ready replica of `service` (the longest-lived one, for
    /// determinism); optionally start a replacement after `restart_after`.
    ReplicaCrash {
        /// The service losing a replica.
        service: ServiceId,
        /// Delay until a replacement pod is created (`None`: no restart).
        restart_after: Option<SimDuration>,
    },
    /// Shrink the CPU actually deliverable on `node` to `factor` of each
    /// hosted replica's limit for `duration`.
    CpuPressure {
        /// The afflicted node.
        node: NodeId,
        /// Fraction of the limit still deliverable, in `(0, 1]`.
        factor: f64,
        /// How long the pressure window lasts.
        duration: SimDuration,
    },
    /// Withhold telemetry samples for `duration`.
    TelemetryBlackout {
        /// Whether withheld samples are lost or delivered late.
        mode: BlackoutMode,
        /// How long the blackout window lasts.
        duration: SimDuration,
    },
    /// Drop all messages between `a` and `b` (both directions) for
    /// `duration`. Requires an installed network; otherwise logged and
    /// ignored.
    Partition {
        /// One side of the cut.
        a: ServiceId,
        /// The other side.
        b: ServiceId,
        /// How long the partition window lasts.
        duration: SimDuration,
    },
    /// Multiply sampled latencies between `a` and `b` (both directions)
    /// by `factor` for `duration`. Requires an installed network;
    /// otherwise logged and ignored.
    LinkSlow {
        /// One side of the degraded link.
        a: ServiceId,
        /// The other side.
        b: ServiceId,
        /// Latency multiplier, `> 0` (overlapping windows stack
        /// multiplicatively).
        factor: f64,
        /// How long the slow window lasts.
        duration: SimDuration,
    },
}

/// A fault with its injection instant.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires on the sim clock.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A structurally invalid [`FaultSchedule`], detected by
/// [`FaultSchedule::validate`] (which `World::install_faults` runs before
/// accepting the schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScheduleError {
    /// A `*_between` builder was given a window that ends before it
    /// starts.
    InvertedWindow {
        /// Which fault family the window belongs to.
        kind: &'static str,
        /// The window's start.
        start: SimTime,
        /// The (earlier) end.
        end: SimTime,
    },
    /// Two crash windows of the same service overlap: the second crash
    /// would fire while the first one's replica is still down (or at the
    /// very same instant), double-killing capacity the schedule's author
    /// almost certainly did not intend.
    OverlappingCrashWindows {
        /// The doubly-crashed service.
        service: ServiceId,
        /// The earlier `[crash, restart]` window.
        first: (SimTime, SimTime),
        /// The overlapping later window.
        second: (SimTime, SimTime),
    },
    /// Two telemetry blackout windows overlap (or touch). The world keeps
    /// a single blackout state, so the first window's end would cut the
    /// second window short — found by the scenario fuzzer and rejected
    /// here rather than silently mis-modelled.
    OverlappingBlackoutWindows {
        /// The earlier `[start, end]` window.
        first: (SimTime, SimTime),
        /// The overlapping later window.
        second: (SimTime, SimTime),
    },
    /// Two CPU-pressure windows on the same node overlap (or touch). The
    /// per-node pressure factor is a single scalar, so the first window's
    /// end would lift the second window's pressure early.
    OverlappingPressureWindows {
        /// The doubly-pressured node.
        node: NodeId,
        /// The earlier `[start, end]` window.
        first: (SimTime, SimTime),
        /// The overlapping later window.
        second: (SimTime, SimTime),
    },
    /// A fault window extends past the run horizon given to
    /// [`FaultSchedule::validate_within`]: the fault would fire but its
    /// end (restart, pressure lift, blackout end) would never be applied,
    /// leaving the run in a half-faulted state the schedule's author
    /// cannot have reasoned about.
    WindowBeyondHorizon {
        /// Which fault family the window belongs to.
        kind: &'static str,
        /// The window's start.
        start: SimTime,
        /// The window's end, past the horizon.
        end: SimTime,
        /// The run horizon.
        horizon: SimTime,
    },
}

impl fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultScheduleError::InvertedWindow { kind, start, end } => write!(
                f,
                "inverted {kind} window: ends at {} ns before starting at {} ns",
                end.as_nanos(),
                start.as_nanos()
            ),
            FaultScheduleError::OverlappingCrashWindows {
                service,
                first,
                second,
            } => write!(
                f,
                "overlapping crash windows on {service}: [{}, {}] ns and [{}, {}] ns",
                first.0.as_nanos(),
                first.1.as_nanos(),
                second.0.as_nanos(),
                second.1.as_nanos()
            ),
            FaultScheduleError::OverlappingBlackoutWindows { first, second } => write!(
                f,
                "overlapping telemetry blackout windows: [{}, {}] ns and [{}, {}] ns",
                first.0.as_nanos(),
                first.1.as_nanos(),
                second.0.as_nanos(),
                second.1.as_nanos()
            ),
            FaultScheduleError::OverlappingPressureWindows {
                node,
                first,
                second,
            } => write!(
                f,
                "overlapping cpu-pressure windows on node {}: [{}, {}] ns and [{}, {}] ns",
                node.0,
                first.0.as_nanos(),
                first.1.as_nanos(),
                second.0.as_nanos(),
                second.1.as_nanos()
            ),
            FaultScheduleError::WindowBeyondHorizon {
                kind,
                start,
                end,
                horizon,
            } => write!(
                f,
                "{kind} window [{}, {}] ns extends past the run horizon {} ns",
                start.as_nanos(),
                end.as_nanos(),
                horizon.as_nanos()
            ),
        }
    }
}

impl std::error::Error for FaultScheduleError {}

/// A deterministic, sim-clock-driven schedule of fault events.
///
/// # Example
///
/// ```
/// use microsim::{BlackoutMode, FaultSchedule};
/// use cluster::NodeId;
/// use sim_core::{SimDuration, SimTime};
/// use telemetry::ServiceId;
///
/// let schedule = FaultSchedule::new()
///     .crash(SimTime::from_secs(60), ServiceId(1), Some(SimDuration::from_secs(10)))
///     .cpu_pressure(SimTime::from_secs(120), NodeId(0), 0.5, SimDuration::from_secs(30))
///     .telemetry_blackout(SimTime::from_secs(120), BlackoutMode::Drop,
///                         SimDuration::from_secs(30));
/// assert_eq!(schedule.events().len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    /// Raw `(start, end, kind)` windows recorded by the `*_between`
    /// builders, kept verbatim (no saturation) so [`FaultSchedule::validate`]
    /// can reject inversions the duration-form events cannot express.
    windows: Vec<(SimTime, SimTime, &'static str)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds a replica crash at `at`, optionally restarted `restart_after`
    /// later.
    pub fn crash(
        mut self,
        at: SimTime,
        service: ServiceId,
        restart_after: Option<SimDuration>,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::ReplicaCrash {
                service,
                restart_after,
            },
        });
        self
    }

    /// Adds a CPU-pressure window on `node` starting at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn cpu_pressure(
        mut self,
        at: SimTime,
        node: NodeId,
        factor: f64,
        duration: SimDuration,
    ) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0 && factor.is_finite(),
            "pressure factor must be in (0, 1]"
        );
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::CpuPressure {
                node,
                factor,
                duration,
            },
        });
        self
    }

    /// Adds a telemetry blackout window starting at `at`.
    pub fn telemetry_blackout(
        mut self,
        at: SimTime,
        mode: BlackoutMode,
        duration: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::TelemetryBlackout { mode, duration },
        });
        self
    }

    /// Adds a partition window between `a` and `b` starting at `at`.
    pub fn partition(
        mut self,
        at: SimTime,
        a: ServiceId,
        b: ServiceId,
        duration: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Partition { a, b, duration },
        });
        self
    }

    /// Adds a partition window between `a` and `b` spanning `[at, until]`.
    /// An inverted window (`until < at`) is recorded but rejected by
    /// [`FaultSchedule::validate`].
    pub fn partition_between(
        mut self,
        at: SimTime,
        until: SimTime,
        a: ServiceId,
        b: ServiceId,
    ) -> Self {
        self.windows.push((at, until, "partition"));
        self.partition(at, a, b, until.saturating_since(at))
    }

    /// Adds a slow-link window between `a` and `b` starting at `at`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn slow_link(
        mut self,
        at: SimTime,
        a: ServiceId,
        b: ServiceId,
        factor: f64,
        duration: SimDuration,
    ) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "slow-link factor must be positive and finite"
        );
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::LinkSlow {
                a,
                b,
                factor,
                duration,
            },
        });
        self
    }

    /// Adds a crash at `at` whose replacement arrives at `until`. An
    /// inverted window (`until < at`) is recorded but rejected by
    /// [`FaultSchedule::validate`].
    pub fn crash_between(mut self, at: SimTime, until: SimTime, service: ServiceId) -> Self {
        self.windows.push((at, until, "crash"));
        self.crash(at, service, Some(until.saturating_since(at)))
    }

    /// Adds a CPU-pressure window on `node` spanning `[at, until]`. An
    /// inverted window (`until < at`) is recorded but rejected by
    /// [`FaultSchedule::validate`].
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn cpu_pressure_between(
        mut self,
        at: SimTime,
        until: SimTime,
        node: NodeId,
        factor: f64,
    ) -> Self {
        self.windows.push((at, until, "cpu-pressure"));
        self.cpu_pressure(at, node, factor, until.saturating_since(at))
    }

    /// Adds a telemetry blackout spanning `[at, until]`. An inverted
    /// window (`until < at`) is recorded but rejected by
    /// [`FaultSchedule::validate`].
    pub fn telemetry_blackout_between(
        mut self,
        at: SimTime,
        until: SimTime,
        mode: BlackoutMode,
    ) -> Self {
        self.windows.push((at, until, "telemetry-blackout"));
        self.telemetry_blackout(at, mode, until.saturating_since(at))
    }

    /// Checks the schedule for structural mistakes: inverted `*_between`
    /// windows, and overlapping crash windows on the same service,
    /// overlapping telemetry blackout windows, or overlapping CPU-pressure
    /// windows on the same node. Run automatically by
    /// `World::install_faults`.
    ///
    /// The overlap rules all exist for the same reason: each of these
    /// fault families is applied through a single piece of world state (a
    /// downed replica, the global blackout flag, a per-node pressure
    /// scalar), so a second overlapping window would be silently truncated
    /// or double-applied instead of composing.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultScheduleError`] found.
    pub fn validate(&self) -> Result<(), FaultScheduleError> {
        for &(start, end, kind) in &self.windows {
            if end < start {
                return Err(FaultScheduleError::InvertedWindow { kind, start, end });
            }
        }
        // A crash window spans [at, at + restart_after] (a restart-less
        // crash is the degenerate instant window [at, at]). Two windows on
        // the same service may not overlap — the second would fire while
        // the first replica is still down.
        let mut crashes: Vec<(ServiceId, SimTime, SimTime)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::ReplicaCrash {
                    service,
                    restart_after,
                } => Some((
                    service,
                    e.at,
                    e.at + restart_after.unwrap_or(SimDuration::ZERO),
                )),
                _ => None,
            })
            .collect();
        crashes.sort_unstable();
        for pair in crashes.windows(2) {
            let (sa, a_start, a_end) = pair[0];
            let (sb, b_start, b_end) = pair[1];
            if sa == sb && b_start <= a_end {
                return Err(FaultScheduleError::OverlappingCrashWindows {
                    service: sa,
                    first: (a_start, a_end),
                    second: (b_start, b_end),
                });
            }
        }
        // The blackout flag is global: overlapping (or touching) windows
        // would end each other early.
        let mut blackouts: Vec<(SimTime, SimTime)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::TelemetryBlackout { duration, .. } => Some((e.at, e.at + duration)),
                _ => None,
            })
            .collect();
        blackouts.sort_unstable();
        for pair in blackouts.windows(2) {
            if pair[1].0 <= pair[0].1 {
                return Err(FaultScheduleError::OverlappingBlackoutWindows {
                    first: pair[0],
                    second: pair[1],
                });
            }
        }
        // The pressure factor is one scalar per node: same rule, per node.
        let mut pressures: Vec<(u32, SimTime, SimTime)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::CpuPressure { node, duration, .. } => {
                    Some((node.0, e.at, e.at + duration))
                }
                _ => None,
            })
            .collect();
        pressures.sort_unstable();
        for pair in pressures.windows(2) {
            let (na, a_start, a_end) = pair[0];
            let (nb, b_start, b_end) = pair[1];
            if na == nb && b_start <= a_end {
                return Err(FaultScheduleError::OverlappingPressureWindows {
                    node: NodeId(na),
                    first: (a_start, a_end),
                    second: (b_start, b_end),
                });
            }
        }
        Ok(())
    }

    /// [`FaultSchedule::validate`] plus the horizon rule: every fault must
    /// fire strictly before `horizon`, and every window it opens (crash →
    /// restart, pressure, blackout, partition, slow link) must close at or
    /// before `horizon` — a window straddling the end of the run would
    /// leave the world half-faulted with no record of the end ever being
    /// applied. This is the single gate a scenario generator should trust:
    /// a schedule that passes for its run horizon must neither panic the
    /// world nor trip the audit layer.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultScheduleError`] found.
    pub fn validate_within(&self, horizon: SimTime) -> Result<(), FaultScheduleError> {
        self.validate()?;
        for e in &self.events {
            let (kind, end) = match e.kind {
                FaultKind::ReplicaCrash { restart_after, .. } => {
                    ("crash", e.at + restart_after.unwrap_or(SimDuration::ZERO))
                }
                FaultKind::CpuPressure { duration, .. } => ("cpu-pressure", e.at + duration),
                FaultKind::TelemetryBlackout { duration, .. } => {
                    ("telemetry-blackout", e.at + duration)
                }
                FaultKind::Partition { duration, .. } => ("partition", e.at + duration),
                FaultKind::LinkSlow { duration, .. } => ("slow-link", e.at + duration),
            };
            if e.at >= horizon || end > horizon {
                return Err(FaultScheduleError::WindowBeyondHorizon {
                    kind,
                    start: e.at,
                    end,
                    horizon,
                });
            }
        }
        Ok(())
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn valid_schedule_passes_validation() {
        let s = FaultSchedule::new()
            .crash(t(10), ServiceId(1), Some(SimDuration::from_secs(5)))
            .crash(t(16), ServiceId(1), None)
            .crash(t(12), ServiceId(2), Some(SimDuration::from_secs(60)))
            .cpu_pressure_between(t(20), t(30), NodeId(0), 0.5)
            .partition_between(t(40), t(50), ServiceId(1), ServiceId(2))
            .telemetry_blackout_between(t(40), t(45), BlackoutMode::Lag)
            .slow_link(
                t(60),
                ServiceId(0),
                ServiceId(1),
                4.0,
                SimDuration::from_secs(5),
            );
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn inverted_window_is_rejected() {
        let s = FaultSchedule::new().partition_between(t(50), t(40), ServiceId(0), ServiceId(1));
        assert_eq!(
            s.validate(),
            Err(FaultScheduleError::InvertedWindow {
                kind: "partition",
                start: t(50),
                end: t(40),
            })
        );
        let s = FaultSchedule::new().crash_between(t(9), t(8), ServiceId(3));
        assert!(matches!(
            s.validate(),
            Err(FaultScheduleError::InvertedWindow { kind: "crash", .. })
        ));
        let s = FaultSchedule::new().cpu_pressure_between(t(2), t(1), NodeId(0), 1.0);
        assert!(matches!(
            s.validate(),
            Err(FaultScheduleError::InvertedWindow {
                kind: "cpu-pressure",
                ..
            })
        ));
        let s = FaultSchedule::new().telemetry_blackout_between(t(2), t(1), BlackoutMode::Drop);
        assert!(matches!(
            s.validate(),
            Err(FaultScheduleError::InvertedWindow {
                kind: "telemetry-blackout",
                ..
            })
        ));
    }

    #[test]
    fn overlapping_crash_windows_on_one_service_are_rejected() {
        // Second crash fires while the first replica is still down.
        let s = FaultSchedule::new()
            .crash(t(10), ServiceId(1), Some(SimDuration::from_secs(10)))
            .crash(t(15), ServiceId(1), Some(SimDuration::from_secs(10)));
        assert_eq!(
            s.validate(),
            Err(FaultScheduleError::OverlappingCrashWindows {
                service: ServiceId(1),
                first: (t(10), t(20)),
                second: (t(15), t(25)),
            })
        );
        // Same instant, even without restarts, is a double-kill.
        let s =
            FaultSchedule::new()
                .crash(t(10), ServiceId(1), None)
                .crash(t(10), ServiceId(1), None);
        assert!(matches!(
            s.validate(),
            Err(FaultScheduleError::OverlappingCrashWindows { .. })
        ));
        // Overlap across *different* services is fine.
        let s = FaultSchedule::new()
            .crash(t(10), ServiceId(1), Some(SimDuration::from_secs(10)))
            .crash(t(15), ServiceId(2), Some(SimDuration::from_secs(10)));
        assert_eq!(s.validate(), Ok(()));
        // Back-to-back (restart strictly before the next crash) is fine.
        let s = FaultSchedule::new()
            .crash(t(10), ServiceId(1), Some(SimDuration::from_secs(4)))
            .crash(t(15), ServiceId(1), None);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn overlapping_blackout_windows_are_rejected() {
        // The blackout flag is global state: touching windows end each other
        // early, so even mixed modes may not overlap.
        let s = FaultSchedule::new()
            .telemetry_blackout_between(t(10), t(20), BlackoutMode::Drop)
            .telemetry_blackout_between(t(15), t(25), BlackoutMode::Lag);
        assert_eq!(
            s.validate(),
            Err(FaultScheduleError::OverlappingBlackoutWindows {
                first: (t(10), t(20)),
                second: (t(15), t(25)),
            })
        );
        // Disjoint windows are fine.
        let s = FaultSchedule::new()
            .telemetry_blackout_between(t(10), t(20), BlackoutMode::Drop)
            .telemetry_blackout_between(t(21), t(25), BlackoutMode::Lag);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn overlapping_pressure_windows_on_one_node_are_rejected() {
        let s = FaultSchedule::new()
            .cpu_pressure_between(t(10), t(20), NodeId(3), 0.5)
            .cpu_pressure_between(t(20), t(30), NodeId(3), 0.25);
        assert_eq!(
            s.validate(),
            Err(FaultScheduleError::OverlappingPressureWindows {
                node: NodeId(3),
                first: (t(10), t(20)),
                second: (t(20), t(30)),
            })
        );
        // Overlap across different nodes is fine.
        let s = FaultSchedule::new()
            .cpu_pressure_between(t(10), t(20), NodeId(3), 0.5)
            .cpu_pressure_between(t(15), t(25), NodeId(4), 0.5);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn windows_straddling_the_horizon_are_rejected() {
        let horizon = t(100);
        // Entirely inside: fine.
        let s = FaultSchedule::new().crash(t(10), ServiceId(1), Some(SimDuration::from_secs(5)));
        assert_eq!(s.validate_within(horizon), Ok(()));
        // Restart lands past the horizon: the service would stay down with
        // no restart ever applied.
        let s = FaultSchedule::new().crash(t(90), ServiceId(1), Some(SimDuration::from_secs(20)));
        assert_eq!(
            s.validate_within(horizon),
            Err(FaultScheduleError::WindowBeyondHorizon {
                kind: "crash",
                start: t(90),
                end: t(110),
                horizon,
            })
        );
        // Fault firing at or after the horizon never runs at all.
        let s = FaultSchedule::new().crash(t(100), ServiceId(1), None);
        assert!(matches!(
            s.validate_within(horizon),
            Err(FaultScheduleError::WindowBeyondHorizon { kind: "crash", .. })
        ));
        // Window-style faults straddling the end are rejected too.
        let s = FaultSchedule::new().partition_between(t(95), t(105), ServiceId(0), ServiceId(1));
        assert!(matches!(
            s.validate_within(horizon),
            Err(FaultScheduleError::WindowBeyondHorizon {
                kind: "partition",
                ..
            })
        ));
        // A window closing exactly at the horizon is allowed.
        let s = FaultSchedule::new().cpu_pressure_between(t(90), t(100), NodeId(0), 0.5);
        assert_eq!(s.validate_within(horizon), Ok(()));
        // validate_within still applies the structural checks.
        let s = FaultSchedule::new()
            .crash(t(10), ServiceId(1), Some(SimDuration::from_secs(10)))
            .crash(t(15), ServiceId(1), None);
        assert!(matches!(
            s.validate_within(horizon),
            Err(FaultScheduleError::OverlappingCrashWindows { .. })
        ));
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = FaultScheduleError::InvertedWindow {
            kind: "partition",
            start: t(2),
            end: t(1),
        };
        assert!(e.to_string().contains("inverted partition window"));
        let e = FaultScheduleError::OverlappingCrashWindows {
            service: ServiceId(4),
            first: (t(1), t(2)),
            second: (t(2), t(3)),
        };
        assert!(e.to_string().contains("svc-4"));
    }
}
