//! Deterministic fault injection: timed crash, pressure and blackout events.
//!
//! A [`FaultSchedule`] is a list of sim-clock-stamped fault events built
//! before a run and installed with [`World::install_faults`]. Each event
//! rides the world's ordinary event queue, so faults interleave with
//! arrivals and completions in a fully deterministic order — the same seed
//! and schedule always reproduce the same run, byte for byte, regardless of
//! host parallelism.
//!
//! Three fault families cover the paper's unmodelled failure regimes:
//!
//! * **Replica crash** ([`FaultKind::ReplicaCrash`]): abruptly kills one
//!   ready replica of a service (requests with open frames on it are
//!   aborted, see [`World::fail_replica`]) and optionally restarts it after
//!   a delay via [`World::recover_replica`] — the restarted pod pays normal
//!   container start-up before taking traffic.
//! * **Node CPU pressure** ([`FaultKind::CpuPressure`]): for a window,
//!   every replica placed on the node delivers only `factor` of its CPU
//!   limit (noisy neighbours / host throttling), implemented by
//!   [`cluster::PsCpu::set_pressure`]. Replicas scheduled onto the node
//!   mid-window inherit the pressure; the window's end restores full
//!   capacity.
//! * **Telemetry blackout** ([`FaultKind::TelemetryBlackout`]): the
//!   monitoring pipeline goes dark for a window. In [`BlackoutMode::Drop`]
//!   per-replica completion samples and warehouse traces in the window are
//!   lost; in [`BlackoutMode::Lag`] they are buffered and delivered, in
//!   order, when the window ends. Requests themselves are unaffected — only
//!   the controller's view of them is — and the end-to-end client log keeps
//!   recording, since it models the experiment harness rather than the
//!   cluster's monitoring stack.
//!
//! [`World::install_faults`]: crate::World::install_faults
//! [`World::fail_replica`]: crate::World::fail_replica
//! [`World::recover_replica`]: crate::World::recover_replica

use cluster::NodeId;
use sim_core::{SimDuration, SimTime};
use telemetry::ServiceId;

/// What happens to telemetry samples produced during a blackout window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlackoutMode {
    /// Samples in the window are lost.
    Drop,
    /// Samples are buffered and delivered in order when the window ends
    /// (a lagging collector rather than a dead one).
    Lag,
}

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Kill one ready replica of `service` (the longest-lived one, for
    /// determinism); optionally start a replacement after `restart_after`.
    ReplicaCrash {
        /// The service losing a replica.
        service: ServiceId,
        /// Delay until a replacement pod is created (`None`: no restart).
        restart_after: Option<SimDuration>,
    },
    /// Shrink the CPU actually deliverable on `node` to `factor` of each
    /// hosted replica's limit for `duration`.
    CpuPressure {
        /// The afflicted node.
        node: NodeId,
        /// Fraction of the limit still deliverable, in `(0, 1]`.
        factor: f64,
        /// How long the pressure window lasts.
        duration: SimDuration,
    },
    /// Withhold telemetry samples for `duration`.
    TelemetryBlackout {
        /// Whether withheld samples are lost or delivered late.
        mode: BlackoutMode,
        /// How long the blackout window lasts.
        duration: SimDuration,
    },
}

/// A fault with its injection instant.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires on the sim clock.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, sim-clock-driven schedule of fault events.
///
/// # Example
///
/// ```
/// use microsim::{BlackoutMode, FaultSchedule};
/// use cluster::NodeId;
/// use sim_core::{SimDuration, SimTime};
/// use telemetry::ServiceId;
///
/// let schedule = FaultSchedule::new()
///     .crash(SimTime::from_secs(60), ServiceId(1), Some(SimDuration::from_secs(10)))
///     .cpu_pressure(SimTime::from_secs(120), NodeId(0), 0.5, SimDuration::from_secs(30))
///     .telemetry_blackout(SimTime::from_secs(120), BlackoutMode::Drop,
///                         SimDuration::from_secs(30));
/// assert_eq!(schedule.events().len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds a replica crash at `at`, optionally restarted `restart_after`
    /// later.
    pub fn crash(
        mut self,
        at: SimTime,
        service: ServiceId,
        restart_after: Option<SimDuration>,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::ReplicaCrash {
                service,
                restart_after,
            },
        });
        self
    }

    /// Adds a CPU-pressure window on `node` starting at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn cpu_pressure(
        mut self,
        at: SimTime,
        node: NodeId,
        factor: f64,
        duration: SimDuration,
    ) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0 && factor.is_finite(),
            "pressure factor must be in (0, 1]"
        );
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::CpuPressure {
                node,
                factor,
                duration,
            },
        });
        self
    }

    /// Adds a telemetry blackout window starting at `at`.
    pub fn telemetry_blackout(
        mut self,
        at: SimTime,
        mode: BlackoutMode,
        duration: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::TelemetryBlackout { mode, duration },
        });
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}
