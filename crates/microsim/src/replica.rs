//! Replica (pod) runtime state: CPU, thread gate, connection pools, samplers.

use crate::request::FrameIdx;
use cluster::{CpuJobId, Millicores, PsCpu};
use sim_core::stats::P2Quantile;
use sim_core::{SimDuration, SlabKey};
use std::collections::{BTreeMap, HashMap, VecDeque};
use telemetry::{CompletionLog, ConcurrencyTracker, ReplicaId, ServiceId};

/// Lifecycle of a replica.
///
/// Stored outside [`Replica`], in the world's dense state array, so the
/// load balancer's readiness scans walk a flat `Vec<ReplicaState>` instead
/// of dereferencing whole replica structs (struct-of-arrays layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Created but not yet ready (container starting); receives no traffic.
    Starting,
    /// Serving traffic.
    Ready,
    /// Excluded from load balancing; will be removed once idle.
    Draining,
}

/// The thread pool of one replica: a concurrency gate with a FIFO accept
/// queue. `active` counts requests holding a thread (processing or waiting
/// on downstream calls), which is what the paper plots as "Running Threads".
#[derive(Debug, Clone)]
pub(crate) struct ThreadGate {
    pub limit: usize,
    pub active: usize,
    pub queue: VecDeque<(SlabKey, FrameIdx)>,
}

impl ThreadGate {
    fn new(limit: usize) -> Self {
        ThreadGate {
            limit,
            active: 0,
            queue: VecDeque::new(),
        }
    }

    /// Tries to take a thread immediately; `false` means the caller must
    /// queue.
    pub fn try_acquire(&mut self) -> bool {
        if self.active < self.limit {
            self.active += 1;
            true
        } else {
            false
        }
    }

    /// Releases a thread. The caller is responsible for admitting the next
    /// queued request (if any) so it can do the bookkeeping that goes with it.
    pub fn release(&mut self) {
        debug_assert!(self.active > 0, "thread release without acquire");
        self.active = self.active.saturating_sub(1);
    }

    /// Pops the next queued request if a thread is free.
    pub fn admit_next(&mut self) -> Option<(SlabKey, FrameIdx)> {
        if self.active < self.limit {
            let next = self.queue.pop_front()?;
            self.active += 1;
            Some(next)
        } else {
            None
        }
    }
}

/// A waiting downstream call: which frame wants to talk to which target,
/// and which of its `calls` entries records the call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConnWaiter {
    pub request: SlabKey,
    pub frame: FrameIdx,
    pub call_idx: usize,
}

/// A client-side connection pool from this replica toward one target
/// service: a concurrency gate over outstanding calls.
#[derive(Debug, Clone)]
pub(crate) struct ConnPool {
    pub limit: usize,
    pub in_use: usize,
    pub waiters: VecDeque<ConnWaiter>,
}

impl ConnPool {
    fn new(limit: usize) -> Self {
        ConnPool {
            limit,
            in_use: 0,
            waiters: VecDeque::new(),
        }
    }

    pub fn try_acquire(&mut self) -> bool {
        if self.in_use < self.limit {
            self.in_use += 1;
            true
        } else {
            false
        }
    }

    pub fn release(&mut self) {
        debug_assert!(self.in_use > 0, "connection release without acquire");
        self.in_use = self.in_use.saturating_sub(1);
    }

    /// Pops the next waiter if a connection is free, keeping it accounted.
    pub fn grant_next(&mut self) -> Option<ConnWaiter> {
        if self.in_use < self.limit {
            let w = self.waiters.pop_front()?;
            self.in_use += 1;
            Some(w)
        } else {
            None
        }
    }
}

/// One replica (pod) of a service.
///
/// Hot scheduling state (the [`ReplicaState`]) lives in the world's dense
/// array; what remains here is the per-replica machinery the event handlers
/// touch once a replica has been chosen.
pub(crate) struct Replica {
    pub id: ReplicaId,
    pub service: ServiceId,
    pub cpu: PsCpu,
    pub threads: ThreadGate,
    /// Connection pools toward limited targets (absent = unlimited).
    pub conns: BTreeMap<ServiceId, ConnPool>,
    /// Maps running CPU jobs back to the frame that issued them.
    pub jobs: HashMap<CpuJobId, (SlabKey, FrameIdx)>,
    /// In-service concurrency sampler (SCG's `Q`).
    pub concurrency: ConcurrencyTracker,
    /// Span completions at this replica (SCG's goodput source).
    pub completions: CompletionLog,
    /// Live p99 of this replica's span response times (a streaming gauge, as
    /// a production telemetry agent would export).
    pub span_p99: P2Quantile,
}

impl Replica {
    pub fn new(
        id: ReplicaId,
        service: ServiceId,
        cpu_limit: Millicores,
        csw_overhead: f64,
        thread_limit: usize,
        conn_limits: &BTreeMap<ServiceId, usize>,
        metrics_horizon: SimDuration,
    ) -> Self {
        Replica {
            id,
            service,
            cpu: PsCpu::new(cpu_limit, csw_overhead),
            threads: ThreadGate::new(thread_limit),
            conns: conn_limits
                .iter()
                .map(|(&t, &l)| (t, ConnPool::new(l)))
                .collect(),
            jobs: HashMap::new(),
            concurrency: ConcurrencyTracker::new(metrics_horizon),
            completions: CompletionLog::new(metrics_horizon),
            span_p99: P2Quantile::new(0.99),
        }
    }

    /// Requests currently holding a thread plus queued for one.
    pub fn outstanding(&self) -> usize {
        self.threads.active + self.threads.queue.len()
    }

    /// True when nothing is in flight (safe to remove while draining).
    pub fn is_idle(&self) -> bool {
        self.threads.active == 0 && self.threads.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    fn key(n: usize) -> SlabKey {
        // Mint distinct keys the way the world does: via a slab.
        let mut slab = sim_core::Slab::new();
        (0..=n).map(|i| slab.insert(i)).last().unwrap()
    }

    fn replica() -> Replica {
        Replica::new(
            ReplicaId(0),
            ServiceId(0),
            Millicores::from_cores(2),
            0.0,
            2,
            &BTreeMap::from([(ServiceId(9), 1)]),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn thread_gate_limits_and_queues() {
        let mut g = ThreadGate::new(2);
        assert!(g.try_acquire());
        assert!(g.try_acquire());
        assert!(!g.try_acquire());
        g.queue.push_back((key(1), 0));
        assert!(g.admit_next().is_none(), "no free thread yet");
        g.release();
        let (req, _) = g.admit_next().unwrap();
        assert_eq!(req, key(1));
        assert_eq!(g.active, 2);
    }

    #[test]
    fn conn_pool_grants_fifo() {
        let mut p = ConnPool::new(1);
        assert!(p.try_acquire());
        assert!(!p.try_acquire());
        p.waiters.push_back(ConnWaiter {
            request: key(1),
            frame: 0,
            call_idx: 0,
        });
        p.waiters.push_back(ConnWaiter {
            request: key(2),
            frame: 0,
            call_idx: 0,
        });
        assert!(p.grant_next().is_none());
        p.release();
        assert_eq!(p.grant_next().unwrap().request, key(1));
        assert!(p.grant_next().is_none(), "pool full again");
    }

    #[test]
    fn replica_idleness() {
        let mut r = replica();
        assert!(r.is_idle());
        r.threads.try_acquire();
        assert!(!r.is_idle());
        assert_eq!(r.outstanding(), 1);
    }

    #[test]
    fn busy_time_accumulates_on_the_cpu() {
        let mut r = replica();
        // One job on a 2-core pod: busy = 1 core.
        r.cpu.add(SimTime::ZERO, SimDuration::from_millis(100));
        r.cpu.advance(SimTime::from_millis(10));
        assert!((r.cpu.busy_core_nanos() - 10e6).abs() < 1.0);
    }
}
