//! Discrete-event microservice cluster simulator.
//!
//! This crate is the substitute for the paper's physical testbed (VMware +
//! Kubernetes + Sock Shop / Social Network containers). It simulates:
//!
//! * **services** with per-request-type execution profiles (compute stages
//!   and synchronous downstream calls, sequential or fanned out);
//! * **replicas (pods)** with a CPU limit enforced by a processor-sharing
//!   CPU (see [`cluster::PsCpu`]), a bounded **thread pool** (requests beyond
//!   it queue FIFO), and client-side **connection pools** toward downstream
//!   services (calls beyond the limit block holding their thread);
//! * **load balancing** across replicas, container start-up delay, graceful
//!   draining and abrupt failure;
//! * **telemetry**: every request produces a span tree ingested by the
//!   trace warehouse, and every replica feeds concurrency/completion
//!   samplers — the inputs of the SCG model;
//! * **fault injection**: deterministic sim-clock schedules of replica
//!   crashes (with restart), node CPU-pressure windows and telemetry
//!   blackouts (see [`FaultSchedule`]), with every drop attributed to a
//!   [`DropReason`].
//!
//! The paper's phenomena emerge from these mechanics rather than being
//! scripted: under-allocated pools create queueing delay, over-allocated
//! pools oversubscribe the CPU and spread the latency distribution, and the
//! goodput knee moves with CPU limits, deadlines and request weight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod faults;
mod replica;
mod request;
mod shard;
mod world;

pub use config::{Behavior, LbPolicy, RequestTypeSpec, ServiceSpec, Stage, WorldConfig};
pub use faults::{BlackoutMode, FaultEvent, FaultKind, FaultSchedule, FaultScheduleError};
pub use shard::ShardError;
pub use world::{Completion, DropBreakdown, DropReason, TelemetrySnapshot, World};

#[cfg(test)]
mod tests;
