//! Behavioural tests of the simulator: request lifecycle, soft-resource
//! gating, scaling, failure injection, determinism and conservation laws.

use crate::{
    Behavior, BlackoutMode, DropReason, FaultSchedule, LbPolicy, ServiceSpec, Stage, World,
    WorldConfig,
};
use cluster::Millicores;
use proptest::prelude::*;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use telemetry::{RequestTypeId, ServiceId};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

/// A config with zero network delay and instant start-up: makes timing
/// arithmetic in tests exact.
fn exact_config() -> WorldConfig {
    WorldConfig {
        net_delay: Dist::constant_us(0),
        replica_startup: Dist::constant_us(0),
        ..WorldConfig::default()
    }
}

/// One service, one ready replica, constant `demand_ms` per request.
fn single_service_world(
    demand_ms: u64,
    threads: usize,
    cores: u32,
    kappa: f64,
) -> (World, RequestTypeId, ServiceId) {
    let mut w = World::new(exact_config(), SimRng::seed_from(7));
    let rt = RequestTypeId(0);
    let svc = w.add_service(
        ServiceSpec::new("api")
            .cpu(Millicores::from_cores(cores))
            .threads(threads)
            .csw(kappa)
            .on(rt, Behavior::leaf(Dist::constant_ms(demand_ms))),
    );
    let rt = w.add_request_type("GET /", svc);
    let pod = w.add_replica(svc).unwrap();
    w.make_ready(pod);
    (w, rt, svc)
}

#[test]
fn single_request_takes_its_demand() {
    let (mut w, rt, _) = single_service_world(5, 4, 4, 0.0);
    w.inject_at(t(10), rt);
    let done = w.run_until(t(1000));
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].response_time.as_millis(), 5);
    assert_eq!(done[0].completed, t(15));
}

#[test]
fn thread_pool_of_one_serialises() {
    let (mut w, rt, _) = single_service_world(10, 1, 4, 0.0);
    w.inject_at(t(0), rt);
    w.inject_at(t(0), rt);
    let done = w.run_until(t(1000));
    assert_eq!(done.len(), 2);
    let mut rts: Vec<u64> = done.iter().map(|c| c.response_time.as_millis()).collect();
    rts.sort_unstable();
    assert_eq!(rts, [10, 20], "second request queues behind the first");
}

#[test]
fn enough_threads_and_cores_run_in_parallel() {
    let (mut w, rt, _) = single_service_world(10, 2, 2, 0.0);
    w.inject_at(t(0), rt);
    w.inject_at(t(0), rt);
    let done = w.run_until(t(1000));
    assert!(done.iter().all(|c| c.response_time.as_millis() == 10));
}

#[test]
fn processor_sharing_when_threads_exceed_cores() {
    let (mut w, rt, _) = single_service_world(10, 2, 1, 0.0);
    w.inject_at(t(0), rt);
    w.inject_at(t(0), rt);
    let done = w.run_until(t(1000));
    // Both share one core → both finish at 20 ms.
    assert!(done.iter().all(|c| c.response_time.as_millis() == 20));
}

#[test]
fn oversubscription_with_overhead_extends_makespan() {
    let makespan = |threads: usize, kappa: f64| {
        let (mut w, rt, _) = single_service_world(10, threads, 1, kappa);
        for _ in 0..20 {
            w.inject_at(t(0), rt);
        }
        let done = w.run_until(t(60_000));
        assert_eq!(done.len(), 20);
        done.iter().map(|c| c.completed).max().unwrap()
    };
    let serial = makespan(1, 0.1);
    let oversub = makespan(20, 0.1);
    assert_eq!(serial, t(200), "sequential: 20 × 10 ms");
    // 20 concurrent jobs on 1 core with κ = 0.1 → up to 1 + 0.1·√19 ≈ 1.44×
    // slower while fully oversubscribed.
    assert!(
        oversub > t(250),
        "oversubscribed makespan {oversub} should exceed serial"
    );
}

/// front(1 ms) → backend(8 ms) → front(1 ms): checks span decomposition.
fn tiered_world() -> (World, RequestTypeId, ServiceId, ServiceId) {
    let mut w = World::new(exact_config(), SimRng::seed_from(3));
    let rt = RequestTypeId(0);
    let backend_id = ServiceId(1); // will be the second add_service call
    let front = w.add_service(ServiceSpec::new("front").cpu(Millicores::from_cores(2)).on(
        rt,
        Behavior::tier(Dist::constant_ms(1), backend_id, Dist::constant_ms(1)),
    ));
    let backend = w.add_service(
        ServiceSpec::new("backend")
            .cpu(Millicores::from_cores(2))
            .on(rt, Behavior::leaf(Dist::constant_ms(8))),
    );
    assert_eq!(backend, backend_id);
    let rt = w.add_request_type("GET /tier", front);
    for svc in [front, backend] {
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
    }
    (w, rt, front, backend)
}

#[test]
fn tiered_request_produces_linked_spans() {
    let (mut w, rt, front, backend) = tiered_world();
    w.inject_at(t(0), rt);
    let done = w.run_until(t(1000));
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].response_time.as_millis(), 10); // 1 + 8 + 1
    let trace = w.warehouse().iter().next().expect("trace stored");
    assert_eq!(trace.spans.len(), 2);
    let root = &trace.spans[0];
    let child = &trace.spans[1];
    assert_eq!(root.service, front);
    assert_eq!(child.service, backend);
    assert_eq!(child.parent, Some(root.id));
    assert_eq!(root.children.len(), 1);
    assert_eq!(root.children[0].duration().as_millis(), 8);
    assert_eq!(root.self_time().as_millis(), 2);
    assert_eq!(child.self_time().as_millis(), 8);
}

#[test]
fn parallel_fanout_overlaps_children() {
    let mut w = World::new(exact_config(), SimRng::seed_from(5));
    let rt = RequestTypeId(0);
    let (a_id, b_id) = (ServiceId(1), ServiceId(2));
    let front = w.add_service(
        ServiceSpec::new("front").on(rt, Behavior::new(vec![Stage::fanout(vec![a_id, b_id])])),
    );
    for (name, ms) in [("a", 10), ("b", 30)] {
        w.add_service(
            ServiceSpec::new(name)
                .cpu(Millicores::from_cores(1))
                .on(rt, Behavior::leaf(Dist::constant_ms(ms))),
        );
    }
    let rt = w.add_request_type("fanout", front);
    for svc in [front, a_id, b_id] {
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
    }
    w.inject_at(t(0), rt);
    let done = w.run_until(t(1000));
    // Parallel: bounded by the slower child, not the sum.
    assert_eq!(done[0].response_time.as_millis(), 30);
    let trace = w.warehouse().iter().next().unwrap();
    let path = telemetry::critical_path(trace);
    assert_eq!(
        path.last().unwrap().service,
        b_id,
        "critical path follows slow branch"
    );
}

#[test]
fn connection_pool_of_one_serialises_downstream_calls() {
    let mut w = World::new(exact_config(), SimRng::seed_from(5));
    let rt = RequestTypeId(0);
    let db_id = ServiceId(1);
    let front = w.add_service(
        ServiceSpec::new("front")
            .threads(8)
            .conns(db_id, 1)
            .on(rt, Behavior::new(vec![Stage::call(db_id)])),
    );
    w.add_service(
        ServiceSpec::new("db")
            .cpu(Millicores::from_cores(4))
            .threads(8)
            .on(rt, Behavior::leaf(Dist::constant_ms(10))),
    );
    let rt = w.add_request_type("q", front);
    for svc in [front, db_id] {
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
    }
    for _ in 0..3 {
        w.inject_at(t(0), rt);
    }
    let done = w.run_until(t(1000));
    let mut rts: Vec<u64> = done.iter().map(|c| c.response_time.as_millis()).collect();
    rts.sort_unstable();
    // One connection → db calls run one at a time despite 8 front threads
    // and 4 db cores.
    assert_eq!(rts, [10, 20, 30]);
    // Raising the pool to 3 restores parallelism.
    w.set_conn_limit(front, db_id, 3);
    for _ in 0..3 {
        w.inject_at(t(1000), rt);
    }
    let done = w.run_until(t(2000));
    assert!(done.iter().all(|c| c.response_time.as_millis() == 10));
}

#[test]
fn raising_conn_limit_mid_flight_grants_waiters() {
    let mut w = World::new(exact_config(), SimRng::seed_from(5));
    let rt = RequestTypeId(0);
    let db_id = ServiceId(1);
    let front = w.add_service(
        ServiceSpec::new("front")
            .threads(8)
            .conns(db_id, 1)
            .on(rt, Behavior::new(vec![Stage::call(db_id)])),
    );
    w.add_service(
        ServiceSpec::new("db")
            .cpu(Millicores::from_cores(4))
            .threads(8)
            .on(rt, Behavior::leaf(Dist::constant_ms(100))),
    );
    let rt = w.add_request_type("q", front);
    for svc in [front, db_id] {
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
    }
    for _ in 0..3 {
        w.inject_at(t(0), rt);
    }
    // Let the first call start, then widen the pool while two waiters queue.
    w.run_until(t(50));
    assert_eq!(w.conns_in_use(front, db_id), 1);
    w.set_conn_limit(front, db_id, 3);
    let done = w.run_until(t(1000));
    assert_eq!(done.len(), 3);
    let max_rt = done
        .iter()
        .map(|c| c.response_time.as_millis())
        .max()
        .unwrap();
    // Waiters released at 50 ms finish at 150 ms instead of 300 ms serial.
    assert!(max_rt <= 150, "max rt {max_rt}");
}

#[test]
fn raising_thread_limit_admits_queued_requests() {
    let (mut w, rt, svc) = single_service_world(100, 1, 4, 0.0);
    for _ in 0..3 {
        w.inject_at(t(0), rt);
    }
    w.run_until(t(10));
    assert_eq!(w.running_threads(svc), 1);
    assert_eq!(w.queued_requests(svc), 2);
    w.set_thread_limit(svc, 3);
    w.run_until(t(11));
    assert_eq!(w.running_threads(svc), 3);
    let done = w.run_until(t(1000));
    let max_rt = done
        .iter()
        .map(|c| c.response_time.as_millis())
        .max()
        .unwrap();
    assert!(max_rt <= 210, "queued requests released at 10 ms: {max_rt}");
}

#[test]
fn vertical_scaling_speeds_in_flight_work() {
    let (mut w, rt, svc) = single_service_world(100, 4, 1, 0.0);
    w.inject_at(t(0), rt);
    w.inject_at(t(0), rt);
    w.run_until(t(50)); // both at 0.5 cores: 25 ms of work done each
    w.set_cpu_limit(svc, Millicores::from_cores(2)).unwrap();
    let done = w.run_until(t(1000));
    // Remaining 75 ms at full speed → finish at 125 ms.
    assert!(done.iter().all(|c| c.response_time.as_millis() == 125));
    assert_eq!(w.cpu_limit(svc), Millicores::from_cores(2));
}

#[test]
fn replicas_round_robin_and_drain() {
    let (mut w, rt, svc) = single_service_world(10, 4, 4, 0.0);
    let pod2 = w.add_replica(svc).unwrap();
    w.make_ready(pod2);
    assert_eq!(w.ready_replicas(svc).len(), 2);
    for i in 0..10 {
        w.inject_at(t(i * 20), rt);
    }
    let done = w.run_until(t(1000));
    assert_eq!(done.len(), 10);
    // Round robin: both replicas saw ~half the load.
    let ids = w.ready_replicas(svc);
    for id in &ids {
        assert_eq!(w.completions_of(*id).unwrap().len(), 5);
    }
    // Drain one: it disappears once idle, remaining traffic still served.
    let drained = w.drain_replica(svc, 1).unwrap();
    w.run_until(t(1001));
    assert_eq!(w.ready_replicas(svc).len(), 1);
    assert!(
        w.completions_of(drained).is_none(),
        "drained replica removed"
    );
    w.inject_at(t(1100), rt);
    assert_eq!(w.run_until(t(2000)).len(), 1);
    // min_keep respected.
    assert!(w.drain_replica(svc, 1).is_none());
}

#[test]
fn draining_replica_finishes_in_flight_work() {
    let (mut w, rt, svc) = single_service_world(100, 4, 4, 0.0);
    let pod2 = w.add_replica(svc).unwrap();
    w.make_ready(pod2);
    w.inject_at(t(0), rt); // goes to replica 0
    w.inject_at(t(0), rt); // goes to replica 1
    w.run_until(t(10));
    w.drain_replica(svc, 1).unwrap();
    let done = w.run_until(t(1000));
    assert_eq!(
        done.len(),
        2,
        "in-flight request on draining replica completes"
    );
    assert_eq!(w.ready_replicas(svc).len(), 1);
}

#[test]
fn starting_replicas_take_no_traffic_until_ready() {
    let config = WorldConfig {
        net_delay: Dist::constant_us(0),
        replica_startup: Dist::constant_ms(500),
        ..WorldConfig::default()
    };
    let mut w = World::new(config, SimRng::seed_from(2));
    let rt = RequestTypeId(0);
    let svc = w.add_service(ServiceSpec::new("api").on(rt, Behavior::leaf(Dist::constant_ms(1))));
    let rt = w.add_request_type("r", svc);
    w.add_replica(svc).unwrap(); // ready at 500 ms
    w.inject_at(t(100), rt);
    let done = w.run_until(t(400));
    assert!(done.is_empty());
    assert_eq!(w.dropped(), 1, "request refused while no replica ready");
    w.inject_at(t(600), rt);
    let done = w.run_until(t(1000));
    assert_eq!(done.len(), 1);
}

#[test]
fn failed_replica_aborts_requests_and_recovers() {
    let (mut w, rt, svc) = single_service_world(1_000, 4, 4, 0.0);
    w.inject_at(t(0), rt);
    w.inject_at(t(0), rt);
    w.run_until(t(100));
    let victim = w.ready_replicas(svc)[0];
    w.fail_replica(victim);
    assert_eq!(w.ready_replicas(svc).len(), 0);
    assert_eq!(w.dropped(), 2, "both in-flight requests aborted");
    // Recovery: a fresh replica serves new traffic.
    let pod = w.add_replica(svc).unwrap();
    w.make_ready(pod);
    w.inject_at(t(200), rt);
    let done = w.run_until(t(5000));
    assert_eq!(done.len(), 1);
    assert!(w.is_quiescent());
}

#[test]
fn failure_upstream_of_held_connections_releases_them() {
    // front --conns(1)--> db; kill the db replica mid-call and verify the
    // front's connection slot is reclaimed for later traffic.
    let mut w = World::new(exact_config(), SimRng::seed_from(5));
    let rt = RequestTypeId(0);
    let db_id = ServiceId(1);
    let front = w.add_service(
        ServiceSpec::new("front")
            .threads(4)
            .conns(db_id, 1)
            .on(rt, Behavior::new(vec![Stage::call(db_id)])),
    );
    w.add_service(ServiceSpec::new("db").on(rt, Behavior::leaf(Dist::constant_ms(1_000))));
    let rt = w.add_request_type("q", front);
    let mut pods = Vec::new();
    for svc in [front, db_id] {
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        pods.push(pod);
    }
    w.inject_at(t(0), rt);
    w.run_until(t(100));
    assert_eq!(w.conns_in_use(front, db_id), 1);
    w.fail_replica(pods[1]);
    assert_eq!(w.conns_in_use(front, db_id), 0, "connection reclaimed");
    // New db replica; the pool must be usable again.
    let db2 = w.add_replica(db_id).unwrap();
    w.make_ready(db2);
    w.inject_at(t(200), rt);
    let done = w.run_until(t(5000));
    assert_eq!(done.len(), 1);
}

#[test]
fn busy_counters_reflect_busy_fraction() {
    let (mut w, rt, svc) = single_service_world(100, 4, 1, 0.0);
    w.inject_at(t(0), rt);
    w.run_until(t(50));
    let busy = w.cpu_busy_core_secs(svc);
    assert!(
        (busy - 0.05).abs() < 0.001,
        "1 job on 1 core for 50 ms: {busy}"
    );
    assert_eq!(w.cpu_capacity_cores(svc), 1.0);
    let done = w.run_until(t(300));
    assert_eq!(done.len(), 1);
    let busy = w.cpu_busy_core_secs(svc);
    assert!((busy - 0.1).abs() < 0.001, "total work was 100 ms: {busy}");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut w = World::new(WorldConfig::default(), SimRng::seed_from(99));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("api")
                .threads(4)
                .lb(LbPolicy::Random)
                .on(rt, Behavior::leaf(Dist::exponential_ms(3.0))),
        );
        let rt = w.add_request_type("r", svc);
        for _ in 0..2 {
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
        }
        for i in 0..200 {
            w.inject_at(t(2_100 + i * 7), rt);
        }
        w.run_until(t(60_000))
    };
    let (a, b) = (run(), run());
    assert_eq!(a.len(), 200);
    assert_eq!(a, b, "identical seeds give identical completion streams");
}

#[test]
fn concurrency_sampler_sees_thread_occupancy() {
    let (mut w, rt, svc) = single_service_world(100, 2, 2, 0.0);
    for _ in 0..2 {
        w.inject_at(t(0), rt);
    }
    w.run_until(t(200));
    let pod = w.ready_replicas(svc)[0];
    let conc = w.concurrency_of(pod).unwrap();
    let avg = conc.average_in(t(0), t(100));
    assert!(
        (avg - 2.0).abs() < 0.05,
        "two threads busy for 100 ms: {avg}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Requests are conserved: injected = completed + dropped, and the world
    /// quiesces once the workload stops.
    #[test]
    fn prop_request_conservation(
        n in 1usize..60,
        threads in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let mut w = World::new(WorldConfig::default(), SimRng::seed_from(seed));
        let rt = RequestTypeId(0);
        let db_id = ServiceId(1);
        let front = w.add_service(
            ServiceSpec::new("front")
                .threads(threads)
                .conns(db_id, 2)
                .on(rt, Behavior::tier(
                    Dist::exponential_ms(1.0), db_id, Dist::constant_ms(1))),
        );
        w.add_service(
            ServiceSpec::new("db").threads(4).on(rt, Behavior::leaf(Dist::exponential_ms(2.0))),
        );
        let rt = w.add_request_type("q", front);
        for svc in [front, db_id] {
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
        }
        let mut completed = 0;
        for i in 0..n {
            w.inject_at(t(i as u64 * 3), rt);
        }
        completed += w.run_until(t(3_600_000)).len();
        prop_assert!(w.is_quiescent(), "events must drain");
        prop_assert_eq!(completed as u64 + w.dropped(), n as u64);
        prop_assert_eq!(w.running_threads(front), 0);
        prop_assert_eq!(w.conns_in_use(front, db_id), 0);
    }
}

#[test]
fn client_timeout_abandons_slow_requests_and_reclaims_resources() {
    let mut w = World::new(exact_config(), SimRng::seed_from(1));
    let (rt, patient) = (RequestTypeId(0), RequestTypeId(1));
    let svc = w.add_service(
        ServiceSpec::new("slow")
            .cpu(Millicores::from_cores(1))
            .threads(1)
            .on(rt, Behavior::leaf(Dist::constant_ms(100)))
            .on(patient, Behavior::leaf(Dist::constant_ms(100))),
    );
    let rt = w.add_request_type_with_timeout(
        "GET / (50ms budget)",
        svc,
        Some(SimDuration::from_millis(50)),
    );
    let pod = w.add_replica(svc).unwrap();
    w.make_ready(pod);
    // First request times out (needs 100 ms); the second, issued after the
    // first was abandoned, completes because the thread was reclaimed.
    w.inject_at(t(0), rt);
    w.inject_at(t(60), rt);
    let done = w.run_until(t(1_000));
    assert_eq!(done.len(), 0, "both need 100 ms against a 50 ms budget");
    assert_eq!(w.dropped(), 2, "both requests abandoned at their deadline");
    // A generous-timeout type on the same service succeeds.
    let rt2 = w.add_request_type_with_timeout("patient", svc, Some(SimDuration::from_millis(500)));
    assert_eq!(rt2, patient);
    w.inject_at(t(2_000), rt2);
    let done = w.run_until(t(3_000));
    assert_eq!(done.len(), 1);
    assert!(w.is_quiescent());
    assert_eq!(w.running_threads(svc), 0);
}

#[test]
fn timeouts_release_queued_requests_before_admission() {
    let mut w = World::new(exact_config(), SimRng::seed_from(1));
    let rt = RequestTypeId(0);
    let svc = w.add_service(
        ServiceSpec::new("gate")
            .cpu(Millicores::from_cores(1))
            .threads(1)
            .on(rt, Behavior::leaf(Dist::constant_ms(40))),
    );
    let rt = w.add_request_type_with_timeout("r", svc, Some(SimDuration::from_millis(60)));
    let pod = w.add_replica(svc).unwrap();
    w.make_ready(pod);
    for _ in 0..5 {
        w.inject_at(t(0), rt); // only the first can finish within 60 ms
    }
    let done = w.run_until(t(1_000));
    assert_eq!(done.len(), 1);
    assert_eq!(w.dropped(), 4, "queued requests timed out while waiting");
    assert_eq!(w.queued_requests(svc), 0, "queue entries reclaimed");
    assert!(w.is_quiescent());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Conservation also holds when client timeouts race completions: every
    /// injected request either completes or is dropped, never both, and all
    /// gates drain.
    #[test]
    fn prop_timeouts_preserve_conservation(
        n in 20usize..150,
        timeout_ms in 5u64..60,
        threads in 1usize..6,
        seed in 0u64..300,
    ) {
        let mut w = World::new(WorldConfig::default(), SimRng::seed_from(seed));
        let rt = RequestTypeId(0);
        let db_id = ServiceId(1);
        let front = w.add_service(
            ServiceSpec::new("front")
                .threads(threads)
                .conns(db_id, 2)
                .on(rt, Behavior::tier(Dist::exponential_ms(2.0), db_id, Dist::constant_ms(1))),
        );
        w.add_service(
            ServiceSpec::new("db").threads(4).on(rt, Behavior::leaf(Dist::exponential_ms(3.0))),
        );
        let rt = w.add_request_type_with_timeout(
            "r",
            front,
            Some(SimDuration::from_millis(timeout_ms)),
        );
        for svc in [front, db_id] {
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
        }
        for i in 0..n {
            w.inject_at(t(i as u64 * 2), rt);
        }
        let done = w.run_until(t(3_600_000));
        prop_assert!(w.is_quiescent());
        prop_assert_eq!(done.len() as u64 + w.dropped(), n as u64);
        // Completed requests honoured their budget (modulo the final net hop
        // racing the timeout event at the same instant).
        for c in &done {
            prop_assert!(
                c.response_time <= SimDuration::from_millis(timeout_ms + 1),
                "completion {:?} beyond its {}ms budget", c.response_time, timeout_ms
            );
        }
        prop_assert_eq!(w.running_threads(front), 0);
        prop_assert_eq!(w.conns_in_use(front, db_id), 0);
    }
}

#[test]
fn fault_schedule_crash_and_restart_round_trip() {
    let config = WorldConfig {
        net_delay: Dist::constant_us(0),
        replica_startup: Dist::constant_ms(100),
        ..WorldConfig::default()
    };
    let mut w = World::new(config, SimRng::seed_from(7));
    let rt = RequestTypeId(0);
    let svc = w.add_service(
        ServiceSpec::new("api")
            .cpu(Millicores::from_cores(4))
            .threads(4)
            .on(rt, Behavior::leaf(Dist::constant_ms(1_000))),
    );
    let rt = w.add_request_type("r", svc);
    let pod = w.add_replica(svc).unwrap();
    w.make_ready(pod);
    w.install_faults(FaultSchedule::new().crash(t(500), svc, Some(SimDuration::from_millis(200))))
        .expect("valid fault schedule");
    w.inject_at(t(0), rt); // in flight when the crash hits
    w.run_until(t(600));
    assert_eq!(w.ready_replicas(svc).len(), 0, "replica crashed");
    assert_eq!(w.drop_breakdown().replica_failed, 1);
    // Restart at 700 ms + 100 ms start-up → ready at 800 ms.
    w.run_until(t(900));
    assert_eq!(w.ready_replicas(svc).len(), 1, "replacement came up");
    w.inject_at(t(1_000), rt);
    let done = w.run_until(t(10_000));
    assert_eq!(done.len(), 1, "recovered replica serves traffic");
    assert!(w.fault_log().iter().any(|(_, m)| m.contains("crash")));
    assert!(w.fault_log().iter().any(|(_, m)| m.contains("restart")));
}

#[test]
fn cpu_pressure_window_slows_hosted_replicas_then_lifts() {
    let (mut w, rt, svc) = single_service_world(100, 4, 1, 0.0);
    let pod = w.ready_replicas(svc)[0];
    let node = w.node_of(pod).unwrap();
    w.install_faults(FaultSchedule::new().cpu_pressure(
        t(0),
        node,
        0.5,
        SimDuration::from_millis(10_000),
    ))
    .expect("valid fault schedule");
    w.inject_at(t(0), rt);
    let done = w.run_until(t(15_000));
    // Half the core delivered → the 100 ms job takes 200 ms.
    assert_eq!(done[0].response_time.as_millis(), 200);
    // After the window, full speed again.
    w.inject_at(t(11_000), rt);
    let done = w.run_until(t(20_000));
    assert_eq!(done[0].response_time.as_millis(), 100);
}

#[test]
fn pressure_window_covers_replicas_added_mid_window() {
    let (mut w, rt, svc) = single_service_world(100, 4, 1, 0.0);
    let pod = w.ready_replicas(svc)[0];
    let node = w.node_of(pod).unwrap();
    w.install_faults(FaultSchedule::new().cpu_pressure(
        t(0),
        node,
        0.5,
        SimDuration::from_millis(60_000),
    ))
    .expect("valid fault schedule");
    w.run_until(t(1_000));
    // Scale up inside the window; the lazy default node hosts everything.
    let pod2 = w.add_replica(svc).unwrap();
    w.make_ready(pod2);
    assert_eq!(w.node_of(pod2).unwrap(), node);
    // Route a request through each replica (round robin).
    w.inject_at(t(2_000), rt);
    w.inject_at(t(2_000), rt);
    let done = w.run_until(t(30_000));
    assert!(
        done.iter().all(|c| c.response_time.as_millis() == 200),
        "replicas added mid-window inherit the pressure: {done:?}"
    );
}

#[test]
fn telemetry_blackout_drop_loses_samples_but_not_requests() {
    let (mut w, rt, svc) = single_service_world(10, 4, 4, 0.0);
    let pod = w.ready_replicas(svc)[0];
    w.install_faults(FaultSchedule::new().telemetry_blackout(
        t(1_000),
        BlackoutMode::Drop,
        SimDuration::from_millis(2_000),
    ))
    .expect("valid fault schedule");
    w.inject_at(t(0), rt); // before the window: sampled
    w.inject_at(t(2_000), rt); // inside: lost
    let done = w.run_until(t(5_000));
    assert_eq!(done.len(), 2, "requests themselves are unaffected");
    assert_eq!(w.client().total(), 2, "client log keeps recording");
    assert_eq!(w.completions_of(pod).unwrap().len(), 1, "sample lost");
    assert_eq!(w.warehouse().len(), 1, "trace lost");
}

#[test]
fn telemetry_blackout_lag_delivers_samples_at_window_end() {
    let (mut w, rt, svc) = single_service_world(10, 4, 4, 0.0);
    let pod = w.ready_replicas(svc)[0];
    w.install_faults(FaultSchedule::new().telemetry_blackout(
        t(1_000),
        BlackoutMode::Lag,
        SimDuration::from_millis(2_000),
    ))
    .expect("valid fault schedule");
    w.inject_at(t(2_000), rt);
    let mut done = w.run_until(t(2_500));
    assert_eq!(done.len(), 1, "the request itself completes normally");
    assert_eq!(
        w.completions_of(pod).unwrap().len(),
        0,
        "sample withheld inside the window"
    );
    w.inject_at(t(4_000), rt); // after the window
    done.extend(w.run_until(t(5_000)));
    assert_eq!(done.len(), 2);
    assert_eq!(
        w.completions_of(pod).unwrap().len(),
        2,
        "lagged sample delivered in order, live sample follows"
    );
    assert_eq!(w.warehouse().len(), 2);
}

#[test]
fn connect_retries_exhaust_into_a_dropped_request() {
    // front → db where db has no replica at all: the child call retries
    // every 10 ms up to the budget, then the request drops.
    let config = WorldConfig {
        net_delay: Dist::constant_us(0),
        replica_startup: Dist::constant_us(0),
        max_connect_retries: 5,
        ..WorldConfig::default()
    };
    let mut w = World::new(config, SimRng::seed_from(2));
    let rt = RequestTypeId(0);
    let db_id = ServiceId(1);
    let front = w.add_service(
        ServiceSpec::new("front")
            .threads(4)
            .on(rt, Behavior::new(vec![Stage::call(db_id)])),
    );
    w.add_service(ServiceSpec::new("db").on(rt, Behavior::leaf(Dist::constant_ms(1))));
    let rt = w.add_request_type("q", front);
    let pod = w.add_replica(front).unwrap();
    w.make_ready(pod);
    w.inject_at(t(0), rt);
    let done = w.run_until(t(10_000));
    assert!(done.is_empty());
    assert_eq!(w.drop_breakdown().retries_exhausted, 1);
    assert_eq!(w.running_threads(front), 0, "front thread reclaimed");
    assert!(w.is_quiescent());
}

#[test]
fn drop_reasons_are_attributed() {
    // Refused at the edge.
    let config = WorldConfig {
        net_delay: Dist::constant_us(0),
        replica_startup: Dist::constant_ms(500),
        ..WorldConfig::default()
    };
    let mut w = World::new(config, SimRng::seed_from(2));
    let rt = RequestTypeId(0);
    let svc = w.add_service(ServiceSpec::new("api").on(rt, Behavior::leaf(Dist::constant_ms(1))));
    let rt = w.add_request_type_with_timeout("r", svc, Some(SimDuration::from_millis(50)));
    w.add_replica(svc).unwrap(); // ready at 500 ms
    w.inject_at(t(100), rt);
    w.run_until(t(400));
    assert_eq!(
        w.drain_dropped(),
        vec![(telemetry::RequestId(0), DropReason::Refused)]
    );
    // Timeout: close the thread gate so admitted work can never start.
    w.set_thread_limit(svc, 0);
    let id = w.inject_at(t(700), rt);
    let _ = w.run_until(t(1_000));
    let drops = w.drain_dropped();
    assert!(
        drops.contains(&(id, DropReason::ClientTimeout)),
        "{drops:?}"
    );
    let b = w.drop_breakdown();
    assert_eq!(b.refused, 1);
    assert!(b.client_timeout >= 1);
    assert_eq!(b.total(), w.dropped());
}

#[test]
fn faults_are_deterministic_across_runs() {
    let run = || {
        let mut w = World::new(WorldConfig::default(), SimRng::seed_from(11));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("api")
                .threads(8)
                .lb(LbPolicy::Random)
                .on(rt, Behavior::leaf(Dist::exponential_ms(5.0))),
        );
        let rt = w.add_request_type("r", svc);
        for _ in 0..3 {
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
        }
        let node = w.node_of(w.ready_replicas(svc)[0]).unwrap();
        w.install_faults(
            FaultSchedule::new()
                .crash(t(3_000), svc, Some(SimDuration::from_millis(500)))
                .cpu_pressure(t(5_000), node, 0.4, SimDuration::from_millis(4_000))
                .telemetry_blackout(t(5_000), BlackoutMode::Lag, SimDuration::from_millis(4_000)),
        )
        .expect("valid fault schedule");
        for i in 0..500 {
            w.inject_at(t(i * 20), rt);
        }
        let done = w.run_until(t(60_000));
        (done, w.fault_log().to_vec(), w.drop_breakdown())
    };
    let (a, b) = (run(), run());
    assert_eq!(a.0, b.0, "identical completion streams");
    assert_eq!(a.1, b.1, "identical fault logs");
    assert_eq!(a.2, b.2, "identical drop breakdowns");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Conservation holds across crash/recover/retry interleavings: with a
    /// mid-run crash of the db tier (optionally restarted), client
    /// timeouts and a bounded connect-retry budget, every injected request
    /// still either completes or is dropped exactly once, all gates drain,
    /// and the per-reason breakdown sums to the total.
    #[test]
    fn prop_crash_recover_retry_conservation(
        n in 20usize..120,
        crash_ms in 10u64..300,
        restart_ms in 0u64..200, // 0 encodes "no restart"
        timeout_ms in 20u64..80,
        retries in 0u32..8,
        seed in 0u64..300,
    ) {
        let config = WorldConfig {
            max_connect_retries: retries,
            ..WorldConfig::default()
        };
        let mut w = World::new(config, SimRng::seed_from(seed));
        let rt = RequestTypeId(0);
        let db_id = ServiceId(1);
        let front = w.add_service(
            ServiceSpec::new("front")
                .threads(4)
                .conns(db_id, 2)
                .on(rt, Behavior::tier(Dist::exponential_ms(2.0), db_id, Dist::constant_ms(1))),
        );
        w.add_service(
            ServiceSpec::new("db").threads(4).on(rt, Behavior::leaf(Dist::exponential_ms(3.0))),
        );
        let rt = w.add_request_type_with_timeout(
            "r",
            front,
            Some(SimDuration::from_millis(timeout_ms)),
        );
        for svc in [front, db_id] {
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
        }
        let restart = (restart_ms > 0).then(|| SimDuration::from_millis(restart_ms));
        w.install_faults(FaultSchedule::new().crash(t(crash_ms), db_id, restart))
            .expect("valid fault schedule");
        for i in 0..n {
            w.inject_at(t(i as u64 * 2), rt);
        }
        let done = w.run_until(t(3_600_000));
        prop_assert!(w.is_quiescent(), "events must drain");
        prop_assert_eq!(done.len() as u64 + w.dropped(), n as u64);
        prop_assert_eq!(w.drop_breakdown().total(), w.dropped());
        prop_assert_eq!(w.running_threads(front), 0);
        prop_assert_eq!(w.conns_in_use(front, db_id), 0);
    }
}

#[test]
fn per_type_client_logs_split_the_traffic() {
    let mut w = World::new(exact_config(), SimRng::seed_from(1));
    let (fast, slow) = (RequestTypeId(0), RequestTypeId(1));
    let svc = w.add_service(
        ServiceSpec::new("api")
            .cpu(Millicores::from_cores(4))
            .threads(16)
            .on(fast, Behavior::leaf(Dist::constant_ms(2)))
            .on(slow, Behavior::leaf(Dist::constant_ms(20))),
    );
    let fast = w.add_request_type("fast", svc);
    let slow = w.add_request_type("slow", svc);
    let pod = w.add_replica(svc).unwrap();
    w.make_ready(pod);
    for i in 0..20 {
        w.inject_at(t(i * 50), fast);
        w.inject_at(t(i * 50), slow);
    }
    w.run_until(t(5_000));
    assert_eq!(w.client().total(), 40);
    assert_eq!(w.client_of(fast).total(), 20);
    assert_eq!(w.client_of(slow).total(), 20);
    let p50_fast = w.client_of(fast).percentile(50.0).unwrap();
    let p50_slow = w.client_of(slow).percentile(50.0).unwrap();
    assert!(p50_slow > p50_fast * 5, "{p50_fast} vs {p50_slow}");
}
