//! Conservative parallel sharded engine: deterministic event execution
//! across service shards inside a single [`World`](crate::World).
//!
//! # Model
//!
//! Services are partitioned into contiguous shards. Each shard owns a
//! [`TimerWheel`], the replicas of its services, and the in-flight *jobs*
//! (spans) executing on them. Shards advance concurrently in bounded time
//! windows whose width is the **lookahead** `L`: the minimum network latency
//! of any inter-service message (`WorldConfig::net_delay.lower_bound()`).
//! Every cross-service interaction — child calls, responses — is a message
//! carrying an explicit `(time, key)` identity; messages between shards ride
//! a mailbox that is drained at window barriers.
//!
//! Conservatism: a message sent while processing window `[w, w+L)` is
//! delivered no earlier than `w + L`, i.e. never inside the window that
//! produced it. Window-local execution therefore never needs rollback, and
//! because every wheel orders events by `(time, key)` with globally unique
//! keys, the per-shard execution order is a pure function of the message
//! set — independent of shard count and of thread scheduling.
//!
//! # Partition independence
//!
//! Every event key is derived from the *causal* history of one service
//! (`pack(service, seq)`), every random draw comes from a per-service or
//! per-purpose split stream, and global observables (completions, drops,
//! traces) are buffered per shard and merged in `(time, key)` order at run
//! boundaries. `shards = 1` is therefore the family's sequential oracle and
//! `shards = N` reproduces it byte for byte.

use crate::config::{LbPolicy, RequestTypeSpec, Stage, WorldConfig};
use crate::faults::{BlackoutMode, FaultKind};
use crate::replica::{ConnPool, ConnWaiter, Replica, ReplicaState};
use crate::world::{Completion, DropBreakdown, DropReason, ServiceRuntime};
use cluster::{ClusterState, Millicores, NodeId, PlacementError};
use sim_core::{SimDuration, SimRng, SimTime, Slab, SlabKey, TimerWheel};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use telemetry::{
    ChildCall, ClientLog, ReplicaId, RequestId, RequestTypeId, ServiceId, Span, SpanId, Trace,
    TraceWarehouse,
};

/// Why a [`World`](crate::World) could not be switched to the sharded
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The world is already sharded.
    AlreadySharded,
    /// A message-passing network is installed; the sharded engine models
    /// inter-service latency itself and cannot compose with `crates/net`.
    NetworkInstalled,
    /// A fault schedule was installed before sharding was enabled; enable
    /// sharding first so faults become barrier actions.
    FaultsInstalled,
    /// Simulation has already started (clock advanced or requests injected).
    AlreadyStarted,
    /// `net_delay.lower_bound()` is zero, so no conservative lookahead
    /// window exists. Use a distribution with a positive lower bound.
    ZeroLookahead,
    /// The shard plan is empty, non-contiguous, or does not cover services.
    BadPlan(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::AlreadySharded => write!(f, "world is already sharded"),
            ShardError::NetworkInstalled => {
                write!(f, "sharding cannot be enabled with a network installed")
            }
            ShardError::FaultsInstalled => {
                write!(f, "enable sharding before installing a fault schedule")
            }
            ShardError::AlreadyStarted => {
                write!(f, "sharding must be enabled before the simulation starts")
            }
            ShardError::ZeroLookahead => {
                write!(
                    f,
                    "net_delay lower bound is zero: no conservative lookahead"
                )
            }
            ShardError::BadPlan(why) => write!(f, "bad shard plan: {why}"),
        }
    }
}

impl std::error::Error for ShardError {}

// ---------------------------------------------------------------------
// Event keys
// ---------------------------------------------------------------------

/// Bits reserved for the per-source sequence counter.
const SEQ_BITS: u32 = 40;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;
/// Synthetic source id for client-originated events (injections).
const CLIENT_SRC: u32 = (1 << 24) - 2;
/// Synthetic source id for coordinator/fault-originated keys.
const FAULT_SRC: u32 = (1 << 24) - 1;

/// Packs a source id and a per-source sequence number into one globally
/// unique, totally ordered event key. Keys are partition-independent: the
/// sequence number counts events *originated by one service*, which is a
/// function of that service's causal history only.
#[inline]
fn pack(src: u32, seq: u64) -> u64 {
    debug_assert!(seq <= SEQ_MASK, "event sequence overflow");
    ((src as u64) << SEQ_BITS) | (seq & SEQ_MASK)
}

/// SplitMix64 finalizer: a bijective mixer, so distinct inputs give
/// distinct span ids.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Root span id for a request: a hash of its identity rather than a global
/// counter, so ids do not depend on cross-service event interleaving.
#[inline]
fn root_span(request: RequestId) -> SpanId {
    SpanId(mix64(request.get().wrapping_add(1)))
}

/// Child span id: hash-chained from the parent span and the call index, so
/// the parent can name the child's span before the child exists.
#[inline]
fn child_span(parent: SpanId, call_idx: usize) -> SpanId {
    SpanId(mix64(parent.get() ^ mix64(call_idx as u64 + 1)))
}

// ---------------------------------------------------------------------
// Messages and events
// ---------------------------------------------------------------------

/// Names the job (and call slot) awaiting a child's response. The slab key
/// is generational, so replies to finished or killed jobs are inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ParentRef {
    shard: u32,
    job: SlabKey,
    call_idx: u32,
}

/// An inter-service call on the wire.
#[derive(Debug, Clone)]
struct CallMsg {
    request: RequestId,
    rtype: RequestTypeId,
    target: ServiceId,
    parent: Option<ParentRef>,
    span: SpanId,
    parent_span: Option<SpanId>,
    attempt: u32,
    deadline: Option<SimTime>,
    issued: SimTime,
}

/// A message between services (possibly crossing shards).
#[derive(Debug, Clone)]
enum Msg {
    /// A call arriving at its target service.
    Call(CallMsg),
    /// A child's response. `spans: None` is an error response: the subtree
    /// failed (connection retries exhausted) and the parent must abort.
    Reply {
        to: ParentRef,
        spans: Option<Vec<Span>>,
    },
}

/// A shard-local event.
#[derive(Debug, Clone)]
enum SEvent {
    Msg(Msg),
    CpuDone {
        replica: ReplicaId,
        epoch: u64,
    },
    ReplicaReady {
        replica: ReplicaId,
    },
    /// The request-wide client deadline fires for one job.
    DeadlineKill {
        job: SlabKey,
    },
    /// A request whose ingress latency already exceeded its deadline is
    /// dropped at the deadline without ever arriving.
    PureDrop {
        request: RequestId,
    },
}

/// One in-flight span: a request executing one service's behaviour on one
/// replica. The sharded engine's analogue of `request::Frame`, except each
/// job is owned by exactly one shard.
#[derive(Debug)]
struct SJob {
    request: RequestId,
    rtype: RequestTypeId,
    service: ServiceId,
    replica: ReplicaId,
    parent: Option<ParentRef>,
    span: SpanId,
    parent_span: Option<SpanId>,
    /// The arrival message's key; reused for the job's deadline event and
    /// any drop/completion records, keeping them partition-independent.
    key: u64,
    issued: SimTime,
    arrival: SimTime,
    started: Option<SimTime>,
    stage: usize,
    pending_children: usize,
    calls: Vec<ChildCall>,
    child_spans: Vec<Vec<Span>>,
    deadline: Option<SimTime>,
}

/// Per-service state local to the owning shard.
#[derive(Debug)]
struct SvcLocal {
    /// Live replica ids in creation order.
    replicas: Vec<ReplicaId>,
    /// Round-robin cursor.
    rr: usize,
    /// Demand / latency / startup draws for this service.
    rng: SimRng,
    /// Load-balancer draws for calls *to* this service.
    lb_rng: SimRng,
    /// Event-key sequence counter.
    seq: u64,
}

/// Cross-shard message transport: a dense matrix of `src × dst` cells.
/// Purely a mailbox — ordering is re-established by the receiving wheel's
/// `(time, key)` sort, so lock acquisition order never matters.
struct Mailbox {
    n: usize,
    cells: Vec<Mutex<Vec<(SimTime, u64, Msg)>>>,
}

impl Mailbox {
    fn new(n: usize) -> Mailbox {
        Mailbox {
            n,
            cells: (0..n * n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    #[inline]
    fn push(&self, src: u32, dst: u32, at: SimTime, key: u64, msg: Msg) {
        let cell = &self.cells[src as usize * self.n + dst as usize];
        cell.lock().unwrap().push((at, key, msg));
    }

    fn is_empty(&self) -> bool {
        self.cells.iter().all(|c| c.lock().unwrap().is_empty())
    }
}

/// Immutable engine context handed to shard handlers: everything a shard
/// may read while processing a window. Disjoint from any `&mut ShardCore`.
struct EngCtx<'a> {
    services: &'a [ServiceRuntime],
    config: &'a WorldConfig,
    shard_of: &'a [u32],
    mail: &'a Mailbox,
}

// ---------------------------------------------------------------------
// ShardCore: one shard's state and event handlers
// ---------------------------------------------------------------------

/// One shard: a contiguous range of services, their replicas, and the jobs
/// executing on them, driven by a private timer wheel.
struct ShardCore {
    idx: u32,
    /// First service id owned by this shard.
    base: usize,
    svcs: Vec<SvcLocal>,
    wheel: TimerWheel<SEvent>,
    replicas: Slab<Replica>,
    /// Dense `ReplicaId → SlabKey` for replicas owned by this shard.
    replica_lookup: Vec<Option<SlabKey>>,
    replica_states: Vec<ReplicaState>,
    jobs: Slab<SJob>,
    /// Requests killed by a replica crash: in-flight calls for them are
    /// discarded on arrival instead of spawning fresh jobs.
    dead: HashSet<RequestId>,
    blackout: Option<BlackoutMode>,
    lag_completions: Vec<(ReplicaId, SimTime, SimDuration)>,
    lag_traces: Vec<(u64, Trace)>,
    /// Root completions buffered for the coordinator's `(time, key)` merge.
    out_completions: Vec<(SimTime, u64, Completion)>,
    out_drops: Vec<(SimTime, u64, RequestId, DropReason)>,
    out_traces: Vec<(SimTime, u64, Trace)>,
    /// Replicas retired mid-window; the coordinator settles them against
    /// the cluster and the service-level busy counters at barriers.
    retired: Vec<(ServiceId, ReplicaId, f64)>,
    events_dispatched: u64,
    spans_created: u64,
    /// Requests injected at this shard's entry services whose root call is
    /// still in flight.
    pending_roots: u64,
    /// Root jobs currently alive on this shard.
    live_roots: u64,
    cpu_jobs_scratch: Vec<cluster::CpuJobId>,
    cpu_work_scratch: Vec<SlabKey>,
    #[cfg(feature = "audit")]
    audit_last: SimTime,
    #[cfg(feature = "audit")]
    audit_violations: Vec<sim_core::audit::Violation>,
}

impl ShardCore {
    fn new(idx: u32, span: &Range<usize>, rng: &SimRng) -> ShardCore {
        ShardCore {
            idx,
            base: span.start,
            svcs: span
                .clone()
                .map(|sid| SvcLocal {
                    replicas: Vec::new(),
                    rr: 0,
                    rng: rng.split_index("shard-svc", sid as u64),
                    lb_rng: rng.split_index("shard-lb", sid as u64),
                    seq: 0,
                })
                .collect(),
            wheel: TimerWheel::default(),
            replicas: Slab::new(),
            replica_lookup: Vec::new(),
            replica_states: Vec::new(),
            jobs: Slab::new(),
            dead: HashSet::new(),
            blackout: None,
            lag_completions: Vec::new(),
            lag_traces: Vec::new(),
            out_completions: Vec::new(),
            out_drops: Vec::new(),
            out_traces: Vec::new(),
            retired: Vec::new(),
            events_dispatched: 0,
            spans_created: 0,
            pending_roots: 0,
            live_roots: 0,
            cpu_jobs_scratch: Vec::new(),
            cpu_work_scratch: Vec::new(),
            #[cfg(feature = "audit")]
            audit_last: SimTime::ZERO,
            #[cfg(feature = "audit")]
            audit_violations: Vec::new(),
        }
    }

    #[inline]
    fn svc(&self, sid: ServiceId) -> &SvcLocal {
        &self.svcs[sid.get() as usize - self.base]
    }

    #[inline]
    fn svc_mut(&mut self, sid: ServiceId) -> &mut SvcLocal {
        &mut self.svcs[sid.get() as usize - self.base]
    }

    /// Allocates the next event key originated by `sid`.
    #[inline]
    fn fresh_key(&mut self, sid: ServiceId) -> u64 {
        let svc = self.svc_mut(sid);
        let k = pack(sid.get(), svc.seq);
        svc.seq += 1;
        k
    }

    #[inline]
    fn rep_key(&self, id: ReplicaId) -> Option<SlabKey> {
        self.replica_lookup
            .get(id.get() as usize)
            .copied()
            .flatten()
    }

    fn rep(&self, id: ReplicaId) -> Option<&Replica> {
        self.rep_key(id).and_then(|k| self.replicas.get(k))
    }

    fn state_of(&self, id: ReplicaId) -> Option<ReplicaState> {
        self.rep_key(id)
            .and_then(|_| self.replica_states.get(id.get() as usize).copied())
    }

    fn set_state(&mut self, id: ReplicaId, state: ReplicaState) {
        let idx = id.get() as usize;
        if idx < self.replica_states.len() {
            self.replica_states[idx] = state;
        }
    }

    fn install(&mut self, id: ReplicaId, rep: Replica, state: ReplicaState) {
        let sid = rep.service;
        let idx = id.get() as usize;
        if self.replica_lookup.len() <= idx {
            self.replica_lookup.resize(idx + 1, None);
            self.replica_states.resize(idx + 1, ReplicaState::Starting);
        }
        let key = self.replicas.insert(rep);
        self.replica_lookup[idx] = Some(key);
        self.replica_states[idx] = state;
        self.svc_mut(sid).replicas.push(id);
    }

    fn make_ready(&mut self, id: ReplicaId) {
        if self.state_of(id) == Some(ReplicaState::Starting) {
            self.set_state(id, ReplicaState::Ready);
        }
    }

    /// Removes an idle replica, buffering its retirement for the
    /// coordinator (cluster deallocation + service busy-counter carryover).
    fn remove_replica_final(&mut self, now: SimTime, id: ReplicaId) {
        let idx = id.get() as usize;
        let Some(slot) = self.replica_lookup.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let Some(mut rep) = self.replicas.remove(slot) else {
            return;
        };
        debug_assert!(rep.is_idle(), "removing a non-idle replica");
        rep.cpu.advance(now);
        let sid = rep.service;
        self.retired.push((sid, id, rep.cpu.busy_core_nanos()));
        self.svc_mut(sid).replicas.retain(|&r| r != id);
    }

    fn maybe_reap_drained(&mut self, now: SimTime, id: ReplicaId) {
        let should_remove = self.state_of(id) == Some(ReplicaState::Draining)
            && self.rep(id).is_some_and(|r| r.is_idle());
        if should_remove {
            self.remove_replica_final(now, id);
        }
    }

    // -- load balancing -------------------------------------------------

    fn ready_count(&self, sid: ServiceId) -> usize {
        self.svc(sid)
            .replicas
            .iter()
            .filter(|&&id| self.state_of(id) == Some(ReplicaState::Ready))
            .count()
    }

    fn nth_ready(&self, sid: ServiceId, n: usize) -> Option<ReplicaId> {
        self.svc(sid)
            .replicas
            .iter()
            .copied()
            .filter(|&id| self.state_of(id) == Some(ReplicaState::Ready))
            .nth(n)
    }

    /// Picks a ready replica of `sid` using the service's LB policy.
    /// Server-side: the draw happens at the *target*, from the target's
    /// split streams, so it is independent of who called and from where.
    fn pick_replica(&mut self, ctx: &EngCtx, sid: ServiceId) -> Option<ReplicaId> {
        let n = self.ready_count(sid);
        if n == 0 {
            return None;
        }
        match ctx.services[sid.get() as usize].spec.lb {
            LbPolicy::RoundRobin => {
                let k = {
                    let svc = self.svc_mut(sid);
                    let k = svc.rr % n;
                    svc.rr = svc.rr.wrapping_add(1);
                    k
                };
                self.nth_ready(sid, k)
            }
            LbPolicy::Random => {
                let k = self.svc_mut(sid).lb_rng.index(n);
                self.nth_ready(sid, k)
            }
            LbPolicy::LeastOutstanding => {
                let ka = self.svc_mut(sid).lb_rng.index(n);
                let a = self.nth_ready(sid, ka)?;
                let kb = self.svc_mut(sid).lb_rng.index(n);
                let b = self.nth_ready(sid, kb)?;
                let oa = self.rep(a).map_or(usize::MAX, Replica::outstanding);
                let ob = self.rep(b).map_or(usize::MAX, Replica::outstanding);
                Some(if oa <= ob { a } else { b })
            }
        }
    }

    // -- messaging ------------------------------------------------------

    /// Routes a message: same-shard messages go straight into the local
    /// wheel; cross-shard messages ride the mailbox and are folded in at
    /// the next window barrier. Conservative because cross-shard delivery
    /// times are at least `now + lookahead`.
    fn send_to_shard(&mut self, ctx: &EngCtx, at: SimTime, key: u64, dst: u32, msg: Msg) {
        if dst == self.idx {
            self.wheel.schedule(at, key, SEvent::Msg(msg));
        } else {
            ctx.mail.push(self.idx, dst, at, key, msg);
        }
    }

    fn drain_inbox(&mut self, ctx: &EngCtx) {
        for src in 0..ctx.mail.n {
            let cell = &ctx.mail.cells[src * ctx.mail.n + self.idx as usize];
            let mut cell = cell.lock().unwrap();
            for (at, key, msg) in cell.drain(..) {
                self.wheel.schedule(at, key, SEvent::Msg(msg));
            }
        }
    }

    // -- dispatch -------------------------------------------------------

    fn dispatch(&mut self, ctx: &EngCtx, now: SimTime, key: u64, ev: SEvent) {
        self.events_dispatched += 1;
        #[cfg(feature = "audit")]
        {
            if now < self.audit_last {
                self.audit_violations.push(sim_core::audit::Violation {
                    invariant: sim_core::audit::Invariant::EventMonotonicity,
                    at_nanos: now.as_nanos(),
                    detail: format!(
                        "event at {} ns dispatched after event at {} ns",
                        now.as_nanos(),
                        self.audit_last.as_nanos()
                    ),
                });
            }
            self.audit_last = now;
        }
        match ev {
            SEvent::Msg(Msg::Call(call)) => self.on_call(ctx, now, key, call),
            SEvent::Msg(Msg::Reply { to, spans }) => self.on_reply(ctx, now, to, spans),
            SEvent::CpuDone { replica, epoch } => self.on_cpu_done(ctx, now, replica, epoch),
            SEvent::ReplicaReady { replica } => self.make_ready(replica),
            SEvent::DeadlineKill { job } => self.on_deadline_kill(ctx, now, job),
            SEvent::PureDrop { request } => {
                self.out_drops
                    .push((now, key, request, DropReason::ClientTimeout));
                self.pending_roots -= 1;
            }
        }
    }

    fn on_call(&mut self, ctx: &EngCtx, now: SimTime, key: u64, call: CallMsg) {
        if self.dead.contains(&call.request) {
            debug_assert!(
                call.parent.is_some(),
                "root call for a crash-killed request"
            );
            return;
        }
        if call.parent.is_some() {
            if let Some(d) = call.deadline {
                // The request-wide deadline passed in flight; every job of
                // the request is killed at `d` by its own DeadlineKill, so
                // the would-be parent is already gone. Discard.
                if now >= d {
                    return;
                }
            }
        }
        let Some(replica) = self.pick_replica(ctx, call.target) else {
            match call.parent {
                None => {
                    // Root calls never retry: no ready entry replica means
                    // an edge refusal, exactly like the classic engine.
                    self.out_drops
                        .push((now, key, call.request, DropReason::Refused));
                    self.pending_roots -= 1;
                }
                Some(parent) => {
                    if call.attempt >= ctx.config.max_connect_retries {
                        let net = {
                            let target = call.target;
                            let svc = self.svc_mut(target);
                            ctx.config.net_delay.sample(&mut svc.rng)
                        };
                        let rkey = self.fresh_key(call.target);
                        self.send_to_shard(
                            ctx,
                            now + net,
                            rkey,
                            parent.shard,
                            Msg::Reply {
                                to: parent,
                                spans: None,
                            },
                        );
                    } else {
                        let mut retry = call;
                        retry.attempt += 1;
                        self.wheel.schedule(
                            now + SimDuration::from_millis(10),
                            key,
                            SEvent::Msg(Msg::Call(retry)),
                        );
                    }
                }
            }
            return;
        };
        if call.parent.is_none() {
            self.pending_roots -= 1;
            self.live_roots += 1;
        }
        let deadline = call.deadline;
        let jk = self.jobs.insert(SJob {
            request: call.request,
            rtype: call.rtype,
            service: call.target,
            replica,
            parent: call.parent,
            span: call.span,
            parent_span: call.parent_span,
            key,
            issued: call.issued,
            arrival: now,
            started: None,
            stage: 0,
            pending_children: 0,
            calls: Vec::new(),
            child_spans: Vec::new(),
            deadline,
        });
        self.spans_created += 1;
        if let Some(d) = deadline {
            self.wheel
                .schedule(d, key, SEvent::DeadlineKill { job: jk });
        }
        self.admit_or_queue(ctx, now, jk);
    }

    fn admit_or_queue(&mut self, ctx: &EngCtx, now: SimTime, jk: SlabKey) {
        let replica = self.jobs.get(jk).expect("fresh job").replica;
        let Some(rk) = self.rep_key(replica) else {
            self.fail_job(ctx, now, jk);
            return;
        };
        let admitted = {
            let r = self.replicas.get_mut(rk).expect("live replica");
            if r.threads.try_acquire() {
                true
            } else {
                r.threads.queue.push_back((jk, 0));
                false
            }
        };
        if admitted {
            self.start_job(ctx, now, jk);
        }
    }

    fn start_job(&mut self, ctx: &EngCtx, now: SimTime, jk: SlabKey) {
        let replica = {
            let j = self.jobs.get_mut(jk).expect("admitted job");
            j.started = Some(now);
            j.replica
        };
        if let Some(rk) = self.rep_key(replica) {
            self.replicas
                .get_mut(rk)
                .expect("live replica")
                .concurrency
                .enter(now);
        }
        self.run_stages(ctx, now, jk);
    }

    fn run_stages(&mut self, ctx: &EngCtx, now: SimTime, jk: SlabKey) {
        loop {
            let Some((sid, rtype, stage_idx, replica)) = self
                .jobs
                .get(jk)
                .map(|j| (j.service, j.rtype, j.stage, j.replica))
            else {
                return;
            };
            let spec = &ctx.services[sid.get() as usize].spec;
            let behavior = spec.behaviors.get(&rtype).unwrap_or_else(|| {
                panic!(
                    "service {} has no behaviour for request type {rtype}",
                    spec.name
                )
            });
            match behavior.stages.get(stage_idx) {
                None => {
                    self.complete_job(ctx, now, jk);
                    return;
                }
                Some(Stage::Compute { demand }) => {
                    let d = {
                        let svc = self.svc_mut(sid);
                        demand.sample(&mut svc.rng)
                    };
                    let Some(rk) = self.rep_key(replica) else {
                        return;
                    };
                    {
                        let r = self.replicas.get_mut(rk).expect("live replica");
                        let cj = r.cpu.add(now, d);
                        r.jobs.insert(cj, (jk, 0));
                    }
                    self.schedule_cpu(now, replica);
                    return;
                }
                Some(Stage::Call { targets }) => {
                    if targets.is_empty() {
                        self.jobs.get_mut(jk).expect("live job").stage += 1;
                        continue;
                    }
                    self.issue_calls(ctx, now, jk, targets);
                    return;
                }
            }
        }
    }

    fn issue_calls(&mut self, ctx: &EngCtx, now: SimTime, jk: SlabKey, targets: &[ServiceId]) {
        let replica = {
            let j = self.jobs.get_mut(jk).expect("live job");
            j.calls.reserve(targets.len());
            j.replica
        };
        for &target in targets {
            let ci = {
                let j = self.jobs.get_mut(jk).expect("live job");
                let ci = j.calls.len();
                j.calls.push(ChildCall {
                    service: target,
                    start: now,
                    end: SimTime::MAX,
                });
                j.child_spans.push(Vec::new());
                j.pending_children += 1;
                ci
            };
            let acquired = match self.rep_key(replica) {
                None => true,
                Some(rk) => {
                    let r = self.replicas.get_mut(rk).expect("live replica");
                    match r.conns.get_mut(&target) {
                        Some(pool) => {
                            if pool.try_acquire() {
                                true
                            } else {
                                pool.waiters.push_back(ConnWaiter {
                                    request: jk,
                                    frame: 0,
                                    call_idx: ci,
                                });
                                false
                            }
                        }
                        None => true,
                    }
                }
            };
            if acquired {
                self.send_call(ctx, now, jk, ci, target);
            }
        }
    }

    fn send_call(&mut self, ctx: &EngCtx, now: SimTime, jk: SlabKey, ci: usize, target: ServiceId) {
        let Some((request, rtype, sid, span, deadline, issued)) = self
            .jobs
            .get(jk)
            .map(|j| (j.request, j.rtype, j.service, j.span, j.deadline, j.issued))
        else {
            return;
        };
        let net = {
            let svc = self.svc_mut(sid);
            ctx.config.net_delay.sample(&mut svc.rng)
        };
        let key = self.fresh_key(sid);
        let msg = Msg::Call(CallMsg {
            request,
            rtype,
            target,
            parent: Some(ParentRef {
                shard: self.idx,
                job: jk,
                call_idx: ci as u32,
            }),
            span: child_span(span, ci),
            parent_span: Some(span),
            attempt: 0,
            deadline,
            issued,
        });
        let dst = ctx.shard_of[target.get() as usize];
        self.send_to_shard(ctx, now + net, key, dst, msg);
    }

    fn on_reply(&mut self, ctx: &EngCtx, now: SimTime, to: ParentRef, spans: Option<Vec<Span>>) {
        debug_assert_eq!(to.shard, self.idx, "reply routed to wrong shard");
        let jk = to.job;
        if !self.jobs.contains(jk) {
            return; // stale: the waiting job finished, timed out or died
        }
        match spans {
            None => self.fail_job(ctx, now, jk),
            Some(sp) => {
                let ci = to.call_idx as usize;
                let (replica, target, ready) = {
                    let j = self.jobs.get_mut(jk).expect("live job");
                    j.calls[ci].end = now;
                    j.child_spans[ci] = sp;
                    j.pending_children -= 1;
                    (j.replica, j.calls[ci].service, j.pending_children == 0)
                };
                self.release_conn(ctx, now, replica, target);
                if ready && self.jobs.contains(jk) {
                    self.jobs.get_mut(jk).expect("live job").stage += 1;
                    self.run_stages(ctx, now, jk);
                }
            }
        }
    }

    fn complete_job(&mut self, ctx: &EngCtx, now: SimTime, jk: SlabKey) {
        let Some(job) = self.jobs.remove(jk) else {
            return;
        };
        let span_rt = now - job.arrival;
        if let Some(rk) = self.rep_key(job.replica) {
            let blackout = self.blackout;
            let r = self.replicas.get_mut(rk).expect("live replica");
            r.concurrency.leave(now);
            match blackout {
                None => {
                    r.completions.record(now, span_rt);
                    r.span_p99.observe(span_rt.as_millis_f64());
                }
                Some(BlackoutMode::Lag) => {
                    self.lag_completions.push((job.replica, now, span_rt));
                }
                Some(BlackoutMode::Drop) => {}
            }
            r.threads.release();
        }
        self.drain_thread_queue(ctx, now, job.replica);
        self.maybe_reap_drained(now, job.replica);

        let mut spans = Vec::with_capacity(1 + job.child_spans.iter().map(Vec::len).sum::<usize>());
        spans.push(Span {
            id: job.span,
            request: job.request,
            service: job.service,
            replica: job.replica,
            parent: job.parent_span,
            arrival: job.arrival,
            service_start: job.started.unwrap_or(job.arrival),
            departure: now,
            children: job.calls,
        });
        for cs in job.child_spans {
            spans.extend(cs);
        }
        let net = {
            let svc = self.svc_mut(job.service);
            ctx.config.net_delay.sample(&mut svc.rng)
        };
        match job.parent {
            Some(parent) => {
                let key = self.fresh_key(job.service);
                self.send_to_shard(
                    ctx,
                    now + net,
                    key,
                    parent.shard,
                    Msg::Reply {
                        to: parent,
                        spans: Some(spans),
                    },
                );
            }
            None => {
                let completed = now + net;
                let response_time = completed - job.issued;
                let trace = Trace {
                    request: job.request,
                    request_type: job.rtype,
                    spans,
                };
                match self.blackout {
                    None => self.out_traces.push((completed, job.key, trace)),
                    Some(BlackoutMode::Lag) => self.lag_traces.push((job.key, trace)),
                    Some(BlackoutMode::Drop) => {}
                }
                self.out_completions.push((
                    completed,
                    job.key,
                    Completion {
                        request: job.request,
                        rtype: job.rtype,
                        issued: job.issued,
                        completed,
                        response_time,
                    },
                ));
                self.live_roots -= 1;
            }
        }
    }

    /// Aborts a job after a failed subtree (error reply), propagating the
    /// error to its own parent — or recording the drop if it is the root.
    fn fail_job(&mut self, ctx: &EngCtx, now: SimTime, jk: SlabKey) {
        self.release_job_resources(ctx, now, jk);
        let Some(job) = self.jobs.remove(jk) else {
            return;
        };
        match job.parent {
            Some(parent) => {
                let net = {
                    let svc = self.svc_mut(job.service);
                    ctx.config.net_delay.sample(&mut svc.rng)
                };
                let key = self.fresh_key(job.service);
                self.send_to_shard(
                    ctx,
                    now + net,
                    key,
                    parent.shard,
                    Msg::Reply {
                        to: parent,
                        spans: None,
                    },
                );
            }
            None => {
                self.out_drops
                    .push((now, job.key, job.request, DropReason::RetriesExhausted));
                self.live_roots -= 1;
            }
        }
    }

    fn on_deadline_kill(&mut self, ctx: &EngCtx, now: SimTime, jk: SlabKey) {
        if !self.jobs.contains(jk) {
            return;
        }
        self.release_job_resources(ctx, now, jk);
        let Some(job) = self.jobs.remove(jk) else {
            return;
        };
        if job.parent.is_none() {
            self.out_drops
                .push((now, job.key, job.request, DropReason::ClientTimeout));
            self.live_roots -= 1;
        }
    }

    /// Returns every soft resource a job holds: its worker thread (or queue
    /// slot), any in-flight CPU work, and the connections of open calls.
    fn release_job_resources(&mut self, ctx: &EngCtx, now: SimTime, jk: SlabKey) {
        let Some((replica, started, open_calls)) = self.jobs.get(jk).map(|j| {
            (
                j.replica,
                j.started.is_some(),
                j.calls
                    .iter()
                    .filter(|c| c.end == SimTime::MAX)
                    .map(|c| c.service)
                    .collect::<Vec<_>>(),
            )
        }) else {
            return;
        };
        if started {
            if let Some(rk) = self.rep_key(replica) {
                {
                    let r = self.replicas.get_mut(rk).expect("live replica");
                    r.concurrency.leave(now);
                    r.threads.release();
                    let cancel = r
                        .jobs
                        .iter()
                        .find(|&(_, &(rq, _))| rq == jk)
                        .map(|(&cj, _)| cj);
                    if let Some(cj) = cancel {
                        r.jobs.remove(&cj);
                        r.cpu.cancel(now, cj);
                    }
                }
                self.schedule_cpu(now, replica);
                self.drain_thread_queue(ctx, now, replica);
            }
        } else if let Some(rk) = self.rep_key(replica) {
            let r = self.replicas.get_mut(rk).expect("live replica");
            r.threads.queue.retain(|&(rq, _)| rq != jk);
        }
        if let Some(rk) = self.rep_key(replica) {
            let r = self.replicas.get_mut(rk).expect("live replica");
            for target in &open_calls {
                if let Some(pool) = r.conns.get_mut(target) {
                    let before = pool.waiters.len();
                    pool.waiters.retain(|w| w.request != jk);
                    if pool.waiters.len() == before {
                        pool.release();
                    }
                }
            }
        }
        for target in open_calls {
            self.drain_conn_waiters(ctx, now, replica, target);
        }
        self.maybe_reap_drained(now, replica);
    }

    fn release_conn(&mut self, ctx: &EngCtx, now: SimTime, replica: ReplicaId, target: ServiceId) {
        let released = self.rep_key(replica).is_some_and(|rk| {
            let r = self.replicas.get_mut(rk).expect("live replica");
            if let Some(pool) = r.conns.get_mut(&target) {
                pool.release();
                true
            } else {
                false
            }
        });
        if released {
            self.drain_conn_waiters(ctx, now, replica, target);
        }
    }

    fn drain_conn_waiters(
        &mut self,
        ctx: &EngCtx,
        now: SimTime,
        replica: ReplicaId,
        target: ServiceId,
    ) {
        loop {
            let waiter = {
                let Some(rk) = self.rep_key(replica) else {
                    return;
                };
                let Some(r) = self.replicas.get_mut(rk) else {
                    return;
                };
                let Some(pool) = r.conns.get_mut(&target) else {
                    return;
                };
                match pool.grant_next() {
                    Some(w) => {
                        if self.jobs.contains(w.request) {
                            Some(w)
                        } else {
                            pool.release(); // dead waiter: free the slot, try next
                            continue;
                        }
                    }
                    None => None,
                }
            };
            match waiter {
                Some(w) => self.send_call(ctx, now, w.request, w.call_idx, target),
                None => return,
            }
        }
    }

    fn drain_thread_queue(&mut self, ctx: &EngCtx, now: SimTime, replica: ReplicaId) {
        loop {
            let next = {
                let Some(rk) = self.rep_key(replica) else {
                    return;
                };
                let Some(r) = self.replicas.get_mut(rk) else {
                    return;
                };
                match r.threads.admit_next() {
                    Some((jk, _)) => {
                        if self.jobs.contains(jk) {
                            Some(jk)
                        } else {
                            r.threads.release(); // dead entry: free thread, try next
                            continue;
                        }
                    }
                    None => None,
                }
            };
            match next {
                Some(jk) => self.start_job(ctx, now, jk),
                None => return,
            }
        }
    }

    fn on_cpu_done(&mut self, ctx: &EngCtx, now: SimTime, replica: ReplicaId, epoch: u64) {
        let Some(rk) = self.rep_key(replica) else {
            return;
        };
        let mut work = std::mem::take(&mut self.cpu_work_scratch);
        let mut finished = std::mem::take(&mut self.cpu_jobs_scratch);
        {
            let r = self.replicas.get_mut(rk).expect("live replica");
            if epoch != r.cpu.epoch() {
                self.cpu_work_scratch = work;
                self.cpu_jobs_scratch = finished;
                return;
            }
            r.cpu.advance(now);
            r.cpu.take_finished_into(&mut finished);
            for cj in finished.drain(..) {
                if let Some((jk, _)) = r.jobs.remove(&cj) {
                    work.push(jk);
                }
            }
        }
        for jk in work.drain(..) {
            if self.jobs.contains(jk) {
                self.jobs.get_mut(jk).expect("live job").stage += 1;
                self.run_stages(ctx, now, jk);
            }
        }
        self.cpu_work_scratch = work;
        self.cpu_jobs_scratch = finished;
        if self.rep_key(replica).is_some() {
            self.schedule_cpu(now, replica);
        }
    }

    fn schedule_cpu(&mut self, now: SimTime, replica: ReplicaId) {
        let Some(rk) = self.rep_key(replica) else {
            return;
        };
        let (next, sid) = {
            let r = self.replicas.get_mut(rk).expect("live replica");
            r.cpu.advance(now);
            (
                r.cpu.next_completion().map(|(t, _)| (t, r.cpu.epoch())),
                r.service,
            )
        };
        if let Some((t, epoch)) = next {
            let key = self.fresh_key(sid);
            self.wheel
                .schedule(t, key, SEvent::CpuDone { replica, epoch });
        }
    }

    // -- crash support --------------------------------------------------

    /// Requests with at least one job on `victim` (the crash blast radius).
    fn collect_victim_requests(&self, victim: ReplicaId) -> BTreeSet<RequestId> {
        self.jobs
            .iter()
            .filter(|(_, j)| j.replica == victim)
            .map(|(_, j)| j.request)
            .collect()
    }

    /// Kills every local job belonging to `affected`, in `(request, key)`
    /// order — an order that is shard-count invariant because each job's
    /// key is partition-independent. Returns the requests whose *root* job
    /// was among the killed (their drop is recorded by the coordinator).
    fn kill_requests(
        &mut self,
        ctx: &EngCtx,
        now: SimTime,
        affected: &BTreeSet<RequestId>,
    ) -> BTreeSet<RequestId> {
        self.dead.extend(affected.iter().copied());
        let mut kill: Vec<(RequestId, u64, SlabKey)> = self
            .jobs
            .iter()
            .filter(|(_, j)| affected.contains(&j.request))
            .map(|(k, j)| (j.request, j.key, k))
            .collect();
        kill.sort_unstable_by_key(|&(r, k, _)| (r, k));
        let mut roots = BTreeSet::new();
        for (_, _, jk) in kill {
            if !self.jobs.contains(jk) {
                continue; // completed while a sibling's kill drained queues
            }
            self.release_job_resources(ctx, now, jk);
            if let Some(job) = self.jobs.remove(jk) {
                if job.parent.is_none() {
                    roots.insert(job.request);
                    self.live_roots -= 1;
                }
            }
        }
        roots
    }

    /// Ends a telemetry blackout: flushes lagged samples into the replica
    /// trackers (in buffered order) and releases lagged traces at `now`.
    fn end_blackout(&mut self, now: SimTime) {
        self.blackout = None;
        let comps = std::mem::take(&mut self.lag_completions);
        for (rep, t, rt) in comps {
            if let Some(rk) = self.rep_key(rep) {
                let r = self.replicas.get_mut(rk).expect("live replica");
                r.completions.record(t, rt);
                r.span_p99.observe(rt.as_millis_f64());
            }
        }
        let traces = std::mem::take(&mut self.lag_traces);
        for (key, trace) in traces {
            self.out_traces.push((now, key, trace));
        }
    }

    // -- window execution ----------------------------------------------

    /// Processes every event strictly before `end_nanos`.
    fn process_window(&mut self, ctx: &EngCtx, end_nanos: u64) {
        if end_nanos == 0 {
            return;
        }
        let bound = SimTime::from_nanos(end_nanos - 1);
        while let Some((now, key, ev)) = self.wheel.pop_before(bound) {
            self.dispatch(ctx, now, key, ev);
        }
    }

    /// Earliest pending event time in nanoseconds (`u64::MAX` if idle).
    fn earliest(&self) -> u64 {
        self.wheel.peek().map_or(u64::MAX, |(t, _)| t.as_nanos())
    }
}

// ---------------------------------------------------------------------
// Window runners
// ---------------------------------------------------------------------

/// Minimum estimated window count before a segment is worth threading.
const PAR_MIN_WINDOWS: u64 = 4;

/// Sequential window loop: interleaves shards window by window, following
/// exactly the same window sequence (including window skips) as the
/// threaded runner — which is what makes the two byte-identical.
///
/// Returns the segment's *critical-path* event count: the sum over windows
/// of the maximum per-shard events dispatched in that window, i.e. the
/// makespan (in events) of an idealised run with one core per shard. The
/// threaded runner computes the identical number, so it is deterministic
/// across both runners and usable as a portable parallelism metric.
fn run_windows_seq(
    shards: &mut [ShardCore],
    ctx: &EngCtx,
    seg_start: u64,
    end: u64,
    lookahead: u64,
) -> u64 {
    let mut crit: u64 = 0;
    let mut w: u64 = 0;
    loop {
        let wstart = seg_start + w.saturating_mul(lookahead);
        if wstart >= end {
            break;
        }
        let wend = (wstart + lookahead).min(end);
        let mut wmax: u64 = 0;
        for sc in shards.iter_mut() {
            let before = sc.events_dispatched;
            sc.process_window(ctx, wend);
            wmax = wmax.max(sc.events_dispatched - before);
        }
        crit += wmax;
        for sc in shards.iter_mut() {
            sc.drain_inbox(ctx);
        }
        let e = shards
            .iter()
            .map(ShardCore::earliest)
            .min()
            .unwrap_or(u64::MAX);
        if e >= end {
            break;
        }
        w = (w + 1).max((e - seg_start) / lookahead);
    }
    crit
}

/// Threaded window loop: one scoped worker per shard, two barriers per
/// round (A: process window; B: drain inbox + agree on the earliest
/// pending event so all workers skip empty windows identically).
///
/// Returns the same critical-path event count as [`run_windows_seq`].
fn run_windows_par(
    shards: &mut [ShardCore],
    ctx: &EngCtx,
    seg_start: u64,
    end: u64,
    lookahead: u64,
) -> u64 {
    let barrier = Barrier::new(shards.len());
    // Double-buffered minimum/maximum, indexed by round parity. The
    // *other* parity is reset between the two barriers of round `r`: every
    // reader of that slot finished at round `r-1`'s second barrier (it
    // must then reach round `r`'s first barrier before the resetter can
    // pass it), so no race exists.
    let earliest = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
    let round_max = [AtomicU64::new(0), AtomicU64::new(0)];
    let crit = AtomicU64::new(0);
    let token = sim_core::allocmeter::current_scope();
    std::thread::scope(|s| {
        for (idx, sc) in shards.iter_mut().enumerate() {
            let barrier = &barrier;
            let earliest = &earliest;
            let round_max = &round_max;
            let crit = &crit;
            s.spawn(move || {
                let _adoption = sim_core::allocmeter::adopt(token);
                let mut w: u64 = 0;
                let mut round: usize = 0;
                loop {
                    let wstart = seg_start + w.saturating_mul(lookahead);
                    if wstart >= end {
                        break; // `w` is identical across workers: all break
                    }
                    let wend = (wstart + lookahead).min(end);
                    let before = sc.events_dispatched;
                    sc.process_window(ctx, wend);
                    round_max[round & 1].fetch_max(sc.events_dispatched - before, Ordering::AcqRel);
                    barrier.wait();
                    sc.drain_inbox(ctx);
                    earliest[round & 1].fetch_min(sc.earliest(), Ordering::AcqRel);
                    earliest[(round + 1) & 1].store(u64::MAX, Ordering::Release);
                    round_max[(round + 1) & 1].store(0, Ordering::Release);
                    barrier.wait();
                    if idx == 0 {
                        crit.fetch_add(
                            round_max[round & 1].load(Ordering::Acquire),
                            Ordering::AcqRel,
                        );
                    }
                    let e = earliest[round & 1].load(Ordering::Acquire);
                    if e >= end {
                        break; // identical `e` on every worker: all break
                    }
                    w = (w + 1).max((e - seg_start) / lookahead);
                    round += 1;
                }
            });
        }
    });
    crit.into_inner()
}

/// Processes the events at exactly the (inclusive) end of a span. All
/// messages *sent* at `t` are delivered at `t + lookahead` or later, so a
/// single local drain per shard suffices; the loop is defensive.
fn run_tail(shards: &mut [ShardCore], ctx: &EngCtx, t: SimTime) -> u64 {
    let mut crit: u64 = 0;
    loop {
        let mut any = false;
        let mut rmax: u64 = 0;
        for sc in shards.iter_mut() {
            let before = sc.events_dispatched;
            while let Some((now, key, ev)) = sc.wheel.pop_before(t) {
                sc.dispatch(ctx, now, key, ev);
                any = true;
            }
            rmax = rmax.max(sc.events_dispatched - before);
        }
        crit += rmax;
        for sc in shards.iter_mut() {
            sc.drain_inbox(ctx);
        }
        if !any {
            break;
        }
    }
    crit
}

// ---------------------------------------------------------------------
// ShardEngine: the coordinator
// ---------------------------------------------------------------------

/// A coordinator-applied action at a deterministic `(time, seq)` barrier.
/// Barriers fire *before* the events scheduled at the same instant.
#[derive(Debug, Clone)]
enum BarrierAction {
    Fault(FaultKind),
    PressureEnd(NodeId),
    BlackoutEnd,
    Restart(ServiceId),
}

/// The sharded world engine: shard partition, mailbox, barrier schedule,
/// merged global observables and the cluster bookkeeping that must stay
/// centralised (placement, node pressure, request identity).
pub(crate) struct ShardEngine {
    config: WorldConfig,
    lookahead: u64,
    shard_of: Vec<u32>,
    shards: Vec<ShardCore>,
    mail: Mailbox,
    clock: SimTime,
    barriers: BTreeMap<(u64, u64), BarrierAction>,
    barrier_seq: u64,
    client_seq: u64,
    fault_seq: u64,
    /// Critical-path events: Σ over windows of max per-shard dispatches.
    crit_events: u64,
    inject_rng: SimRng,
    cluster: ClusterState,
    node_pressure: BTreeMap<u32, f64>,
    next_request: u64,
    next_replica: u64,
    /// Dense `ReplicaId → ServiceId.get()` (`u32::MAX` = retired/unknown).
    replica_service: Vec<u32>,
    warehouse: TraceWarehouse,
    client: ClientLog,
    client_by_type: Vec<ClientLog>,
    dropped: u64,
    dropped_log: Vec<(RequestId, DropReason)>,
    drop_breakdown: DropBreakdown,
    fault_log: Vec<(SimTime, String)>,
    /// Drops decided at barriers (crash kills), keyed from the fault
    /// sequence so they merge deterministically with shard drops.
    coord_drops: Vec<(SimTime, u64, RequestId, DropReason)>,
    #[cfg(feature = "audit")]
    audit_sink: sim_core::audit::CountingSink,
    #[cfg(feature = "audit")]
    audit_next_boundary: SimTime,
}

impl ShardEngine {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: WorldConfig,
        plan: &[Range<usize>],
        n_services: usize,
        rng: &SimRng,
        cluster: ClusterState,
        warehouse: TraceWarehouse,
        client: ClientLog,
        client_by_type: Vec<ClientLog>,
    ) -> Result<Box<ShardEngine>, ShardError> {
        ShardEngine::validate(&config, plan, n_services)?;
        let lookahead = config.net_delay.lower_bound().as_nanos();
        let mut shard_of = Vec::with_capacity(n_services);
        for (k, r) in plan.iter().enumerate() {
            shard_of.extend(r.clone().map(|_| k as u32));
        }
        let shards: Vec<ShardCore> = plan
            .iter()
            .enumerate()
            .map(|(k, r)| ShardCore::new(k as u32, r, rng))
            .collect();
        let mail = Mailbox::new(plan.len());
        Ok(Box::new(ShardEngine {
            config,
            lookahead,
            shard_of,
            shards,
            mail,
            clock: SimTime::ZERO,
            barriers: BTreeMap::new(),
            barrier_seq: 0,
            client_seq: 0,
            fault_seq: 0,
            crit_events: 0,
            inject_rng: rng.split("shard-inject"),
            cluster,
            node_pressure: BTreeMap::new(),
            next_request: 0,
            next_replica: 0,
            replica_service: Vec::new(),
            warehouse,
            client,
            client_by_type,
            dropped: 0,
            dropped_log: Vec::new(),
            drop_breakdown: DropBreakdown::default(),
            fault_log: Vec::new(),
            coord_drops: Vec::new(),
            #[cfg(feature = "audit")]
            audit_sink: sim_core::audit::CountingSink::default(),
            #[cfg(feature = "audit")]
            audit_next_boundary: SimTime::ZERO,
        }))
    }

    pub(crate) fn set_next_replica(&mut self, next: u64) {
        self.next_replica = next;
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn lookahead_nanos(&self) -> u64 {
        self.lookahead
    }

    pub(crate) fn requests_injected(&self) -> u64 {
        self.next_request
    }

    pub(crate) fn add_node(&mut self, capacity: Millicores) {
        self.cluster.add_node(capacity);
    }

    /// Checks everything `new` would reject, without consuming any state —
    /// so `World::enable_sharding` can validate *before* moving its
    /// observability state into the engine.
    pub(crate) fn validate(
        config: &WorldConfig,
        plan: &[Range<usize>],
        n_services: usize,
    ) -> Result<(), ShardError> {
        if plan.is_empty() {
            return Err(ShardError::BadPlan("empty plan".into()));
        }
        let mut cursor = 0usize;
        for r in plan {
            if r.start != cursor || r.is_empty() {
                return Err(ShardError::BadPlan(format!(
                    "range {}..{} does not continue contiguously from {cursor}",
                    r.start, r.end
                )));
            }
            cursor = r.end;
        }
        if cursor != n_services {
            return Err(ShardError::BadPlan(format!(
                "plan covers {cursor} of {n_services} services"
            )));
        }
        if config.net_delay.lower_bound().as_nanos() == 0 {
            return Err(ShardError::ZeroLookahead);
        }
        Ok(())
    }

    fn owner(&self, id: ReplicaId) -> Option<usize> {
        let sid = *self.replica_service.get(id.get() as usize)?;
        if sid == u32::MAX {
            None
        } else {
            Some(self.shard_of[sid as usize] as usize)
        }
    }

    // -- replica lifecycle ---------------------------------------------

    /// Adopts a replica created by the classic engine before sharding was
    /// enabled: fresh soft-resource state (nothing has run yet — enabling
    /// is only legal at time zero) with the service's current limits.
    /// Starting replicas get a fresh readiness event from the service's
    /// own startup stream.
    pub(crate) fn adopt_replica(
        &mut self,
        services: &[ServiceRuntime],
        service: ServiceId,
        id: ReplicaId,
        state: ReplicaState,
    ) {
        let sid = service.get() as usize;
        let rt = &services[sid];
        let rep = Replica::new(
            id,
            service,
            rt.cpu_limit,
            rt.spec.csw_overhead,
            rt.thread_limit,
            &rt.conn_limits,
            self.config.metrics_horizon,
        );
        let idx = id.get() as usize;
        if self.replica_service.len() <= idx {
            self.replica_service.resize(idx + 1, u32::MAX);
        }
        self.replica_service[idx] = service.get();
        let shard = self.shard_of[sid] as usize;
        let clock = self.clock;
        let ShardEngine { shards, config, .. } = self;
        let sc = &mut shards[shard];
        sc.install(id, rep, state);
        if state == ReplicaState::Starting {
            let delay = {
                let svc = sc.svc_mut(service);
                config.replica_startup.sample(&mut svc.rng)
            };
            let key = sc.fresh_key(service);
            sc.wheel
                .schedule(clock + delay, key, SEvent::ReplicaReady { replica: id });
        }
    }

    pub(crate) fn add_replica(
        &mut self,
        services: &[ServiceRuntime],
        service: ServiceId,
    ) -> Result<ReplicaId, PlacementError> {
        if self.cluster.nodes().is_empty() {
            self.cluster.add_node(Millicores::from_cores(1_000_000));
        }
        let sid = service.get() as usize;
        let rt = &services[sid];
        let id = ReplicaId(self.next_replica);
        self.cluster.place(id.get(), rt.cpu_limit)?;
        self.next_replica += 1;
        let mut rep = Replica::new(
            id,
            service,
            rt.cpu_limit,
            rt.spec.csw_overhead,
            rt.thread_limit,
            &rt.conn_limits,
            self.config.metrics_horizon,
        );
        if let Some(placement) = self.cluster.placement(id.get()) {
            if let Some(&factor) = self.node_pressure.get(&placement.node.0) {
                rep.cpu.set_pressure(self.clock, factor);
            }
        }
        let idx = id.get() as usize;
        if self.replica_service.len() <= idx {
            self.replica_service.resize(idx + 1, u32::MAX);
        }
        self.replica_service[idx] = service.get();
        let shard = self.shard_of[sid] as usize;
        let clock = self.clock;
        let ShardEngine { shards, config, .. } = self;
        let sc = &mut shards[shard];
        sc.install(id, rep, ReplicaState::Starting);
        let delay = {
            let svc = sc.svc_mut(service);
            config.replica_startup.sample(&mut svc.rng)
        };
        let key = sc.fresh_key(service);
        sc.wheel
            .schedule(clock + delay, key, SEvent::ReplicaReady { replica: id });
        Ok(id)
    }

    pub(crate) fn make_ready(&mut self, id: ReplicaId) {
        if let Some(shard) = self.owner(id) {
            self.shards[shard].make_ready(id);
        }
    }

    pub(crate) fn drain_replica(
        &mut self,
        service: ServiceId,
        min_keep: usize,
    ) -> Option<ReplicaId> {
        let shard = self.shard_of[service.get() as usize] as usize;
        let clock = self.clock;
        let live: Vec<ReplicaId> = {
            let sc = &self.shards[shard];
            sc.svc(service)
                .replicas
                .iter()
                .copied()
                .filter(|&id| sc.state_of(id) != Some(ReplicaState::Draining))
                .collect()
        };
        if live.len() <= min_keep {
            return None;
        }
        let victim = *live.last().expect("non-empty live set");
        let sc = &mut self.shards[shard];
        sc.set_state(victim, ReplicaState::Draining);
        if sc.rep(victim).is_some_and(Replica::is_idle) {
            sc.remove_replica_final(clock, victim);
        }
        Some(victim)
    }

    /// Fails a replica immediately: kills every request with a job on it
    /// (everywhere — in `(request, key)` order so the outcome is
    /// shard-count invariant), suppresses the requests' in-flight calls,
    /// records one `ReplicaFailed` drop per killed *root*, and retires the
    /// victim.
    pub(crate) fn kill_replica(
        &mut self,
        bt: SimTime,
        victim: ReplicaId,
        services: &mut [ServiceRuntime],
    ) {
        let Some(vshard) = self.owner(victim) else {
            return;
        };
        let affected = self.shards[vshard].collect_victim_requests(victim);
        let mut roots = BTreeSet::new();
        {
            let ShardEngine {
                shards,
                config,
                shard_of,
                mail,
                ..
            } = self;
            let ctx = EngCtx {
                services: &*services,
                config,
                shard_of,
                mail,
            };
            for sc in shards.iter_mut() {
                roots.extend(sc.kill_requests(&ctx, bt, &affected));
            }
            shards[vshard].set_state(victim, ReplicaState::Draining);
            shards[vshard].remove_replica_final(bt, victim);
        }
        for req in roots {
            let key = pack(FAULT_SRC, self.fault_seq);
            self.fault_seq += 1;
            self.coord_drops
                .push((bt, key, req, DropReason::ReplicaFailed));
        }
        self.settle_retired(services);
    }

    /// Applies buffered replica retirements: cluster deallocation and the
    /// service-level busy-core carryover. Sorted by replica id so the
    /// cluster mutation order is shard-count invariant.
    pub(crate) fn settle_retired(&mut self, services: &mut [ServiceRuntime]) {
        let mut retired: Vec<(ServiceId, ReplicaId, f64)> = Vec::new();
        for sc in self.shards.iter_mut() {
            retired.append(&mut sc.retired);
        }
        if retired.is_empty() {
            return;
        }
        retired.sort_unstable_by_key(|&(_, id, _)| id);
        for (sid, id, busy) in retired {
            let _ = self.cluster.remove(id.get());
            let idx = id.get() as usize;
            if idx < self.replica_service.len() {
                self.replica_service[idx] = u32::MAX;
            }
            services[sid.get() as usize].retired_busy_nanos += busy;
        }
    }

    // -- soft-resource actuation ---------------------------------------

    pub(crate) fn set_thread_limit(
        &mut self,
        services: &mut [ServiceRuntime],
        service: ServiceId,
        limit: usize,
    ) {
        let sid = service.get() as usize;
        services[sid].thread_limit = limit;
        let shard = self.shard_of[sid] as usize;
        let clock = self.clock;
        let ShardEngine {
            shards,
            config,
            shard_of,
            mail,
            ..
        } = self;
        let ctx = EngCtx {
            services: &*services,
            config,
            shard_of,
            mail,
        };
        let sc = &mut shards[shard];
        let ids = sc.svc(service).replicas.clone();
        for id in ids {
            if let Some(rk) = sc.rep_key(id) {
                sc.replicas.get_mut(rk).expect("live replica").threads.limit = limit;
            }
            sc.drain_thread_queue(&ctx, clock, id);
        }
    }

    pub(crate) fn set_conn_limit(
        &mut self,
        services: &mut [ServiceRuntime],
        service: ServiceId,
        target: ServiceId,
        limit: usize,
    ) {
        let sid = service.get() as usize;
        services[sid].conn_limits.insert(target, limit);
        let shard = self.shard_of[sid] as usize;
        let clock = self.clock;
        let ShardEngine {
            shards,
            config,
            shard_of,
            mail,
            ..
        } = self;
        let ctx = EngCtx {
            services: &*services,
            config,
            shard_of,
            mail,
        };
        let sc = &mut shards[shard];
        let ids = sc.svc(service).replicas.clone();
        for id in ids {
            if let Some(rk) = sc.rep_key(id) {
                let r = sc.replicas.get_mut(rk).expect("live replica");
                let pool = r.conns.entry(target).or_insert_with(|| ConnPool {
                    limit,
                    in_use: 0,
                    waiters: Default::default(),
                });
                pool.limit = limit;
            }
            sc.drain_conn_waiters(&ctx, clock, id, target);
        }
    }

    pub(crate) fn set_cpu_limit(
        &mut self,
        services: &mut [ServiceRuntime],
        service: ServiceId,
        limit: Millicores,
    ) -> Result<(), PlacementError> {
        let sid = service.get() as usize;
        services[sid].cpu_limit = limit;
        let shard = self.shard_of[sid] as usize;
        let clock = self.clock;
        let ids = self.shards[shard].svc(service).replicas.clone();
        let mut result = Ok(());
        for id in ids {
            if let Err(e) = self.cluster.resize(id.get(), limit) {
                result = Err(e);
                break;
            }
            let sc = &mut self.shards[shard];
            if let Some(rk) = sc.rep_key(id) {
                sc.replicas
                    .get_mut(rk)
                    .expect("live replica")
                    .cpu
                    .set_limit(clock, limit);
            }
            sc.schedule_cpu(clock, id);
        }
        result
    }

    // -- workload -------------------------------------------------------

    pub(crate) fn inject_at(
        &mut self,
        at: SimTime,
        rtype: RequestTypeId,
        spec: &RequestTypeSpec,
    ) -> RequestId {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        let arrive = at + self.config.net_delay.sample(&mut self.inject_rng);
        let key = pack(CLIENT_SRC, self.client_seq);
        self.client_seq += 1;
        let deadline = spec.timeout.map(|t| at + t);
        let shard = self.shard_of[spec.entry.get() as usize] as usize;
        let sc = &mut self.shards[shard];
        sc.pending_roots += 1;
        match deadline {
            // The ingress latency alone blows the deadline: the request is
            // abandoned at the deadline without ever reaching the cluster.
            Some(d) if arrive >= d => sc.wheel.schedule(d, key, SEvent::PureDrop { request: id }),
            _ => sc.wheel.schedule(
                arrive,
                key,
                SEvent::Msg(Msg::Call(CallMsg {
                    request: id,
                    rtype,
                    target: spec.entry,
                    parent: None,
                    span: root_span(id),
                    parent_span: None,
                    attempt: 0,
                    deadline,
                    issued: at,
                })),
            ),
        }
        id
    }

    // -- faults as barriers --------------------------------------------

    pub(crate) fn push_fault(&mut self, at: SimTime, kind: FaultKind) {
        self.push_barrier(at, BarrierAction::Fault(kind));
    }

    fn push_barrier(&mut self, at: SimTime, act: BarrierAction) {
        let seq = self.barrier_seq;
        self.barrier_seq += 1;
        self.barriers.insert((at.as_nanos(), seq), act);
    }

    fn apply_barrier(&mut self, bt: SimTime, act: BarrierAction, services: &mut [ServiceRuntime]) {
        self.settle_retired(services);
        match act {
            BarrierAction::Fault(kind) => self.apply_fault(bt, kind, services),
            BarrierAction::PressureEnd(node) => {
                self.fault_log
                    .push((bt, format!("cpu pressure node {} lifted", node.0)));
                self.node_pressure.remove(&node.0);
                self.apply_node_pressure(bt, node, 1.0);
            }
            BarrierAction::BlackoutEnd => {
                let lagged = self
                    .shards
                    .iter()
                    .any(|s| matches!(s.blackout, Some(BlackoutMode::Lag)));
                let count: usize = if lagged {
                    self.shards.iter().map(|s| s.lag_completions.len()).sum()
                } else {
                    0
                };
                self.fault_log.push((
                    bt,
                    format!("telemetry blackout ends ({count} lagged samples delivered)"),
                ));
                for sc in self.shards.iter_mut() {
                    sc.end_blackout(bt);
                }
            }
            BarrierAction::Restart(service) => {
                let name = services[service.get() as usize].spec.name.clone();
                match self.add_replica(services, service) {
                    Ok(id) => self
                        .fault_log
                        .push((bt, format!("restart {name} as replica {id}"))),
                    Err(e) => self
                        .fault_log
                        .push((bt, format!("restart {name} failed: {e}"))),
                }
            }
        }
    }

    fn apply_fault(&mut self, bt: SimTime, kind: FaultKind, services: &mut [ServiceRuntime]) {
        match kind {
            FaultKind::ReplicaCrash {
                service,
                restart_after,
            } => {
                let name = services[service.get() as usize].spec.name.clone();
                let shard = self.shard_of[service.get() as usize] as usize;
                let victim = {
                    let sc = &self.shards[shard];
                    sc.svc(service)
                        .replicas
                        .iter()
                        .copied()
                        .find(|&id| sc.state_of(id) == Some(ReplicaState::Ready))
                };
                match victim {
                    None => self
                        .fault_log
                        .push((bt, format!("crash {name}: no ready replica"))),
                    Some(victim) => {
                        self.fault_log
                            .push((bt, format!("crash {name} replica {victim}")));
                        self.kill_replica(bt, victim, services);
                        if let Some(delay) = restart_after {
                            self.push_barrier(bt + delay, BarrierAction::Restart(service));
                        }
                    }
                }
            }
            FaultKind::CpuPressure {
                node,
                factor,
                duration,
            } => {
                self.fault_log.push((
                    bt,
                    format!(
                        "cpu pressure node {} factor {factor} for {}s",
                        node.0,
                        duration.as_secs_f64()
                    ),
                ));
                self.node_pressure.insert(node.0, factor);
                self.apply_node_pressure(bt, node, factor);
                self.push_barrier(bt + duration, BarrierAction::PressureEnd(node));
            }
            FaultKind::TelemetryBlackout { mode, duration } => {
                self.fault_log.push((
                    bt,
                    format!(
                        "telemetry blackout ({mode:?}) for {}s",
                        duration.as_secs_f64()
                    ),
                ));
                for sc in self.shards.iter_mut() {
                    sc.blackout = Some(mode);
                }
                self.push_barrier(bt + duration, BarrierAction::BlackoutEnd);
            }
            FaultKind::Partition { a, b, .. } => {
                let an = services[a.get() as usize].spec.name.clone();
                let bn = services[b.get() as usize].spec.name.clone();
                self.fault_log.push((
                    bt,
                    format!("partition {an} <-> {bn} ignored (no network installed)"),
                ));
            }
            FaultKind::LinkSlow { a, b, .. } => {
                let an = services[a.get() as usize].spec.name.clone();
                let bn = services[b.get() as usize].spec.name.clone();
                self.fault_log.push((
                    bt,
                    format!("slow link {an} <-> {bn} ignored (no network installed)"),
                ));
            }
        }
    }

    fn apply_node_pressure(&mut self, bt: SimTime, node: NodeId, factor: f64) {
        let ShardEngine {
            shards, cluster, ..
        } = self;
        for sc in shards.iter_mut() {
            let mut ids: Vec<ReplicaId> = sc.replicas.iter().map(|(_, r)| r.id).collect();
            ids.sort_unstable();
            for id in ids {
                if cluster.placement(id.get()).is_some_and(|p| p.node == node) {
                    if let Some(rk) = sc.rep_key(id) {
                        sc.replicas
                            .get_mut(rk)
                            .expect("live replica")
                            .cpu
                            .set_pressure(bt, factor);
                        sc.schedule_cpu(bt, id);
                    }
                }
            }
        }
    }

    // -- the run loop ---------------------------------------------------

    /// Advances simulation to `t`, appending root completions to `out`.
    /// Structure: fire due barriers, advance in lookahead windows to the
    /// next barrier (events *at* a barrier instant run after it), repeat;
    /// finish with an inclusive tail at `t`, then merge the per-shard
    /// observable streams in `(time, key)` order.
    pub(crate) fn run_until_into(
        &mut self,
        t: SimTime,
        services: &mut [ServiceRuntime],
        out: &mut Vec<Completion>,
    ) {
        self.settle_retired(services);
        let tn = t.as_nanos();
        loop {
            while let Some((&(bt, _), _)) = self.barriers.first_key_value() {
                if bt <= self.clock.as_nanos() && bt <= tn {
                    let ((bt, _), act) = self.barriers.pop_first().expect("checked");
                    self.apply_barrier(SimTime::from_nanos(bt), act, services);
                } else {
                    break;
                }
            }
            let next_b = self
                .barriers
                .first_key_value()
                .map(|(&(bt, _), _)| bt)
                .filter(|&bt| bt <= tn);
            match next_b {
                Some(b) => {
                    self.advance_span(services, b, false);
                    self.clock = SimTime::from_nanos(b);
                }
                None => {
                    self.advance_span(services, tn, true);
                    if t > self.clock {
                        self.clock = t;
                    }
                    break;
                }
            }
        }
        self.merge_outputs(out);
        #[cfg(feature = "audit")]
        self.audit_run_boundary();
        self.settle_retired(services);
    }

    fn advance_span(&mut self, services: &[ServiceRuntime], end: u64, inclusive: bool) {
        let seg_start = self.clock.as_nanos();
        let ShardEngine {
            shards,
            config,
            shard_of,
            mail,
            lookahead,
            ..
        } = self;
        let ctx = EngCtx {
            services,
            config,
            shard_of,
            mail,
        };
        let mut crit: u64 = 0;
        if end > seg_start {
            let est_windows = (end - seg_start).div_ceil(*lookahead);
            crit += if shards.len() > 1 && est_windows >= PAR_MIN_WINDOWS {
                run_windows_par(shards, &ctx, seg_start, end, *lookahead)
            } else {
                run_windows_seq(shards, &ctx, seg_start, end, *lookahead)
            };
        }
        if inclusive {
            crit += run_tail(shards, &ctx, SimTime::from_nanos(end));
        }
        self.crit_events += crit;
    }

    /// Merges per-shard completion / drop / trace streams into the global
    /// observables in `(time, key)` order — the canonical order that makes
    /// warehouse sampling, client timelines and drop logs shard-count
    /// invariant.
    fn merge_outputs(&mut self, out: &mut Vec<Completion>) {
        let mut comps: Vec<(SimTime, u64, Completion)> = Vec::new();
        let mut drops: Vec<(SimTime, u64, RequestId, DropReason)> =
            std::mem::take(&mut self.coord_drops);
        let mut traces: Vec<(SimTime, u64, Trace)> = Vec::new();
        for sc in self.shards.iter_mut() {
            comps.append(&mut sc.out_completions);
            drops.append(&mut sc.out_drops);
            traces.append(&mut sc.out_traces);
        }
        comps.sort_unstable_by_key(|&(t, k, _)| (t, k));
        drops.sort_unstable_by_key(|&(t, k, _, _)| (t, k));
        traces.sort_unstable_by_key(|a| (a.0, a.1));
        for (_, _, c) in comps {
            self.client.record(c.completed, c.response_time);
            self.client_by_type[c.rtype.get() as usize].record(c.completed, c.response_time);
            out.push(c);
        }
        for (_, _, req, reason) in drops {
            self.dropped += 1;
            self.drop_breakdown.count(reason);
            self.dropped_log.push((req, reason));
        }
        for (_, _, trace) in traces {
            self.warehouse.push(trace);
        }
    }

    // -- observability ---------------------------------------------------

    pub(crate) fn now(&self) -> SimTime {
        self.clock
    }

    pub(crate) fn rep(&self, id: ReplicaId) -> Option<&Replica> {
        self.owner(id).and_then(|s| self.shards[s].rep(id))
    }

    pub(crate) fn state_of(&self, id: ReplicaId) -> Option<ReplicaState> {
        self.owner(id).and_then(|s| self.shards[s].state_of(id))
    }

    pub(crate) fn service_replicas(&self, service: ServiceId) -> &[ReplicaId] {
        let shard = self.shard_of[service.get() as usize] as usize;
        &self.shards[shard].svc(service).replicas
    }

    pub(crate) fn replica_count(&self) -> usize {
        self.shards.iter().map(|s| s.replicas.len()).sum()
    }

    pub(crate) fn events_dispatched(&self) -> u64 {
        self.shards.iter().map(|s| s.events_dispatched).sum()
    }

    pub(crate) fn critical_path_events(&self) -> u64 {
        self.crit_events
    }

    pub(crate) fn spans_created(&self) -> u64 {
        self.shards.iter().map(|s| s.spans_created).sum()
    }

    pub(crate) fn in_flight(&self) -> u64 {
        self.next_request - self.client.total() - self.dropped
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn drop_breakdown(&self) -> DropBreakdown {
        self.drop_breakdown
    }

    pub(crate) fn drain_dropped(&mut self) -> Vec<(RequestId, DropReason)> {
        std::mem::take(&mut self.dropped_log)
    }

    pub(crate) fn fault_log(&self) -> &[(SimTime, String)] {
        &self.fault_log
    }

    pub(crate) fn warehouse(&self) -> &TraceWarehouse {
        &self.warehouse
    }

    pub(crate) fn client(&self) -> &ClientLog {
        &self.client
    }

    pub(crate) fn client_of(&self, rtype: RequestTypeId) -> &ClientLog {
        &self.client_by_type[rtype.get() as usize]
    }

    pub(crate) fn node_of(&self, id: ReplicaId) -> Option<NodeId> {
        self.cluster.placement(id.get()).map(|p| p.node)
    }

    pub(crate) fn is_quiescent(&self) -> bool {
        self.shards.iter().all(|s| s.wheel.is_empty())
            && self.barriers.is_empty()
            && self.mail.is_empty()
    }

    pub(crate) fn cpu_busy_core_secs(
        &mut self,
        services: &mut [ServiceRuntime],
        service: ServiceId,
    ) -> f64 {
        self.settle_retired(services);
        let sid = service.get() as usize;
        let shard = self.shard_of[sid] as usize;
        let clock = self.clock;
        let mut total = services[sid].retired_busy_nanos;
        let sc = &mut self.shards[shard];
        let ids = sc.svc(service).replicas.clone();
        for id in ids {
            if let Some(rk) = sc.rep_key(id) {
                let r = sc.replicas.get_mut(rk).expect("live replica");
                r.cpu.advance(clock);
                total += r.cpu.busy_core_nanos();
            }
        }
        total / 1e9
    }

    #[cfg(feature = "audit")]
    pub(crate) fn audit(&self) -> &sim_core::audit::CountingSink {
        &self.audit_sink
    }

    /// Run-boundary audit: fold per-shard monotonicity violations into the
    /// global sink, check global request conservation (boundary-only: mid
    /// -window mailbox buffering makes a per-event check meaningless), and
    /// run the throttled per-replica resource audits.
    #[cfg(feature = "audit")]
    fn audit_run_boundary(&mut self) {
        use sim_core::audit::{AuditSink as _, Invariant, Violation};
        let clock = self.clock;
        let ShardEngine {
            shards,
            audit_sink,
            audit_next_boundary,
            warehouse,
            client,
            next_request,
            dropped,
            ..
        } = self;
        for sc in shards.iter_mut() {
            for v in std::mem::take(&mut sc.audit_violations) {
                audit_sink.record(v);
            }
        }
        let roots: u64 = shards.iter().map(|s| s.pending_roots + s.live_roots).sum();
        let accounted = client.total() + *dropped + roots;
        if *next_request != accounted {
            audit_sink.record(Violation {
                invariant: Invariant::RequestConservation,
                at_nanos: clock.as_nanos(),
                detail: format!(
                    "injected {} != completed {} + dropped {} + in-flight roots {}",
                    next_request,
                    client.total(),
                    dropped,
                    roots
                ),
            });
        }
        if clock >= *audit_next_boundary {
            *audit_next_boundary = clock + SimDuration::from_secs(1);
            for sc in shards.iter_mut() {
                let mut ids: Vec<ReplicaId> = sc.replicas.iter().map(|(_, r)| r.id).collect();
                ids.sort_unstable();
                for id in ids {
                    if let Some(rk) = sc.rep_key(id) {
                        let r = sc.replicas.get_mut(rk).expect("live replica");
                        r.concurrency.audit_into(clock, audit_sink);
                        r.cpu.audit_into(clock, audit_sink);
                    }
                }
            }
            warehouse.audit_into(clock, audit_sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{child_span, mix64, pack, root_span, CLIENT_SRC, FAULT_SRC};
    use crate::config::{Behavior, ServiceSpec, Stage, WorldConfig};
    use crate::world::World;
    use sim_core::{Dist, SimRng, SimTime};
    use telemetry::{RequestId, RequestTypeId, ServiceId, SpanId};

    #[test]
    fn packed_keys_are_unique_and_ordered() {
        let a = pack(0, 0);
        let b = pack(0, 1);
        let c = pack(1, 0);
        let d = pack(CLIENT_SRC, 7);
        let e = pack(FAULT_SRC, 7);
        assert!(a < b && b < c && c < d && d < e);
        let keys = [a, b, c, d, e];
        for (i, &x) in keys.iter().enumerate() {
            for &y in &keys[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn span_ids_differ_across_children() {
        let root = root_span(RequestId(3));
        let c0 = child_span(root, 0);
        let c1 = child_span(root, 1);
        assert_ne!(root, c0);
        assert_ne!(c0, c1);
        assert_ne!(child_span(c0, 0), child_span(c1, 0));
        // mix64 is bijective: distinct inputs cannot collide.
        assert_ne!(mix64(0), mix64(1));
        assert_eq!(SpanId(mix64(4)), root_span(RequestId(3)));
    }

    /// Four services (front -> mid -> {leaf_a, leaf_b}), steady load with
    /// timeouts: shards=1 and shards=2 must agree on every observable.
    fn run_sharded(shards: usize) -> (Vec<(u64, u64)>, u64, u64, u64) {
        let mut w = World::new(WorldConfig::default(), SimRng::seed_from(7));
        let rt = RequestTypeId(0);
        let leaf_a = ServiceId(2);
        let leaf_b = ServiceId(3);
        let mid = ServiceId(1);
        let front = w.add_service(ServiceSpec::new("front").threads(4).on(
            rt,
            Behavior::new(vec![Stage::compute_ms(1), Stage::call(mid)]),
        ));
        w.add_service(ServiceSpec::new("mid").threads(4).on(
            rt,
            Behavior::new(vec![
                Stage::fanout(vec![leaf_a, leaf_b]),
                Stage::compute_ms(1),
            ]),
        ));
        w.add_service(ServiceSpec::new("leaf-a").on(rt, Behavior::leaf(Dist::constant_ms(3))));
        w.add_service(ServiceSpec::new("leaf-b").on(rt, Behavior::leaf(Dist::constant_ms(5))));
        w.add_request_type_with_timeout(
            "GET /",
            front,
            Some(sim_core::SimDuration::from_millis(200)),
        );
        for sid in 0..4u32 {
            for _ in 0..2 {
                let id = w.add_replica(ServiceId(sid)).unwrap();
                w.make_ready(id);
            }
        }
        w.enable_sharding(shards).unwrap();
        for i in 0..200u64 {
            w.inject_at(SimTime::from_nanos(500_000 * i), rt);
        }
        let done = w.run_until(SimTime::from_secs(2));
        let obs: Vec<(u64, u64)> = done
            .iter()
            .map(|c| (c.request.get(), c.completed.as_nanos()))
            .collect();
        assert!(w.is_quiescent(), "requests still pending at t=2s");
        (obs, w.dropped(), w.events_dispatched(), w.spans_created())
    }

    #[test]
    fn one_and_two_shards_are_identical() {
        let a = run_sharded(1);
        let b = run_sharded(2);
        assert_eq!(a.0, b.0, "completion streams diverge");
        assert_eq!(a.1, b.1, "drop counts diverge");
        assert_eq!(a.2, b.2, "event counts diverge");
        assert_eq!(a.3, b.3, "span counts diverge");
        assert!(!a.0.is_empty());
    }

    #[test]
    fn four_shards_match_too() {
        assert_eq!(run_sharded(1), run_sharded(4));
    }
}
