//! Regression tests for request-abort edge cases.

use microsim::{Behavior, ServiceSpec, Stage, World, WorldConfig};
use sim_core::{Dist, SimRng, SimTime};
use telemetry::RequestTypeId;

/// Regression: a *completed* zero-duration child call (zero network delay
/// plus zero compute) used to be indistinguishable from an outstanding one —
/// `end == start` was the outstandingness sentinel — so aborting the parent
/// released the call's connection a second time: a "connection release
/// without acquire" debug assertion here, a silent pool-limit breach in
/// release builds. The sentinel is now `end == SimTime::MAX`.
#[test]
fn abort_after_zero_duration_call_releases_connection_once() {
    let config = WorldConfig {
        net_delay: Dist::constant_us(0),
        ..WorldConfig::default()
    };
    let mut w = World::new(config, SimRng::seed_from(7));
    let rt = RequestTypeId(0);
    // The child does zero compute: its span starts and ends at one instant.
    let child =
        w.add_service(ServiceSpec::new("child").on(rt, Behavior::leaf(Dist::constant_ms(0))));
    let parent = w.add_service(ServiceSpec::new("parent").conns(child, 2).on(
        rt,
        Behavior::new(vec![Stage::call(child), Stage::compute_ms(100)]),
    ));
    w.add_request_type("zero-call", parent);
    let child_pod = w.add_replica(child).unwrap();
    let parent_pod = w.add_replica(parent).unwrap();
    w.make_ready(child_pod);
    w.make_ready(parent_pod);

    w.inject_at(SimTime::from_millis(1), rt);
    // Let the zero-duration call complete; the parent is now mid-compute
    // with the call's connection already released on child return.
    w.run_until(SimTime::from_millis(50));
    // Kill the parent replica: the abort path walks the completed call.
    w.fail_replica(parent_pod);
    w.run_until(SimTime::from_millis(200));
    assert_eq!(w.dropped(), 1);
    assert_eq!(w.drop_breakdown().replica_failed, 1);
    assert_eq!(w.client().total(), 0);
}
