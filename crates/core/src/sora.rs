//! The Sora controller: the full adaptation loop of Fig. 8.

use crate::{
    ConcurrencyAdapter, ConcurrencyEstimator, Controller, EstimatorConfig, Monitor,
    ResourceRegistry,
};
use microsim::World;
use scg::{propagate_deadline, LocalizeConfig, ScgModel};
use sim_core::{SimDuration, SimTime};

/// Configuration of the Sora control loop.
#[derive(Debug, Clone)]
pub struct SoraConfig {
    /// The end-to-end SLA whose violation Sora mitigates (e.g. 400 ms in
    /// the paper's Figs. 10–12).
    pub sla: SimDuration,
    /// Critical-service localisation policy.
    pub localize: LocalizeConfig,
    /// Estimation pipeline tuning (sampling interval, window,
    /// latency-aware vs throughput-based).
    pub estimator: EstimatorConfig,
    /// Whether to explore upward when no knee is detected and the gated
    /// pool shows queued demand.
    pub explore_when_no_knee: bool,
    /// Exploration stops once the monitored service's CPU utilisation
    /// reaches this level: growing a pool cannot help a CPU-bound service,
    /// it only adds oversubscription overhead.
    pub explore_util_ceiling: f64,
    /// Whether to propagate the SLA along the critical path (eq. 3). When
    /// off, the critical service's goodput threshold is the raw SLA — an
    /// ablation quantifying what deadline propagation contributes.
    pub deadline_propagation: bool,
}

impl Default for SoraConfig {
    fn default() -> Self {
        SoraConfig {
            sla: SimDuration::from_millis(400),
            localize: LocalizeConfig::default(),
            estimator: EstimatorConfig::default(),
            explore_when_no_knee: true,
            explore_util_ceiling: 0.9,
            deadline_propagation: true,
        }
    }
}

/// Sora: latency-sensitive soft-resource adaptation layered over a
/// hardware-only autoscaler `H` (FIRM, HPA, VPA, or [`crate::NullController`]
/// for soft-only operation).
///
/// Each control period it (1) delegates to the hardware autoscaler,
/// (2) localises the critical service, (3) propagates the SLA into that
/// service's response-time threshold, (4) estimates the optimal
/// concurrency with the SCG model, and (5) actuates the owning soft
/// resource.
///
/// Constructing it with [`SoraController::conscale`] flips the estimator to
/// the throughput-based SCT model with no deadline propagation — the
/// ConScale baseline of §5.2.
pub struct SoraController<H> {
    name: &'static str,
    config: SoraConfig,
    monitor: Monitor,
    estimator: ConcurrencyEstimator,
    adapter: ConcurrencyAdapter,
    registry: ResourceRegistry,
    hardware: H,
    /// Log of `(time, resource-description, new setting)` actuations.
    actions: Vec<(SimTime, String, usize)>,
}

impl<H: Controller> SoraController<H> {
    /// Creates the latency-aware Sora controller.
    pub fn sora(config: SoraConfig, registry: ResourceRegistry, hardware: H) -> Self {
        let mut config = config;
        config.estimator.latency_aware = true;
        Self::build("sora", config, registry, hardware)
    }

    /// Creates the ConScale baseline: identical pipeline but the
    /// throughput-based SCT model and no latency awareness.
    pub fn conscale(config: SoraConfig, registry: ResourceRegistry, hardware: H) -> Self {
        let mut config = config;
        config.estimator.latency_aware = false;
        Self::build("conscale", config, registry, hardware)
    }

    fn build(
        name: &'static str,
        config: SoraConfig,
        registry: ResourceRegistry,
        hardware: H,
    ) -> Self {
        let monitor = Monitor::new(config.estimator.window);
        let estimator = ConcurrencyEstimator::new(config.estimator, ScgModel::default());
        SoraController {
            name,
            config,
            monitor,
            estimator,
            adapter: ConcurrencyAdapter::default(),
            registry,
            hardware,
            actions: Vec::new(),
        }
    }

    /// The actuation log: `(time, resource, new setting)` triples.
    pub fn actions(&self) -> &[(SimTime, String, usize)] {
        &self.actions
    }

    /// The wrapped hardware autoscaler.
    pub fn hardware(&self) -> &H {
        &self.hardware
    }

    /// Mutable access to the wrapped hardware autoscaler.
    pub fn hardware_mut(&mut self) -> &mut H {
        &mut self.hardware
    }
}

impl<H: Controller> Controller for SoraController<H> {
    fn control(&mut self, world: &mut World, now: SimTime) {
        // 1. Hardware scaling first (Reallocation Module ordering: the
        //    autoscaler signals, then the concurrency adapter follows).
        self.hardware.control(world, now);

        // 2. Observe and localise.
        let obs = self.monitor.observe(world, now);
        let Some(localized) = obs.critical_service(&self.config.localize) else {
            return;
        };
        // The localised service is ideally gated by a registered knob; if it
        // is not (e.g. the CPU-bound Catalogue is critical while the tunable
        // resource is its DB connection pool), fall back to the registered
        // resource whose monitored service correlates most with end-to-end
        // latency — it shares the critical path with the localised service.
        let picked = self
            .registry
            .for_monitored_service(localized)
            .map(|r| (localized, r))
            .or_else(|| {
                self.registry
                    .iter()
                    .filter(|(r, _)| {
                        obs.path_stats.on_path_count(r.monitored_service())
                            >= self.config.localize.min_on_path
                    })
                    .filter_map(|&(r, b)| {
                        obs.path_stats.pcc(r.monitored_service()).map(|p| (p, r, b))
                    })
                    .max_by(|a, b| a.0.total_cmp(&b.0))
                    .map(|(_, r, b)| (r.monitored_service(), (r, b)))
            });
        let Some((critical, (resource, bounds))) = picked else {
            return; // no tunable knob relates to the critical path
        };

        // 3. Propagate the deadline along the critical path.
        let upstream = obs
            .path_stats
            .mean_upstream_pt(critical)
            .unwrap_or(SimDuration::ZERO);
        let threshold = if self.estimator.config().latency_aware {
            if self.config.deadline_propagation {
                propagate_deadline(self.config.sla, upstream)
            } else {
                self.config.sla
            }
        } else {
            // SCT: threshold is irrelevant (throughput counts everything).
            SimDuration::MAX
        };

        // 4–5. Estimate and actuate. A shrink recommendation is ignored
        // while the pool has queued demand *and* the monitored service's
        // CPU still has headroom: there the scatter window spans the
        // pre-surge regime and the live queue is current evidence that the
        // limit binds — treat it like a missing knee and explore instead.
        // When the CPU is saturated, shrinking is exactly the cure for
        // oversubscription, so the estimate goes through.
        let saturated = ConcurrencyAdapter::is_saturated(world, resource);
        let util = obs.utilization.get(&critical).copied().unwrap_or(0.0);
        let cpu_headroom = util < self.config.explore_util_ceiling;
        let current = ConcurrencyAdapter::current_setting(world, resource);
        let estimate = self.estimator.estimate(world, critical, now, threshold);
        match estimate {
            Some(est)
                if !(saturated
                    && cpu_headroom
                    && ConcurrencyAdapter::desired_setting(world, resource, est.optimal)
                        <= current) =>
            {
                if let Some(applied) =
                    self.adapter
                        .apply_estimate(world, resource, bounds, est.optimal, now)
                {
                    self.actions.push((now, resource.to_string(), applied));
                }
            }
            _ => {
                if self.config.explore_when_no_knee && saturated && cpu_headroom {
                    if let Some(applied) = self.adapter.explore(world, resource, bounds, now) {
                        self.actions.push((now, resource.to_string(), applied));
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullController, ResourceBounds, SoftResource};
    use cluster::Millicores;
    use microsim::{Behavior, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::{RequestTypeId, ServiceId};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// A saturated 2-core service with a grossly over-allocated thread
    /// pool: Sora should pull the pool down toward the knee.
    fn overallocated_world() -> (World, ServiceId, RequestTypeId) {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(50),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg, SimRng::seed_from(23));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("api")
                .cpu(Millicores::from_cores(2))
                .threads(200)
                .csw(0.04)
                .on(rt, Behavior::leaf(Dist::lognormal_ms(4.0, 0.4))),
        );
        let rt = w.add_request_type("r", svc);
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        (w, svc, rt)
    }

    fn drive(w: &mut World, rt: RequestTypeId, c: &mut impl Controller, secs: u64) {
        let mut rng = SimRng::seed_from(3);
        let mut at = 0u64;
        // ~330 req/s (ρ ≈ 0.7 on 2 cores): bursty but not overloaded.
        let mut next_control = 15_000u64;
        while at < secs * 1000 {
            at += (rng.f64() * 5.0) as u64 + 1;
            w.inject_at(t(at), rt);
            if at >= next_control {
                w.run_until(t(next_control));
                c.control(w, t(next_control));
                next_control += 15_000;
            }
        }
        w.run_until(t(secs * 1000));
    }

    #[test]
    fn sora_pulls_overallocated_pool_toward_the_knee() {
        let (mut w, svc, rt) = overallocated_world();
        let registry = ResourceRegistry::new().with(
            SoftResource::ThreadPool { service: svc },
            ResourceBounds { min: 2, max: 200 },
        );
        let mut sora = SoraController::sora(
            SoraConfig {
                sla: SimDuration::from_millis(60),
                localize: LocalizeConfig {
                    min_on_path: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
            registry,
            NullController,
        );
        drive(&mut w, rt, &mut sora, 180);
        let final_limit = w.thread_limit(svc);
        // Shrinking is damped (≤ 30 % per period), so convergence takes a
        // few control ticks; after 3 minutes the pool must be far below 200.
        assert!(
            final_limit < 60,
            "thread pool should shrink from 200 toward the knee, got {final_limit}"
        );
        assert!(!sora.actions().is_empty(), "at least one actuation");
        assert_eq!(sora.name(), "sora");
    }

    #[test]
    fn sora_explores_underallocated_pool_upward() {
        let (mut w, svc, rt) = overallocated_world();
        w.set_thread_limit(svc, 1); // severe under-allocation: long queue
        let registry = ResourceRegistry::new().with(
            SoftResource::ThreadPool { service: svc },
            ResourceBounds { min: 1, max: 64 },
        );
        let mut sora = SoraController::sora(
            SoraConfig {
                sla: SimDuration::from_millis(60),
                localize: LocalizeConfig {
                    min_on_path: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
            registry,
            NullController,
        );
        drive(&mut w, rt, &mut sora, 60);
        assert!(
            w.thread_limit(svc) > 1,
            "exploration must lift the starved pool: {}",
            w.thread_limit(svc)
        );
    }

    #[test]
    fn conscale_uses_throughput_and_overallocates_relative_to_sora() {
        // Tight SLA: goodput knee sits lower than the throughput knee.
        let run = |latency_aware: bool| {
            let (mut w, svc, rt) = overallocated_world();
            let registry = ResourceRegistry::new().with(
                SoftResource::ThreadPool { service: svc },
                ResourceBounds { min: 2, max: 200 },
            );
            let config = SoraConfig {
                sla: SimDuration::from_millis(25),
                localize: LocalizeConfig {
                    min_on_path: 10,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut c = if latency_aware {
                SoraController::sora(config, registry, NullController)
            } else {
                SoraController::conscale(config, registry, NullController)
            };
            drive(&mut w, rt, &mut c, 90);
            w.thread_limit(svc)
        };
        let sora_limit = run(true);
        let conscale_limit = run(false);
        assert!(
            sora_limit <= conscale_limit,
            "sora ({sora_limit}) must not allocate above conscale ({conscale_limit})"
        );
    }

    #[test]
    fn no_registered_resource_means_no_action() {
        let (mut w, _svc, rt) = overallocated_world();
        let mut sora = SoraController::sora(
            SoraConfig::default(),
            ResourceRegistry::new(),
            NullController,
        );
        drive(&mut w, rt, &mut sora, 40);
        assert!(sora.actions().is_empty());
    }
}
