//! The Sora controller: the full adaptation loop of Fig. 8.

use crate::{
    ConcurrencyAdapter, ConcurrencyEstimator, Controller, EstimatorConfig, Monitor,
    ResourceRegistry,
};
use microsim::World;
use scg::{propagate_deadline, LocalizeConfig, ScgModel};
use sim_core::{SimDuration, SimTime};

/// Configuration of the Sora control loop.
#[derive(Debug, Clone)]
pub struct SoraConfig {
    /// The end-to-end SLA whose violation Sora mitigates (e.g. 400 ms in
    /// the paper's Figs. 10–12).
    pub sla: SimDuration,
    /// Critical-service localisation policy.
    pub localize: LocalizeConfig,
    /// Estimation pipeline tuning (sampling interval, window,
    /// latency-aware vs throughput-based).
    pub estimator: EstimatorConfig,
    /// Whether to explore upward when no knee is detected and the gated
    /// pool shows queued demand.
    pub explore_when_no_knee: bool,
    /// Exploration stops once the monitored service's CPU utilisation
    /// reaches this level: growing a pool cannot help a CPU-bound service,
    /// it only adds oversubscription overhead.
    pub explore_util_ceiling: f64,
    /// Whether to propagate the SLA along the critical path (eq. 3). When
    /// off, the critical service's goodput threshold is the raw SLA — an
    /// ablation quantifying what deadline propagation contributes.
    pub deadline_propagation: bool,
    /// Graceful degradation under telemetry loss: when the critical
    /// service's freshest completion sample is older than
    /// [`staleness_bound`](Self::staleness_bound) (or absent entirely),
    /// hold the last-known-good estimate and freeze actuation instead of
    /// estimating from a stale scatter window. Off is the ablation: the
    /// controller keeps estimating and exploring from pre-outage data.
    pub degradation: bool,
    /// How old the freshest completion sample may be before the sampling
    /// window counts as stale. Must exceed the control period, or healthy
    /// low-traffic lulls would freeze the controller.
    pub staleness_bound: SimDuration,
    /// Minimum completion samples the critical service must show inside the
    /// trailing [`staleness_bound`](Self::staleness_bound) window for the
    /// degradation guard to trust it. A lossy or reordering telemetry
    /// network can keep *one* recent sample trickling through while losing
    /// or delaying the bulk — freshness alone then green-lights estimating
    /// from a nearly empty scatter. The default of `1` degenerates to the
    /// pure freshness check (a fresh sample *is* one sample in the window),
    /// so behaviour is unchanged unless raised.
    pub min_window_samples: u64,
}

impl Default for SoraConfig {
    fn default() -> Self {
        SoraConfig {
            sla: SimDuration::from_millis(400),
            localize: LocalizeConfig::default(),
            estimator: EstimatorConfig::default(),
            explore_when_no_knee: true,
            explore_util_ceiling: 0.9,
            deadline_propagation: true,
            degradation: true,
            staleness_bound: SimDuration::from_secs(30),
            min_window_samples: 1,
        }
    }
}

/// Sora: latency-sensitive soft-resource adaptation layered over a
/// hardware-only autoscaler `H` (FIRM, HPA, VPA, or [`crate::NullController`]
/// for soft-only operation).
///
/// Each control period it (1) delegates to the hardware autoscaler,
/// (2) localises the critical service, (3) propagates the SLA into that
/// service's response-time threshold, (4) estimates the optimal
/// concurrency with the SCG model, and (5) actuates the owning soft
/// resource.
///
/// Constructing it with [`SoraController::conscale`] flips the estimator to
/// the throughput-based SCT model with no deadline propagation — the
/// ConScale baseline of §5.2.
pub struct SoraController<H> {
    name: &'static str,
    config: SoraConfig,
    monitor: Monitor,
    estimator: ConcurrencyEstimator,
    adapter: ConcurrencyAdapter,
    registry: ResourceRegistry,
    hardware: H,
    /// Log of `(time, resource-description, new setting)` actuations.
    actions: Vec<(SimTime, String, usize)>,
    /// Control periods skipped because telemetry was empty or stale.
    frozen_periods: u64,
    /// Last trustworthy optimal-concurrency estimate, held across outages.
    last_good: Option<usize>,
}

impl<H: Controller> SoraController<H> {
    /// Creates the latency-aware Sora controller.
    pub fn sora(config: SoraConfig, registry: ResourceRegistry, hardware: H) -> Self {
        let mut config = config;
        config.estimator.latency_aware = true;
        Self::build("sora", config, registry, hardware)
    }

    /// Creates the ConScale baseline: identical pipeline but the
    /// throughput-based SCT model and no latency awareness.
    pub fn conscale(config: SoraConfig, registry: ResourceRegistry, hardware: H) -> Self {
        let mut config = config;
        config.estimator.latency_aware = false;
        Self::build("conscale", config, registry, hardware)
    }

    fn build(
        name: &'static str,
        config: SoraConfig,
        registry: ResourceRegistry,
        hardware: H,
    ) -> Self {
        let monitor = Monitor::new(config.estimator.window);
        let estimator = ConcurrencyEstimator::new(config.estimator, ScgModel::default());
        SoraController {
            name,
            config,
            monitor,
            estimator,
            adapter: ConcurrencyAdapter::default(),
            registry,
            hardware,
            actions: Vec::new(),
            frozen_periods: 0,
            last_good: None,
        }
    }

    /// The actuation log: `(time, resource, new setting)` triples.
    pub fn actions(&self) -> &[(SimTime, String, usize)] {
        &self.actions
    }

    /// Control periods skipped by the degradation guard because the
    /// critical service's telemetry was empty or stale.
    pub fn frozen_periods(&self) -> u64 {
        self.frozen_periods
    }

    /// The last trustworthy optimal-concurrency estimate. While the guard
    /// freezes actuation this value (already actuated) embodies the
    /// last-known-good setting.
    pub fn last_good_estimate(&self) -> Option<usize> {
        self.last_good
    }

    /// The wrapped hardware autoscaler.
    pub fn hardware(&self) -> &H {
        &self.hardware
    }

    /// Mutable access to the wrapped hardware autoscaler.
    pub fn hardware_mut(&mut self) -> &mut H {
        &mut self.hardware
    }
}

impl<H: Controller> Controller for SoraController<H> {
    fn control(&mut self, world: &mut World, now: SimTime) {
        // 1. Hardware scaling first (Reallocation Module ordering: the
        //    autoscaler signals, then the concurrency adapter follows).
        self.hardware.control(world, now);

        // 2. Observe and localise.
        let obs = self.monitor.observe(world, now);
        let Some(localized) = obs.critical_service(&self.config.localize) else {
            return;
        };
        // The localised service is ideally gated by a registered knob; if it
        // is not (e.g. the CPU-bound Catalogue is critical while the tunable
        // resource is its DB connection pool), fall back to the registered
        // resource whose monitored service correlates most with end-to-end
        // latency — it shares the critical path with the localised service.
        let picked = self
            .registry
            .for_monitored_service(localized)
            .map(|r| (localized, r))
            .or_else(|| {
                self.registry
                    .iter()
                    .filter(|(r, _)| {
                        obs.path_stats.on_path_count(r.monitored_service())
                            >= self.config.localize.min_on_path
                    })
                    .filter_map(|&(r, b)| {
                        obs.path_stats.pcc(r.monitored_service()).map(|p| (p, r, b))
                    })
                    .max_by(|a, b| a.0.total_cmp(&b.0))
                    .map(|(_, r, b)| (r.monitored_service(), (r, b)))
            });
        let Some((critical, (resource, bounds))) = picked else {
            return; // no tunable knob relates to the critical path
        };

        // 2b. Degradation guard. Localisation above still works through a
        // telemetry blackout (the warehouse window retains pre-outage
        // traces), but the same staleness poisons the estimator's scatter:
        // it describes the pre-fault regime while the live queue reflects
        // the fault. Completion freshness is the tell — if the critical
        // service has produced no sample within the staleness bound, hold
        // the last-known-good setting and skip estimation and exploration
        // entirely rather than actuate on garbage.
        if self.config.degradation {
            let freshest = world
                .ready_replicas_iter(critical)
                .filter_map(|id| world.completions_of(id).and_then(|log| log.latest()))
                .max();
            let stale = match freshest {
                Some(at) => now.saturating_since(at) > self.config.staleness_bound,
                None => true,
            };
            if stale {
                self.frozen_periods += 1;
                return;
            }
            // Reordered-telemetry hardening: freshness checks the *newest*
            // sample, but a lossy or delaying network can deliver a lone
            // recent sample while the rest of the window is still in
            // flight (or gone). Require a minimum population before
            // trusting the scatter. Skipped at the default of 1, where the
            // freshness check above already implies it.
            if self.config.min_window_samples > 1 {
                let from = SimTime::ZERO
                    + now
                        .saturating_since(SimTime::ZERO)
                        .saturating_sub_or_zero(self.config.staleness_bound);
                let samples: u64 = world
                    .ready_replicas_iter(critical)
                    .filter_map(|id| world.completions_of(id))
                    .map(|log| log.count_in(from, now + SimDuration::from_nanos(1)))
                    .sum();
                if samples < self.config.min_window_samples {
                    self.frozen_periods += 1;
                    return;
                }
            }
        }

        // 3. Propagate the deadline along the critical path.
        let upstream = obs
            .path_stats
            .mean_upstream_pt(critical)
            .unwrap_or(SimDuration::ZERO);
        let threshold = if self.estimator.config().latency_aware {
            if self.config.deadline_propagation {
                propagate_deadline(self.config.sla, upstream)
            } else {
                self.config.sla
            }
        } else {
            // SCT: threshold is irrelevant (throughput counts everything).
            SimDuration::MAX
        };

        // 4–5. Estimate and actuate. A shrink recommendation is ignored
        // while the pool has queued demand *and* the monitored service's
        // CPU still has headroom: there the scatter window spans the
        // pre-surge regime and the live queue is current evidence that the
        // limit binds — treat it like a missing knee and explore instead.
        // When the CPU is saturated, shrinking is exactly the cure for
        // oversubscription, so the estimate goes through.
        let saturated = ConcurrencyAdapter::is_saturated(world, resource);
        let util = obs.utilization.get(&critical).copied().unwrap_or(0.0);
        let cpu_headroom = util < self.config.explore_util_ceiling;
        let current = ConcurrencyAdapter::current_setting(world, resource);
        let estimate = self.estimator.estimate(world, critical, now, threshold);
        if let Some(est) = &estimate {
            self.last_good = Some(est.optimal);
        }
        match estimate {
            Some(est)
                if !(saturated
                    && cpu_headroom
                    && ConcurrencyAdapter::desired_setting(world, resource, est.optimal)
                        <= current) =>
            {
                if let Some(applied) =
                    self.adapter
                        .apply_estimate(world, resource, bounds, est.optimal, now)
                {
                    self.actions.push((now, resource.to_string(), applied));
                }
            }
            _ => {
                if self.config.explore_when_no_knee && saturated && cpu_headroom {
                    if let Some(applied) = self.adapter.explore(world, resource, bounds, now) {
                        self.actions.push((now, resource.to_string(), applied));
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        self.name
    }

    fn status(&self) -> crate::ControllerStatus {
        crate::ControllerStatus {
            name: self.name.to_string(),
            frozen_periods: self.frozen_periods,
            last_estimate: self.last_good,
            actuations: self.actions.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullController, ResourceBounds, SoftResource};
    use cluster::Millicores;
    use microsim::{Behavior, BlackoutMode, FaultSchedule, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::{RequestTypeId, ServiceId};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// A saturated 2-core service with a grossly over-allocated thread
    /// pool: Sora should pull the pool down toward the knee.
    fn overallocated_world() -> (World, ServiceId, RequestTypeId) {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(50),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg, SimRng::seed_from(23));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("api")
                .cpu(Millicores::from_cores(2))
                .threads(200)
                .csw(0.04)
                .on(rt, Behavior::leaf(Dist::lognormal_ms(4.0, 0.4))),
        );
        let rt = w.add_request_type("r", svc);
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        (w, svc, rt)
    }

    fn drive(w: &mut World, rt: RequestTypeId, c: &mut impl Controller, secs: u64) {
        let mut rng = SimRng::seed_from(3);
        let mut at = 0u64;
        // ~330 req/s (ρ ≈ 0.7 on 2 cores): bursty but not overloaded.
        let mut next_control = 15_000u64;
        while at < secs * 1000 {
            at += (rng.f64() * 5.0) as u64 + 1;
            w.inject_at(t(at), rt);
            if at >= next_control {
                w.run_until(t(next_control));
                c.control(w, t(next_control));
                next_control += 15_000;
            }
        }
        w.run_until(t(secs * 1000));
    }

    #[test]
    fn sora_pulls_overallocated_pool_toward_the_knee() {
        let (mut w, svc, rt) = overallocated_world();
        let registry = ResourceRegistry::new().with(
            SoftResource::ThreadPool { service: svc },
            ResourceBounds { min: 2, max: 200 },
        );
        let mut sora = SoraController::sora(
            SoraConfig {
                sla: SimDuration::from_millis(60),
                localize: LocalizeConfig {
                    min_on_path: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
            registry,
            NullController,
        );
        drive(&mut w, rt, &mut sora, 180);
        let final_limit = w.thread_limit(svc);
        // Shrinking is damped (≤ 30 % per period), so convergence takes a
        // few control ticks; after 3 minutes the pool must be far below 200.
        assert!(
            final_limit < 60,
            "thread pool should shrink from 200 toward the knee, got {final_limit}"
        );
        assert!(!sora.actions().is_empty(), "at least one actuation");
        assert_eq!(sora.name(), "sora");
    }

    #[test]
    fn sora_explores_underallocated_pool_upward() {
        let (mut w, svc, rt) = overallocated_world();
        w.set_thread_limit(svc, 1); // severe under-allocation: long queue
        let registry = ResourceRegistry::new().with(
            SoftResource::ThreadPool { service: svc },
            ResourceBounds { min: 1, max: 64 },
        );
        let mut sora = SoraController::sora(
            SoraConfig {
                sla: SimDuration::from_millis(60),
                localize: LocalizeConfig {
                    min_on_path: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
            registry,
            NullController,
        );
        drive(&mut w, rt, &mut sora, 60);
        assert!(
            w.thread_limit(svc) > 1,
            "exploration must lift the starved pool: {}",
            w.thread_limit(svc)
        );
    }

    #[test]
    fn conscale_uses_throughput_and_overallocates_relative_to_sora() {
        // Tight SLA: goodput knee sits lower than the throughput knee.
        let run = |latency_aware: bool| {
            let (mut w, svc, rt) = overallocated_world();
            let registry = ResourceRegistry::new().with(
                SoftResource::ThreadPool { service: svc },
                ResourceBounds { min: 2, max: 200 },
            );
            let config = SoraConfig {
                sla: SimDuration::from_millis(25),
                localize: LocalizeConfig {
                    min_on_path: 10,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut c = if latency_aware {
                SoraController::sora(config, registry, NullController)
            } else {
                SoraController::conscale(config, registry, NullController)
            };
            drive(&mut w, rt, &mut c, 90);
            w.thread_limit(svc)
        };
        let sora_limit = run(true);
        let conscale_limit = run(false);
        assert!(
            sora_limit <= conscale_limit,
            "sora ({sora_limit}) must not allocate above conscale ({conscale_limit})"
        );
    }

    fn registry_2_200(svc: ServiceId) -> ResourceRegistry {
        ResourceRegistry::new().with(
            SoftResource::ThreadPool { service: svc },
            ResourceBounds { min: 2, max: 200 },
        )
    }

    fn degradation_config() -> SoraConfig {
        SoraConfig {
            sla: SimDuration::from_millis(60),
            localize: LocalizeConfig {
                min_on_path: 10,
                ..Default::default()
            },
            staleness_bound: SimDuration::from_secs(20),
            ..Default::default()
        }
    }

    /// Injects ~330 req/s Poisson-ish traffic over `[from, to)` ms.
    fn inject_span(w: &mut World, rt: RequestTypeId, rng: &mut SimRng, from: u64, to: u64) {
        let mut at = from;
        while at < to {
            at += (rng.f64() * 5.0) as u64 + 1;
            w.inject_at(t(at), rt);
        }
    }

    #[test]
    fn stale_window_freezes_actuation_at_last_known_good() {
        let (mut w, svc, rt) = overallocated_world();
        let mut sora =
            SoraController::sora(degradation_config(), registry_2_200(svc), NullController);
        let mut rng = SimRng::seed_from(3);
        inject_span(&mut w, rt, &mut rng, 0, 30_000);
        w.run_until(t(30_000));
        sora.control(&mut w, t(30_000));
        assert_eq!(sora.frozen_periods(), 0, "fresh telemetry must not freeze");
        let actions_before = sora.actions().len();
        let limit_before = w.thread_limit(svc);
        // The service goes quiet: by 70 s the freshest completion is ~40 s
        // old, past the 20 s staleness bound.
        w.run_until(t(70_000));
        sora.control(&mut w, t(70_000));
        assert_eq!(sora.frozen_periods(), 1, "stale window must freeze");
        assert_eq!(
            sora.actions().len(),
            actions_before,
            "no actuation while frozen"
        );
        assert_eq!(w.thread_limit(svc), limit_before, "last-known-good held");
    }

    #[test]
    fn empty_completion_window_freezes_instead_of_estimating() {
        let (mut w, svc, rt) = overallocated_world();
        let mut sora =
            SoraController::sora(degradation_config(), registry_2_200(svc), NullController);
        let mut rng = SimRng::seed_from(3);
        inject_span(&mut w, rt, &mut rng, 0, 30_000);
        w.run_until(t(30_000));
        sora.control(&mut w, t(30_000));
        // Let in-flight work drain, then replace the only replica: the
        // fresh pod's completion log is empty while the warehouse still
        // localises from pre-crash traces.
        w.run_until(t(35_000));
        let pod = w.ready_replicas(svc)[0];
        w.fail_replica(pod);
        let fresh = w.recover_replica(svc).unwrap();
        w.make_ready(fresh);
        let frozen_before = sora.frozen_periods();
        w.run_until(t(36_000));
        sora.control(&mut w, t(36_000));
        assert_eq!(
            sora.frozen_periods(),
            frozen_before + 1,
            "empty completion window must freeze"
        );
    }

    #[test]
    fn sparse_window_freezes_when_min_samples_raised() {
        // A lossy/reordering telemetry network can keep one recent sample
        // arriving while losing the bulk: freshness alone passes, the
        // population check must not.
        let run = |min_window_samples: u64| {
            let (mut w, svc, rt) = overallocated_world();
            let mut sora = SoraController::sora(
                SoraConfig {
                    min_window_samples,
                    ..degradation_config()
                },
                registry_2_200(svc),
                NullController,
            );
            let mut rng = SimRng::seed_from(3);
            inject_span(&mut w, rt, &mut rng, 0, 30_000);
            w.run_until(t(30_000));
            sora.control(&mut w, t(30_000));
            assert_eq!(sora.frozen_periods(), 0, "healthy window must not freeze");
            // Traffic collapses to a trickle: the freshest sample stays
            // young while the 20 s window holds only a handful.
            for at in [55_000u64, 60_000, 65_000] {
                w.inject_at(t(at), rt);
            }
            w.run_until(t(66_000));
            sora.control(&mut w, t(66_000));
            sora.frozen_periods()
        };
        assert_eq!(run(1), 0, "freshness-only guard passes the trickle");
        assert_eq!(
            run(50),
            1,
            "sparse window must freeze under a population floor"
        );
    }

    #[test]
    fn estimation_resumes_within_one_period_after_blackout() {
        // Telemetry blackout 40–100 s; control on a 15 s grid. With the
        // 20 s staleness bound, ticks at 75 and 90 s are inside the frozen
        // region; the first tick after the window ends (105 s) sees fresh
        // completions again and must estimate immediately.
        let run = |degradation: bool| {
            let (mut w, svc, rt) = overallocated_world();
            w.install_faults(FaultSchedule::new().telemetry_blackout(
                t(40_000),
                BlackoutMode::Drop,
                SimDuration::from_secs(60),
            ))
            .expect("valid fault schedule");
            let mut sora = SoraController::sora(
                SoraConfig {
                    degradation,
                    ..degradation_config()
                },
                registry_2_200(svc),
                NullController,
            );
            let mut rng = SimRng::seed_from(3);
            let mut frozen_at = std::collections::BTreeMap::new();
            for tick in 1..=12u64 {
                let ms = tick * 15_000;
                inject_span(&mut w, rt, &mut rng, ms - 15_000, ms);
                w.run_until(t(ms));
                sora.control(&mut w, t(ms));
                frozen_at.insert(ms / 1000, sora.frozen_periods());
            }
            (frozen_at, sora.last_good_estimate())
        };

        let (frozen, last_good) = run(true);
        assert!(
            frozen[&90] > frozen[&60],
            "mid-blackout ticks must freeze: {frozen:?}"
        );
        assert_eq!(
            frozen[&105], frozen[&90],
            "first post-blackout tick must estimate, not freeze: {frozen:?}"
        );
        assert_eq!(
            frozen[&180], frozen[&105],
            "no freezes after recovery: {frozen:?}"
        );
        assert!(last_good.is_some(), "estimates resumed after the blackout");

        let (frozen_off, _) = run(false);
        assert_eq!(
            frozen_off[&180], 0,
            "ablation: degradation off never freezes"
        );
    }

    #[test]
    fn no_registered_resource_means_no_action() {
        let (mut w, _svc, rt) = overallocated_world();
        let mut sora = SoraController::sora(
            SoraConfig::default(),
            ResourceRegistry::new(),
            NullController,
        );
        drive(&mut w, rt, &mut sora, 40);
        assert!(sora.actions().is_empty());
    }
}
