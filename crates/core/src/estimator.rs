//! The Concurrency Estimator: scatter construction + SCG estimation.

use microsim::World;
use scg::{ConcurrencyEstimate, ScgModel};
use sim_core::{SimDuration, SimTime};
use telemetry::{build_scatter_into, ScatterPoint, ScatterScratch, ServiceId};

/// Configuration of the estimation pipeline.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorConfig {
    /// Metric sampling interval — 100 ms minimises MAPE in the paper's
    /// Table 1.
    pub sampling_interval: SimDuration,
    /// Scatter window length — 60 s accumulates 600 points at 100 ms, the
    /// paper's choice balancing curve completeness against agility (§4.1).
    pub window: SimDuration,
    /// Goodput (latency-aware, Sora) vs throughput (ConScale's SCT model).
    pub latency_aware: bool,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            sampling_interval: SimDuration::from_millis(100),
            window: SimDuration::from_secs(60),
            latency_aware: true,
        }
    }
}

/// Builds per-replica concurrency/goodput scatter graphs from the live
/// samplers and runs the SCG model on them. The recommendation is
/// per replica, which is what the soft-resource knobs control.
///
/// The estimator owns the scratch buffers of the whole
/// scatter→bin→estimate pipeline (per-bucket averages and counts, merged
/// points, dense bins), so a controller that calls
/// [`ConcurrencyEstimator::estimate`] every tick allocates nothing in
/// steady state.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyEstimator {
    config: EstimatorConfig,
    model: ScgModel,
    scratch: ScatterScratch,
    points: Vec<ScatterPoint>,
    bins: Vec<(f64, f64, u64)>,
}

impl ConcurrencyEstimator {
    /// Creates an estimator.
    pub fn new(config: EstimatorConfig, model: ScgModel) -> Self {
        ConcurrencyEstimator {
            config,
            model,
            scratch: ScatterScratch::default(),
            points: Vec::new(),
            bins: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Start of the trailing estimation window ending at `now`.
    fn window_start(&self, now: SimTime) -> SimTime {
        let elapsed = now.saturating_since(SimTime::ZERO);
        if elapsed > self.config.window {
            SimTime::ZERO + (elapsed - self.config.window)
        } else {
            SimTime::ZERO
        }
    }

    /// Collects the scatter for `service` over the trailing window,
    /// merging the per-replica graphs (each replica contributes its own
    /// `<Q, rate>` points — replicas are interchangeable instances, so
    /// their per-instance curves overlay).
    pub fn scatter(
        &self,
        world: &World,
        service: ServiceId,
        now: SimTime,
        threshold: SimDuration,
    ) -> Vec<ScatterPoint> {
        let mut scratch = ScatterScratch::default();
        let mut points = Vec::new();
        self.scatter_into(world, service, now, threshold, &mut scratch, &mut points);
        points
    }

    fn scatter_into(
        &self,
        world: &World,
        service: ServiceId,
        now: SimTime,
        threshold: SimDuration,
        scratch: &mut ScatterScratch,
        points: &mut Vec<ScatterPoint>,
    ) {
        points.clear();
        let from = self.window_start(now);
        if from >= now {
            return;
        }
        let thr = self.config.latency_aware.then_some(threshold);
        for replica in world.ready_replicas_iter(service) {
            let (Some(conc), Some(comp)) =
                (world.concurrency_of(replica), world.completions_of(replica))
            else {
                continue;
            };
            build_scatter_into(
                conc,
                comp,
                from,
                now,
                self.config.sampling_interval,
                thr,
                scratch,
                points,
            );
        }
    }

    /// Estimates the optimal per-replica concurrency for `service` under
    /// `threshold`. `None` means the window carries no trustworthy knee
    /// (insufficient data or an unsaturated pool) — the adapter then
    /// explores upward.
    ///
    /// Takes `&mut self` to reuse the estimator-owned scratch buffers —
    /// the steady-state control loop performs no heap allocation here.
    pub fn estimate(
        &mut self,
        world: &World,
        service: ServiceId,
        now: SimTime,
        threshold: SimDuration,
    ) -> Option<ConcurrencyEstimate> {
        let mut points = std::mem::take(&mut self.points);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.scatter_into(world, service, now, threshold, &mut scratch, &mut points);
        self.model.aggregate_counted_into(&points, &mut self.bins);
        let estimate = self.model.estimate_binned(&self.bins);
        self.points = points;
        self.scratch = scratch;
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, World, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::RequestTypeId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// A 2-core service under heavy Poisson load: optimal concurrency sits
    /// near the point where added threads stop converting into goodput.
    fn loaded_world(threads: usize) -> (World, ServiceId) {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(0),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg, SimRng::seed_from(5));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("api")
                .cpu(cluster::Millicores::from_cores(2))
                .threads(threads)
                .csw(0.04)
                .on(rt, Behavior::leaf(Dist::lognormal_ms(4.0, 0.4))),
        );
        let rt = w.add_request_type("r", svc);
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        // ~330 req/s for 60 s — ρ ≈ 0.7 on 2 cores at ~4.3 ms demand, so
        // concurrency fluctuates across bins instead of pinning at the
        // thread limit (an overloaded server yields a flat, useless scatter).
        let mut at = 0u64;
        let mut rng = SimRng::seed_from(9);
        while at < 60_000 {
            at += (rng.f64() * 5.0) as u64 + 1;
            w.inject_at(t(at), rt);
        }
        w.run_until(t(61_000));
        (w, svc)
    }

    #[test]
    fn scatter_is_nonempty_under_load() {
        let (w, svc) = loaded_world(16);
        let est = ConcurrencyEstimator::default();
        let pts = est.scatter(&w, svc, t(61_000), SimDuration::from_millis(50));
        assert!(
            pts.len() > 300,
            "one minute at 100 ms ≈ 600 points: {}",
            pts.len()
        );
    }

    #[test]
    fn goodput_scatter_is_below_throughput_scatter() {
        let (w, svc) = loaded_world(16);
        let lat = ConcurrencyEstimator::default();
        let thr = ConcurrencyEstimator::new(
            EstimatorConfig {
                latency_aware: false,
                ..Default::default()
            },
            ScgModel::default(),
        );
        let tight = SimDuration::from_millis(8);
        let g: f64 = lat
            .scatter(&w, svc, t(61_000), tight)
            .iter()
            .map(|p| p.rate)
            .sum();
        let tp: f64 = thr
            .scatter(&w, svc, t(61_000), tight)
            .iter()
            .map(|p| p.rate)
            .sum();
        assert!(g < tp, "goodput {g} must be below throughput {tp}");
    }

    #[test]
    fn estimates_a_reasonable_knee_for_a_two_core_service() {
        let (w, svc) = loaded_world(24);
        let mut est = ConcurrencyEstimator::default();
        // Generous threshold: knee driven by capacity, near a small multiple
        // of the core count.
        if let Some(e) = est.estimate(&w, svc, t(61_000), SimDuration::from_millis(60)) {
            assert!(
                (2..=16).contains(&e.optimal),
                "2-core service knee should be single-digit-ish: {e:?}"
            );
        } else {
            panic!("saturated service must produce an estimate");
        }
    }

    #[test]
    fn empty_window_yields_no_estimate() {
        let cfg = WorldConfig::default();
        let mut w = World::new(cfg, SimRng::seed_from(0));
        let rt = RequestTypeId(0);
        let svc =
            w.add_service(ServiceSpec::new("idle").on(rt, Behavior::leaf(Dist::constant_ms(1))));
        w.add_request_type("r", svc);
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        let mut est = ConcurrencyEstimator::default();
        assert!(est
            .estimate(&w, svc, SimTime::ZERO, SimDuration::from_millis(100))
            .is_none());
        assert!(est
            .estimate(&w, svc, t(10_000), SimDuration::from_millis(100))
            .is_none());
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, World, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::RequestTypeId;

    #[test]
    #[ignore]
    fn dump_scatter() {
        for gap in [2.0f64, 3.3, 5.0, 8.0] {
            let cfg = WorldConfig {
                net_delay: Dist::constant_us(0),
                replica_startup: Dist::constant_us(0),
                ..WorldConfig::default()
            };
            let mut w = World::new(cfg, SimRng::seed_from(5));
            let rt = RequestTypeId(0);
            let svc = w.add_service(
                ServiceSpec::new("api")
                    .cpu(cluster::Millicores::from_cores(2))
                    .threads(24)
                    .csw(0.04)
                    .on(rt, Behavior::leaf(Dist::lognormal_ms(4.0, 0.4))),
            );
            let rt = w.add_request_type("r", svc);
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
            let mut at = 0u64;
            let mut rng = SimRng::seed_from(9);
            while at < 60_000 {
                at += (rng.f64() * gap) as u64 + 1;
                w.inject_at(sim_core::SimTime::from_millis(at), rt);
            }
            w.run_until(sim_core::SimTime::from_millis(61_000));
            let est = ConcurrencyEstimator::default();
            let pts = est.scatter(
                &w,
                svc,
                sim_core::SimTime::from_millis(61_000),
                SimDuration::from_millis(60),
            );
            let model = scg::ScgModel::default();
            let bins = model.aggregate(&pts);
            println!("gap={gap}: bins:");
            for (q, r) in &bins {
                println!("  q={q:5.1} rate={r:8.1}");
            }
            println!("estimate: {:?}", model.estimate(&pts));
        }
    }
}
