//! The controller abstraction every autoscaler implements.

use microsim::World;
use serde::{Deserialize, Serialize};
use sim_core::SimTime;

/// A point-in-time view of a controller's internal state, surfaced between
/// simulation steps by the service plane (`sora-server`) so remote
/// observers can watch a live run without reaching into controller
/// internals. Controllers with no interesting state report just their name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerStatus {
    /// The controller's report name (same as [`Controller::name`]).
    pub name: String,
    /// Control periods skipped by a degradation guard (0 when the
    /// controller has none).
    #[serde(default)]
    pub frozen_periods: u64,
    /// The last trustworthy optimal-concurrency estimate, when the
    /// controller computes one.
    #[serde(default)]
    pub last_estimate: Option<usize>,
    /// Soft-resource actuations applied so far (0 when not tracked).
    #[serde(default)]
    pub actuations: u64,
}

impl ControllerStatus {
    /// A status carrying only a name (the default for stateless
    /// controllers).
    pub fn named(name: impl Into<String>) -> ControllerStatus {
        ControllerStatus {
            name: name.into(),
            frozen_periods: 0,
            last_estimate: None,
            actuations: 0,
        }
    }
}

/// A runtime controller invoked once per control period by the scenario
/// runner. Hardware autoscalers (HPA, VPA, FIRM), concurrency adapters
/// (ConScale) and Sora itself all implement this, which is what lets the
/// evaluation swap them freely (§5).
pub trait Controller {
    /// Observes the world and applies any scaling/adaptation actions.
    /// Called with the world advanced to `now`.
    fn control(&mut self, world: &mut World, now: SimTime);

    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// A snapshot of the controller's state for live telemetry frames
    /// (the `sora-server` stepping seam). Defaults to name-only.
    fn status(&self) -> ControllerStatus {
        ControllerStatus::named(self.name())
    }
}

/// A controller that does nothing — the static-configuration baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullController;

impl Controller for NullController {
    fn control(&mut self, _world: &mut World, _now: SimTime) {}

    fn name(&self) -> &str {
        "static"
    }
}

impl<C: Controller + ?Sized> Controller for Box<C> {
    fn control(&mut self, world: &mut World, now: SimTime) {
        (**self).control(world, now);
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn status(&self) -> ControllerStatus {
        (**self).status()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::WorldConfig;
    use sim_core::SimRng;

    #[test]
    fn null_controller_is_inert() {
        let mut world = World::new(WorldConfig::default(), SimRng::seed_from(0));
        let mut c = NullController;
        c.control(&mut world, SimTime::ZERO);
        assert_eq!(c.name(), "static");
    }

    #[test]
    fn boxed_controllers_delegate() {
        let mut world = World::new(WorldConfig::default(), SimRng::seed_from(0));
        let mut c: Box<dyn Controller> = Box::new(NullController);
        c.control(&mut world, SimTime::ZERO);
        assert_eq!(c.name(), "static");
    }
}
