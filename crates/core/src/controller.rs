//! The controller abstraction every autoscaler implements.

use microsim::World;
use sim_core::SimTime;

/// A runtime controller invoked once per control period by the scenario
/// runner. Hardware autoscalers (HPA, VPA, FIRM), concurrency adapters
/// (ConScale) and Sora itself all implement this, which is what lets the
/// evaluation swap them freely (§5).
pub trait Controller {
    /// Observes the world and applies any scaling/adaptation actions.
    /// Called with the world advanced to `now`.
    fn control(&mut self, world: &mut World, now: SimTime);

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

/// A controller that does nothing — the static-configuration baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullController;

impl Controller for NullController {
    fn control(&mut self, _world: &mut World, _now: SimTime) {}

    fn name(&self) -> &str {
        "static"
    }
}

impl<C: Controller + ?Sized> Controller for Box<C> {
    fn control(&mut self, world: &mut World, now: SimTime) {
        (**self).control(world, now);
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::WorldConfig;
    use sim_core::SimRng;

    #[test]
    fn null_controller_is_inert() {
        let mut world = World::new(WorldConfig::default(), SimRng::seed_from(0));
        let mut c = NullController;
        c.control(&mut world, SimTime::ZERO);
        assert_eq!(c.name(), "static");
    }

    #[test]
    fn boxed_controllers_delegate() {
        let mut world = World::new(WorldConfig::default(), SimRng::seed_from(0));
        let mut c: Box<dyn Controller> = Box::new(NullController);
        c.control(&mut world, SimTime::ZERO);
        assert_eq!(c.name(), "static");
    }
}
